#!/bin/bash
# Extension experiments (ablations + MNAR): run after run_experiments.sh.
set -u
mkdir -p target/experiments/logs
for bin in ablation_kstrategy ablation_features ablation_pruning ablation_operator mnar_robustness; do
  echo "=== $bin start $(date +%H:%M:%S) ==="
  ./target/release/$bin > target/experiments/logs/$bin.log 2>&1
  echo "=== $bin exit=$? $(date +%H:%M:%S) ==="
done
echo EXTENSIONS_DONE

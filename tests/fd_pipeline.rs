//! Integration tests of the FD-aware pipeline (paper §4.3): FD-REPAIR,
//! FUNFOREST and GRIMP-A on generated Tax data whose FDs hold exactly.

use grimp::{Grimp, GrimpConfig, KStrategy};
use grimp_baselines::{FdRepair, MissForest, MissForestConfig};
use grimp_datasets::{generate, DatasetId};
use grimp_metrics::evaluate;
use grimp_table::{inject_mcar, Imputer, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head(table: &Table, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

#[test]
fn generated_tax_fds_hold_and_survive_truncation() {
    let tax = generate(DatasetId::Tax, 0);
    assert_eq!(tax.fds.len(), 6);
    let small = head(&tax.table, 400);
    for fd in &tax.fds.fds {
        assert!(
            fd.holds_on(&small),
            "FD {:?} -> {} broken by truncation",
            fd.lhs,
            fd.rhs
        );
    }
}

#[test]
fn fd_repair_is_precise_on_fd_covered_cells() {
    let tax = generate(DatasetId::Tax, 0);
    let clean = head(&tax.table, 400);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.10, &mut StdRng::seed_from_u64(1));

    let mut repair = FdRepair::new(tax.fds.clone());
    let imputed = repair.impute(&dirty);
    assert!(repair.last_fd_imputations > 0, "FDs must reach some cells");

    // Cells in FD conclusions whose premise is observed elsewhere must be
    // imputed exactly (minimality repair on exact FDs is precise).
    let conclusion_cols: Vec<usize> = tax.fds.fds.iter().map(|fd| fd.rhs).collect();
    let mut covered = 0;
    let mut correct = 0;
    for cell in &log.cells {
        if !conclusion_cols.contains(&cell.col) {
            continue;
        }
        // premise observed in the dirty tuple and group has evidence?
        let fd = tax.fds.fds.iter().find(|fd| fd.rhs == cell.col).unwrap();
        let premise_known = fd.lhs.iter().all(|&l| !dirty.is_missing(cell.row, l));
        if !premise_known {
            continue;
        }
        covered += 1;
        let truth = clean.display(cell.row, cell.col);
        if imputed.display(cell.row, cell.col) == truth {
            correct += 1;
        }
    }
    assert!(covered > 5, "test needs FD-covered cells, got {covered}");
    let precision = correct as f64 / covered as f64;
    assert!(
        precision > 0.9,
        "FD repair precision {precision} on covered cells"
    );
}

#[test]
fn funforest_matches_or_beats_missforest_on_fd_columns() {
    let tax = generate(DatasetId::Tax, 0);
    let clean = head(&tax.table, 400);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.20, &mut StdRng::seed_from_u64(2));

    let cfg = MissForestConfig {
        seed: 0,
        ..Default::default()
    };
    let plain = MissForest::new(cfg).impute(&dirty);
    let fdful = MissForest::funforest(cfg, tax.fds.clone()).impute(&dirty);

    let acc = |imp: &Table| evaluate(&clean, imp, &log).accuracy().unwrap();
    let (plain_acc, fd_acc) = (acc(&plain), acc(&fdful));
    // FUNFOREST should not be materially worse than MissForest with true FDs.
    assert!(
        fd_acc >= plain_acc - 0.05,
        "FUNFOREST {fd_acc:.3} fell behind MissForest {plain_acc:.3}"
    );
}

#[test]
fn grimp_a_consumes_fds_and_imputes_conclusions() {
    let tax = generate(DatasetId::Tax, 0);
    let clean = head(&tax.table, 300);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(3));

    let cfg = GrimpConfig {
        feature_dim: 16,
        gnn: grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 16,
            ..Default::default()
        },
        merge_hidden: 32,
        embed_dim: 16,
        max_epochs: 50,
        patience: 10,
        ..GrimpConfig::fast()
    }
    .with_seed(0)
    .with_k_strategy(KStrategy::WeakDiagonalFd);
    let mut model = Grimp::with_fds(cfg, tax.fds.clone());
    let imputed = model.impute(&dirty);
    let eval = evaluate(&clean, &imputed, &log);
    // city/state/region are functions of zip: with FD-weighted attention
    // the conclusion columns should be imputed well above chance.
    let conclusion_cols: Vec<usize> = tax.fds.fds.iter().map(|fd| fd.rhs).collect();
    let mut total = 0;
    let mut correct = 0;
    for cell in log
        .cells
        .iter()
        .filter(|c| conclusion_cols.contains(&c.col))
    {
        if let Value::Cat(_) = cell.truth {
            total += 1;
            if imputed.display(cell.row, cell.col) == clean.display(cell.row, cell.col) {
                correct += 1;
            }
        }
    }
    assert!(total > 0);
    let acc = correct as f64 / total as f64;
    assert!(
        acc > 0.3,
        "GRIMP-A accuracy on FD conclusions too low: {acc:.3}"
    );
    assert!(eval.accuracy().unwrap() > 0.3);
}

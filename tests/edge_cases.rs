//! Failure-injection and degenerate-input integration tests: every imputer
//! must behave sensibly on pathological tables.

use grimp::{Grimp, GrimpConfig};
use grimp_baselines::{KnnImputer, MeanMode, Mice, MiceConfig, MissForest, MissForestConfig};
use grimp_table::{ColumnKind, Imputer, Schema, Table, Value};

fn tiny_grimp() -> Grimp {
    Grimp::new(GrimpConfig {
        feature_dim: 8,
        gnn: grimp_gnn::GnnConfig {
            layers: 1,
            hidden: 8,
            ..Default::default()
        },
        merge_hidden: 16,
        embed_dim: 8,
        max_epochs: 5,
        patience: 2,
        ..GrimpConfig::fast()
    })
}

fn roster() -> Vec<Box<dyn Imputer>> {
    vec![
        Box::new(tiny_grimp()),
        Box::new(MissForest::new(MissForestConfig {
            max_iterations: 2,
            ..Default::default()
        })),
        Box::new(Mice::new(MiceConfig {
            rounds: 1,
            epochs: 10,
            ..Default::default()
        })),
        Box::new(KnnImputer::new(3)),
        Box::new(MeanMode),
    ]
}

/// A table with no missing values passes through every imputer unchanged.
#[test]
fn clean_tables_pass_through_unchanged() {
    let schema =
        Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
    let t = Table::from_rows(
        schema,
        &[vec![Some("a"), Some("1.0")], vec![Some("b"), Some("2.0")]],
    );
    for mut algo in roster() {
        let out = algo.impute(&t);
        assert_eq!(out.n_rows(), t.n_rows(), "{}", algo.name());
        for i in 0..t.n_rows() {
            for j in 0..t.n_columns() {
                assert_eq!(
                    out.get(i, j),
                    t.get(i, j),
                    "{} changed a clean cell",
                    algo.name()
                );
            }
        }
    }
}

/// A single-row table with a missing cell cannot crash anyone.
#[test]
fn single_row_tables_do_not_crash() {
    let schema = Schema::from_pairs(&[
        ("c", ColumnKind::Categorical),
        ("d", ColumnKind::Categorical),
    ]);
    let t = Table::from_rows(schema, &[vec![Some("only"), None]]);
    for mut algo in roster() {
        let out = algo.impute(&t);
        assert_eq!(out.n_rows(), 1, "{}", algo.name());
        // nothing to learn from: any output (or none for some baselines)
        // is acceptable as long as it does not panic and known cells stay
        assert_eq!(out.display(0, 0), "only", "{}", algo.name());
    }
}

/// Constant columns (single distinct value) are imputed with that value.
#[test]
fn constant_columns_are_trivially_imputed() {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..20 {
        t.push_str_row(&[Some("const"), Some(if i % 2 == 0 { "p" } else { "q" })]);
    }
    t.set(3, 0, Value::Null);
    t.set(7, 0, Value::Null);
    for mut algo in roster() {
        let out = algo.impute(&t);
        assert_eq!(out.display(3, 0), "const", "{}", algo.name());
        assert_eq!(out.display(7, 0), "const", "{}", algo.name());
    }
}

/// Numerical columns with identical values must not produce NaNs anywhere.
#[test]
fn zero_variance_numericals_stay_finite() {
    let schema =
        Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
    let mut t = Table::empty(schema);
    for i in 0..20 {
        t.push_str_row(&[Some(if i % 2 == 0 { "a" } else { "b" }), Some("5.0")]);
    }
    t.set(4, 1, Value::Null);
    for mut algo in roster() {
        let out = algo.impute(&t);
        if let Value::Num(v) = out.get(4, 1) {
            assert!(v.is_finite(), "{} produced {v}", algo.name());
            assert!(
                (v - 5.0).abs() < 1.0,
                "{} far from the constant: {v}",
                algo.name()
            );
        }
    }
}

/// Extreme missingness (90 %) still terminates and fills what it can.
#[test]
fn extreme_missingness_terminates() {
    let schema = Schema::from_pairs(&[
        ("a", ColumnKind::Categorical),
        ("b", ColumnKind::Categorical),
        ("c", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..40 {
        let v = format!("v{}", i % 2);
        t.push_str_row(&[Some(&v), Some(&v), Some(&v)]);
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    grimp_table::inject_mcar(&mut t, 0.9, &mut rng);
    let mut model = tiny_grimp();
    let out = model.impute(&t);
    assert_eq!(out.n_missing(), 0);
}

/// Wide-domain categorical columns (every value unique) do not blow up.
#[test]
fn unique_valued_columns_are_handled() {
    let schema = Schema::from_pairs(&[
        ("id", ColumnKind::Categorical),
        ("g", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..30 {
        t.push_str_row(&[
            Some(&format!("row-{i}")),
            Some(if i % 2 == 0 { "x" } else { "y" }),
        ]);
    }
    t.set(5, 0, Value::Null);
    t.set(11, 1, Value::Null);
    let mut model = tiny_grimp();
    let out = model.impute(&t);
    assert_eq!(out.n_missing(), 0);
    // the imputed id must be from the id domain
    assert!(out.display(5, 0).starts_with("row-"));
}

/// Numerical-only and categorical-only tables both work end to end.
#[test]
fn single_kind_tables_work() {
    // numerical-only
    let schema = Schema::from_pairs(&[("x", ColumnKind::Numerical), ("y", ColumnKind::Numerical)]);
    let mut t = Table::empty(schema);
    for i in 0..30 {
        let x = i as f64;
        t.push_str_row(&[Some(&format!("{x}")), Some(&format!("{}", 2.0 * x))]);
    }
    t.set(3, 1, Value::Null);
    let out = tiny_grimp().impute(&t);
    assert!(out.get(3, 1).as_num().unwrap().is_finite());

    // categorical-only
    let schema = Schema::from_pairs(&[
        ("a", ColumnKind::Categorical),
        ("b", ColumnKind::Categorical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..30 {
        let v = format!("v{}", i % 3);
        t.push_str_row(&[Some(&v), Some(&v)]);
    }
    t.set(2, 0, Value::Null);
    let out = tiny_grimp().impute(&t);
    assert_eq!(out.n_missing(), 0);
}

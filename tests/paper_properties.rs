//! Integration tests pinning the paper-level properties the reproduction
//! claims: self-supervision (no clean data), inductive graph behavior,
//! error-analysis shape, and the Fig. 4 / Fig. 5 training-corpus semantics.

use grimp::{Grimp, GrimpConfig};
use grimp_datasets::{generate, DatasetId};
use grimp_graph::{GraphConfig, TableGraph};
use grimp_metrics::{dataset_stats, evaluate, per_value_errors};
use grimp_table::{inject_mcar, inject_typos, Corpus, Imputer, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head(table: &Table, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

fn small_config() -> GrimpConfig {
    GrimpConfig {
        feature_dim: 16,
        gnn: grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 16,
            ..Default::default()
        },
        merge_hidden: 32,
        embed_dim: 16,
        max_epochs: 40,
        patience: 8,
        ..GrimpConfig::fast()
    }
}

/// §3.3: a tuple with K non-missing attributes yields exactly K samples,
/// bounded by the column count, independent of domain sizes.
#[test]
fn training_corpus_counts_match_fig4() {
    let clean = head(&generate(DatasetId::Adult, 0).table, 100);
    let mut dirty = clean.clone();
    inject_mcar(&mut dirty, 0.3, &mut StdRng::seed_from_u64(0));
    let corpus = Corpus::build(&dirty, 0.0, &mut StdRng::seed_from_u64(1));
    let mut per_row = vec![0usize; dirty.n_rows()];
    for bucket in &corpus.train {
        for s in bucket {
            per_row[s.row] += 1;
        }
    }
    for (i, &k) in per_row.iter().enumerate() {
        let non_missing = (0..dirty.n_columns())
            .filter(|&j| !dirty.is_missing(i, j))
            .count();
        assert_eq!(k, non_missing, "row {i}");
        assert!(k <= dirty.n_columns());
    }
}

/// §3.2/§4.2: test-cell edges are absent from the graph — the model can
/// never read the answer off the graph.
#[test]
fn test_cells_have_no_edges_in_the_graph() {
    let clean = head(&generate(DatasetId::Mammogram, 0).table, 150);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(2));
    let graph = TableGraph::build(&dirty, GraphConfig::default(), &[]);
    for cell in &log.cells {
        // the rid→cell edge for the blanked value must not exist
        for t in 0..graph.n_edge_types() {
            for &(rid, _) in &graph.edges_of(t).pairs {
                if rid as usize == cell.row && t == cell.col {
                    panic!("edge present for blanked cell ({}, {})", cell.row, cell.col);
                }
            }
        }
    }
}

/// §4.2 noise experiment: 10 % typos cost only a modest accuracy drop.
#[test]
fn typo_noise_has_bounded_impact() {
    let clean = head(&generate(DatasetId::TicTacToe, 0).table, 250);

    let run = |table: &Table, seed: u64| -> f64 {
        let mut dirty = table.clone();
        let log = inject_mcar(&mut dirty, 0.05, &mut StdRng::seed_from_u64(seed));
        let mut model = Grimp::new(small_config().with_seed(0));
        let imputed = model.impute(&dirty);
        evaluate(table, &imputed, &log).accuracy().unwrap_or(0.0)
    };
    let acc_clean = run(&clean, 10);
    let mut noisy = clean.clone();
    inject_typos(&mut noisy, 0.10, &mut StdRng::seed_from_u64(11));
    let acc_noisy = run(&noisy, 10);
    assert!(
        acc_clean - acc_noisy < 0.25,
        "typos cost too much: clean {acc_clean:.3} vs noisy {acc_noisy:.3}"
    );
}

/// §5 shape: on a skewed column, measured per-value wrong fractions
/// increase from frequent to rare values for a mode-style floor.
#[test]
fn error_analysis_shape_holds() {
    let clean = head(&generate(DatasetId::Thoracic, 0).table, 300);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.5, &mut StdRng::seed_from_u64(4));
    let imputed = grimp_baselines::MeanMode.impute(&dirty);
    // pick a skewed binary column
    let col = (0..clean.n_columns())
        .find(|&j| {
            clean.schema().column(j).kind == grimp_table::ColumnKind::Categorical
                && clean.dictionary(j).len() == 2
        })
        .expect("thoracic has binary columns");
    let rows = per_value_errors(&clean, &log, &[("mode", &imputed)], col);
    assert_eq!(rows.len(), 2);
    // frequent first; the mode imputer's wrong fraction must be weakly
    // increasing toward the rare value
    let freq_wrong = rows[0].wrong_fraction[0].unwrap_or(0.0);
    let rare_wrong = rows[1].wrong_fraction[0].unwrap_or(1.0);
    assert!(
        freq_wrong <= rare_wrong,
        "shape violated: {freq_wrong} > {rare_wrong}"
    );
    // and E_v ordering matches
    assert!(rows[0].expected_wrong <= rows[1].expected_wrong);
}

/// Table 1 machinery: generated statistics vary across datasets in the
/// published direction (IMDB hardest, Flare/TT easiest frequency profiles).
#[test]
fn difficulty_ordering_matches_the_paper() {
    let imdb = dataset_stats(&generate(DatasetId::Imdb, 0).table);
    let flare = dataset_stats(&generate(DatasetId::Flare, 0).table);
    let ttt = dataset_stats(&generate(DatasetId::TicTacToe, 0).table);
    assert!(
        imdb.k_avg > flare.k_avg,
        "IMDB must have heavier tails than Flare"
    );
    assert!(imdb.n_plus_avg > flare.n_plus_avg);
    assert!(ttt.k_avg < 0.0, "Tic-Tac-Toe is flat");
    assert!(imdb.distinct > 10 * ttt.distinct);
}

/// Self-supervision: GRIMP trains on a table where *every* row contains at
/// least one missing value (no clean subset exists).
#[test]
fn no_clean_subset_is_required() {
    let clean = head(&generate(DatasetId::Mammogram, 0).table, 200);
    let mut dirty = clean.clone();
    // blank one cell in every row
    for i in 0..dirty.n_rows() {
        dirty.set(i, i % dirty.n_columns(), Value::Null);
    }
    assert!((0..dirty.n_rows()).all(|i| { (0..dirty.n_columns()).any(|j| dirty.is_missing(i, j)) }));
    let mut model = Grimp::new(small_config().with_seed(5));
    let imputed = model.impute(&dirty);
    assert_eq!(imputed.n_missing(), 0);
    let report = model.last_report().unwrap();
    assert!(report.epochs_run > 0, "training must have happened");
}

//! End-to-end integration tests: the full pipeline (generate → corrupt →
//! impute → evaluate) across crates, for every imputer in the workspace.

use grimp::{GnnMc, Grimp, GrimpConfig};
use grimp_baselines::{
    AimNetConfig, AimNetLike, DataWigConfig, DataWigLike, EmbdiMc, EmbdiMcConfig, KnnImputer,
    MeanMode, Mice, MiceConfig, MissForest, MissForestConfig, TurlConfig, TurlSub,
};
use grimp_datasets::{generate, DatasetId};
use grimp_graph::FeatureSource;
use grimp_metrics::evaluate;
use grimp_table::{check_imputation_contract, inject_mcar, Imputer, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head(table: &Table, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

fn small_config() -> GrimpConfig {
    GrimpConfig {
        feature_dim: 16,
        gnn: grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 16,
            ..Default::default()
        },
        merge_hidden: 32,
        embed_dim: 16,
        max_epochs: 40,
        patience: 8,
        lr: 2e-2,
        ..GrimpConfig::fast()
    }
}

/// Every imputer satisfies the contract and beats random guessing on a
/// clustered mixed dataset.
#[test]
fn all_imputers_run_the_full_pipeline() {
    let clean = head(&generate(DatasetId::Mammogram, 0).table, 250);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(1));

    let roster: Vec<Box<dyn Imputer>> = vec![
        Box::new(Grimp::new(small_config().with_seed(0))),
        Box::new(Grimp::new(
            small_config()
                .with_seed(0)
                .with_features(FeatureSource::Embdi),
        )),
        Box::new(Grimp::new(small_config().with_seed(0).with_linear_tasks())),
        Box::new(GnnMc::new(small_config().with_seed(0))),
        Box::new(MissForest::new(MissForestConfig::default())),
        Box::new(AimNetLike::new(AimNetConfig {
            epochs: 40,
            ..Default::default()
        })),
        Box::new(TurlSub::new(TurlConfig {
            epochs: 40,
            ..Default::default()
        })),
        Box::new(EmbdiMc::new(EmbdiMcConfig {
            epochs: 40,
            ..Default::default()
        })),
        Box::new(DataWigLike::new(DataWigConfig {
            epochs: 40,
            ..Default::default()
        })),
        Box::new(Mice::new(MiceConfig {
            epochs: 40,
            ..Default::default()
        })),
        Box::new(KnnImputer::new(5)),
        Box::new(MeanMode),
    ];
    for mut algo in roster {
        let imputed = algo.impute(&dirty);
        check_imputation_contract(&dirty, &imputed)
            .unwrap_or_else(|e| panic!("{} violated the contract: {e}", algo.name()));
        let eval = evaluate(&clean, &imputed, &log);
        let acc = eval.accuracy().expect("categorical cells exist");
        // Mammogram columns have ≤5 values: random ≈ 0.2–0.5; every method
        // should clear 0.30 on this clustered table.
        assert!(acc > 0.30, "{} accuracy too low: {acc}", algo.name());
        let rmse = eval.rmse().expect("numerical cells exist");
        assert!(
            rmse.is_finite() && rmse < 3.0,
            "{} rmse out of range: {rmse}",
            algo.name()
        );
    }
}

/// GRIMP beats the mode/mean floor on structured data — the minimal bar for
/// "the model learned something".
#[test]
fn grimp_beats_the_mode_floor() {
    let clean = head(&generate(DatasetId::Contraceptive, 0).table, 300);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.20, &mut StdRng::seed_from_u64(2));

    let mut grimp = Grimp::new(small_config().with_seed(1));
    let grimp_acc = evaluate(&clean, &grimp.impute(&dirty), &log)
        .accuracy()
        .unwrap();
    let mode_acc = evaluate(&clean, &MeanMode.impute(&dirty), &log)
        .accuracy()
        .unwrap();
    assert!(
        grimp_acc >= mode_acc,
        "GRIMP ({grimp_acc:.3}) must not lose to mode fill ({mode_acc:.3})"
    );
}

/// High missingness (50 %) still trains and imputes — the paper's hardest
/// setting.
#[test]
fn pipeline_survives_fifty_percent_missingness() {
    let clean = head(&generate(DatasetId::Flare, 0).table, 250);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.50, &mut StdRng::seed_from_u64(3));
    assert!((dirty.missing_fraction() - 0.5).abs() < 0.01);

    let mut grimp = Grimp::new(small_config().with_seed(2));
    let imputed = grimp.impute(&dirty);
    check_imputation_contract(&dirty, &imputed).unwrap();
    let eval = evaluate(&clean, &imputed, &log);
    assert!(
        eval.accuracy().unwrap() > 0.2,
        "degenerate output at 50% missingness"
    );
}

/// Multiple missing values in the same row (the Fig. 5 scenario) are
/// handled: the same input vector yields different per-task imputations.
#[test]
fn multiple_missing_values_in_one_row() {
    let clean = head(&generate(DatasetId::TicTacToe, 0).table, 200);
    let mut dirty = clean.clone();
    // blank entire rows' worth of cells
    for j in 0..4 {
        for i in 0..30 {
            dirty.set(i, j, Value::Null);
        }
    }
    let mut grimp = Grimp::new(small_config().with_seed(3));
    let imputed = grimp.impute(&dirty);
    assert_eq!(imputed.n_missing(), 0);
    // the per-column domains must be respected even for fully-masked slots
    for i in 0..30 {
        for j in 0..4 {
            let v = imputed.display(i, j);
            assert!(["x", "o", "b"].contains(&v.as_str()), "illegal value {v}");
        }
    }
}

/// Imputation is deterministic for a fixed seed (GRIMP and MissForest).
#[test]
fn imputation_is_deterministic_per_seed() {
    let clean = head(&generate(DatasetId::Mammogram, 0).table, 150);
    let mut dirty = clean.clone();
    inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(4));

    let a = Grimp::new(small_config().with_seed(9)).impute(&dirty);
    let b = Grimp::new(small_config().with_seed(9)).impute(&dirty);
    assert_eq!(a, b, "GRIMP must be deterministic per seed");

    let a = MissForest::new(MissForestConfig {
        seed: 9,
        ..Default::default()
    })
    .impute(&dirty);
    let b = MissForest::new(MissForestConfig {
        seed: 9,
        ..Default::default()
    })
    .impute(&dirty);
    assert_eq!(a, b, "MissForest must be deterministic per seed");
}

//! # grimp-repro
//!
//! Workspace facade of the GRIMP reproduction (*"Relational Data Imputation
//! with Graph Neural Networks"*, EDBT 2024). Re-exports every member crate
//! and offers a [`prelude`] with the handful of types most programs need.
//!
//! ```
//! use grimp_repro::prelude::*;
//!
//! let dirty = read_csv_str("a,b\nx,1\ny,\nx,1\n").unwrap();
//! let config = GrimpConfigBuilder::from_config(GrimpConfig::fast())
//!     .seed(0)
//!     .build()
//!     .unwrap();
//! let mut model = Pipeline::new(config).unwrap().fit(&dirty).unwrap();
//! let imputed = model.impute(&dirty).unwrap();
//! assert_eq!(imputed.n_missing(), 0);
//! ```

#![warn(missing_docs)]

pub use grimp;
pub use grimp_baselines as baselines;
pub use grimp_datasets as datasets;
pub use grimp_gnn as gnn;
pub use grimp_graph as graph;
pub use grimp_metrics as metrics;
pub use grimp_obs as obs;
pub use grimp_table as table;
pub use grimp_tensor as tensor;

/// The types most imputation programs need.
pub mod prelude {
    pub use grimp::{
        CheckpointPolicy, ColumnTier, ConfigError, EpochStats, ErrorCategory, FittedModel, Grimp,
        GrimpConfig, GrimpConfigBuilder, GrimpError, KStrategy, Pipeline, ResourceLimits,
        SamplerConfig, TaskKind, TrainReport, TrainedGrimp,
    };
    pub use grimp_metrics::{dataset_stats, evaluate};
    pub use grimp_obs::{EventKind, EventSink, JsonlSink, MemorySink, NullSink};
    pub use grimp_table::csv::{read_csv, read_csv_str, to_csv_string, write_csv};
    pub use grimp_table::{
        inject_mcar, inject_mnar, inject_typos, ColumnKind, FdSet, Imputer, Schema, Table, Value,
    };
}

#!/bin/bash
# Runs every experiment binary across two parallel queues (2-core host),
# teeing logs to target/experiments/logs/.
set -u
mkdir -p target/experiments/logs
run() {
  for bin in "$@"; do
    echo "=== $bin start $(date +%H:%M:%S) ==="
    ./target/release/$bin > target/experiments/logs/$bin.log 2>&1
    echo "=== $bin exit=$? $(date +%H:%M:%S) ==="
  done
}
# Queue A: the big grid, then its dependents.
run fig8_accuracy fig9_time fig11_12_error_analysis &
A=$!
# Queue B: everything else.
run tab1_stats tab2_attention_linear fig10_ablation tab3_fd tab4_correlation noise_robustness &
B=$!
wait $A $B
echo CAMPAIGN_DONE

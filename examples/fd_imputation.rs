//! Functional dependencies as external information (paper §4.3).
//!
//! Generates a Tax-like table whose FDs (zip → city → state → region) hold
//! exactly, corrupts it, and compares four repair strategies:
//! FD-REPAIR (minimality), MissForest, FUNFOREST (FD-pointed forests) and
//! GRIMP-A (attention with the Weak-diagonal+FD `K` matrix).
//!
//! ```bash
//! cargo run --release --example fd_imputation
//! ```

use grimp::{Grimp, GrimpConfig, KStrategy};
use grimp_baselines::{FdRepair, MissForest, MissForestConfig};
use grimp_datasets::{generate, DatasetId};
use grimp_metrics::evaluate;
use grimp_table::{inject_mcar, Imputer, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A row-capped Tax dataset keeps the example snappy.
    let tax = generate(DatasetId::Tax, 0);
    let clean = head(&tax.table, 500);
    println!(
        "Tax-like dataset: {} rows, {} FDs declared",
        clean.n_rows(),
        tax.fds.len()
    );
    for fd in &tax.fds.fds {
        let lhs: Vec<&str> = fd
            .lhs
            .iter()
            .map(|&j| clean.schema().column(j).name.as_str())
            .collect();
        println!(
            "  {} -> {}   (holds: {})",
            lhs.join(", "),
            clean.schema().column(fd.rhs).name,
            fd.holds_on(&clean)
        );
    }

    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.20, &mut StdRng::seed_from_u64(1));
    println!("\ninjected {} missing cells (20% MCAR)\n", log.len());

    let grimp_a_cfg = GrimpConfig::fast()
        .with_seed(0)
        .with_k_strategy(KStrategy::WeakDiagonalFd);
    let algorithms: Vec<Box<dyn Imputer>> = vec![
        Box::new(FdRepair::new(tax.fds.clone())),
        Box::new(MissForest::new(MissForestConfig::default())),
        Box::new(MissForest::funforest(
            MissForestConfig::default(),
            tax.fds.clone(),
        )),
        Box::new(Grimp::with_fds(grimp_a_cfg, tax.fds.clone())),
    ];

    println!(
        "{:<18} {:>9} {:>7} {:>9}",
        "algorithm", "accuracy", "rmse", "seconds"
    );
    for mut algo in algorithms {
        let start = std::time::Instant::now();
        let imputed = algo.impute(&dirty);
        let secs = start.elapsed().as_secs_f64();
        let eval = evaluate(&clean, &imputed, &log);
        println!(
            "{:<18} {:>9} {:>7} {:>8.1}s",
            algo.name(),
            eval.accuracy()
                .map(|a| format!("{a:.3}"))
                .unwrap_or_default(),
            eval.rmse().map(|r| format!("{r:.3}")).unwrap_or_default(),
            secs
        );
    }
    println!("\nexpected shape: FD-REPAIR precise only where FDs reach (poor overall),");
    println!("FUNFOREST >= MissForest, GRIMP-A exploits both FDs and tuple similarity.");
}

fn head(table: &Table, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

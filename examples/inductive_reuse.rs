//! Inductive reuse and model introspection (paper §7 future work).
//!
//! Trains GRIMP once, then (1) imputes a *fresh* table of unseen tuples
//! with the same trained weights, (2) prints each task's learned attention
//! profile — functional dependencies show up as concentrated attention —
//! and (3) demonstrates the self-supervised hyperparameter tuner.
//!
//! ```bash
//! cargo run --release --example inductive_reuse
//! ```

use grimp::{default_candidates, select_config, GrimpConfig, TrainedGrimp, TunerConfig};
use grimp_datasets::{generate, DatasetId};
use grimp_metrics::evaluate;
use grimp_table::{inject_mcar, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head(table: &Table, from: usize, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in from..(from + n).min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

fn main() {
    let tax = generate(DatasetId::Tax, 0);
    // disjoint train and deployment slices of the same distribution
    let train_clean = head(&tax.table, 0, 400);
    let deploy_clean = head(&tax.table, 400, 200);

    let mut train_dirty = train_clean.clone();
    inject_mcar(&mut train_dirty, 0.10, &mut StdRng::seed_from_u64(1));

    // 1. hyperparameter tuning on the self-supervised validation signal
    let base = GrimpConfig::fast().with_seed(0);
    let (best, probes) = select_config(
        &train_dirty,
        &tax.fds,
        &default_candidates(&base),
        TunerConfig {
            probe_epochs: 12,
            probe_patience: 4,
        },
    );
    println!("tuner probes (lower val loss is better):");
    for p in &probes {
        println!(
            "  {:<18} val_loss={:.3} ({} epochs, {:.1}s)",
            p.name, p.val_loss, p.epochs_run, p.seconds
        );
    }
    println!("selected: lr={}, {:?} tasks\n", best.lr, best.task_kind);

    // 2. train once, keep the model
    let mut model = TrainedGrimp::fit(best, &tax.fds, &train_dirty);
    println!(
        "trained {} epochs ({} weights)\n",
        model.report().epochs_run,
        model.report().n_weights
    );

    // 3. attention introspection: where does each task look?
    println!("attention profile (rows = imputed attribute, columns = attended attribute):");
    let profiles = model.attention_profile(&train_dirty, 100);
    let names: Vec<&str> = train_clean
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    print!("{:<8}", "");
    for n in &names {
        print!("{n:>7}");
    }
    println!();
    for (j, profile) in profiles.iter().enumerate() {
        print!("{:<8}", names[j]);
        match profile {
            Some(p) => {
                for v in p {
                    print!("{v:>7.2}");
                }
            }
            None => print!("  (linear task)"),
        }
        println!();
    }

    // 4. impute the unseen deployment slice with the same model
    let mut deploy_dirty = deploy_clean.clone();
    let log = inject_mcar(&mut deploy_dirty, 0.15, &mut StdRng::seed_from_u64(2));
    let imputed = model.impute_table(&deploy_dirty);
    let eval = evaluate(&deploy_clean, &imputed, &log);
    println!(
        "\nunseen-tuple imputation: accuracy={} rmse={} over {} test cells",
        eval.accuracy()
            .map(|a| format!("{a:.3}"))
            .unwrap_or_default(),
        eval.rmse().map(|r| format!("{r:.3}")).unwrap_or_default(),
        log.len()
    );
    println!("(no retraining happened — the GNN is inductive, features are hash-based)");
}

//! Federated imputation (paper §7 future work): three parties hold
//! disjoint shards of a table; only model weights are exchanged (FedAvg),
//! never rows. Compares the federated model against (a) a centralized
//! GRIMP that sees everything and (b) each party training alone.
//!
//! ```bash
//! cargo run --release --example federated
//! ```

use grimp::{FederatedConfig, FederatedGrimp, Grimp, GrimpConfig};
use grimp_datasets::{generate, DatasetId};
use grimp_metrics::evaluate;
use grimp_table::{inject_mcar, Imputer, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head(table: &Table, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

fn main() {
    let clean = head(&generate(DatasetId::Contraceptive, 0).table, 450);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(1));
    println!(
        "{} rows across 3 parties, {} missing cells\n",
        clean.n_rows(),
        log.len()
    );

    let base = GrimpConfig {
        max_epochs: 40,
        patience: 40,
        ..GrimpConfig::fast()
    }
    .with_seed(0);

    // centralized reference: one model sees the whole table
    let mut central = Grimp::new(base.clone());
    let central_acc = evaluate(&clean, &central.impute(&dirty), &log)
        .accuracy()
        .unwrap();

    // federated: 8 rounds x 5 local epochs, weights-only exchange
    let mut fed = FederatedGrimp::new(FederatedConfig {
        parties: 3,
        rounds: 8,
        local_epochs: 5,
        base: base.clone(),
    });
    let fed_imputed = fed.fit_impute(&dirty);
    let fed_acc = evaluate(&clean, &fed_imputed, &log).accuracy().unwrap();
    let report = fed.last_report().unwrap();

    // isolation baseline: party 0 trains alone on its third of the data
    let mut shard = Table::empty(Schema::clone(dirty.schema()));
    for j in 0..dirty.n_columns() {
        if dirty.schema().column(j).kind == grimp_table::ColumnKind::Categorical {
            for v in dirty.dictionary(j) {
                shard.intern(j, v);
            }
        }
    }
    for i in (0..dirty.n_rows()).step_by(3) {
        let row: Vec<Value> = (0..dirty.n_columns()).map(|j| dirty.get(i, j)).collect();
        shard.push_value_row(&row);
    }
    let mut lonely = Grimp::new(base);
    let lonely_imputed = lonely.impute(&shard);
    // evaluate party 0's shard cells only
    let mut correct = 0usize;
    let mut total = 0usize;
    for cell in log.cells.iter().filter(|c| c.row % 3 == 0) {
        if let Value::Cat(_) = cell.truth {
            total += 1;
            let local_row = cell.row / 3;
            if lonely_imputed.display(local_row, cell.col) == clean.display(cell.row, cell.col) {
                correct += 1;
            }
        }
    }
    let lonely_acc = correct as f64 / total.max(1) as f64;

    println!("centralized GRIMP accuracy:        {central_acc:.3}");
    println!(
        "federated GRIMP accuracy:          {fed_acc:.3}  ({} rounds, {} params/round exchanged)",
        report.rounds_run, report.params_per_round
    );
    println!("party-0 training alone (shard):    {lonely_acc:.3}");
    println!("\nfederation recovers most of the centralized accuracy without any");
    println!("party ever revealing a row — only weight vectors cross the wire.");
}

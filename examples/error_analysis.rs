//! Rare-value error analysis (paper §5, Figures 11–12).
//!
//! Builds a skewed table, imputes with three methods, and prints the
//! per-value wrong-imputation distribution next to the expected error
//! `E_v = 1 − f_v` — reproducing the paper's observation that *every*
//! method nails frequent values and fails on rare ones.
//!
//! ```bash
//! cargo run --release --example error_analysis
//! ```

use grimp::{Grimp, GrimpConfig};
use grimp_baselines::{KnnImputer, MeanMode, MissForest, MissForestConfig};
use grimp_metrics::per_value_errors;
use grimp_table::{inject_mcar, ColumnKind, Imputer, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // One very skewed column ("f" 85 %, "t" 15 %) plus a weakly predictive
    // context column — the Thoracic PRE8 situation from Figure 11.
    let schema = Schema::from_pairs(&[
        ("pre8", ColumnKind::Categorical),
        ("pre9", ColumnKind::Categorical),
        ("context", ColumnKind::Categorical),
    ]);
    let mut rng = StdRng::seed_from_u64(0);
    let mut clean = Table::empty(schema);
    for _ in 0..600 {
        let rare = rng.gen::<f64>() < 0.15;
        let (a, b) = if rare { ("t", "t") } else { ("f", "f") };
        // context hints at rarity 70 % of the time
        let ctx = if rng.gen::<f64>() < 0.7 {
            if rare {
                "risky"
            } else {
                "normal"
            }
        } else if rng.gen::<bool>() {
            "risky"
        } else {
            "normal"
        };
        clean.push_str_row(&[Some(a), Some(b), Some(ctx)]);
    }

    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, 0.30, &mut StdRng::seed_from_u64(1));
    println!(
        "{} rows, {} injected missing cells\n",
        clean.n_rows(),
        log.len()
    );

    let mut results: Vec<(String, Table)> = Vec::new();
    let roster: Vec<Box<dyn Imputer>> = vec![
        Box::new(MeanMode),
        Box::new(KnnImputer::new(5)),
        Box::new(MissForest::new(MissForestConfig::default())),
        Box::new(Grimp::new(GrimpConfig::fast().with_seed(3))),
    ];
    for mut algo in roster {
        let imputed = algo.impute(&dirty);
        results.push((algo.name().to_string(), imputed));
    }
    let refs: Vec<(&str, &Table)> = results.iter().map(|(n, t)| (n.as_str(), t)).collect();

    for col in 0..2 {
        let name = &clean.schema().column(col).name;
        println!("attribute `{name}` — fraction of WRONG imputations per value");
        println!("(values sorted by descending frequency; 0.00 = perfect)\n");
        print!("{:<8} {:>6} {:>9}", "value", "freq", "expected");
        for (n, _) in &refs {
            print!(" {n:>12}");
        }
        println!();
        for row in per_value_errors(&clean, &log, &refs, col) {
            print!(
                "{:<8} {:>6.2} {:>9.2}",
                row.value, row.frequency, row.expected_wrong
            );
            for w in &row.wrong_fraction {
                match w {
                    Some(w) => print!(" {w:>12.2}"),
                    None => print!(" {:>12}", "-"),
                }
            }
            println!();
        }
        println!();
    }
    println!("the paper's finding in miniature: the frequent value is imputed almost");
    println!("perfectly by every method, the rare value mostly wrongly — near the");
    println!("frequency-based expectation E_v = 1 - f_v (mitigated only by methods");
    println!("that exploit the context column).");
}

//! Quickstart: impute missing values in a small mixed-type CSV with GRIMP.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use grimp::{GrimpConfig, Pipeline};
use grimp_obs::{EventKind, MemorySink};
use grimp_table::csv::{read_csv_str, to_csv_string};

fn main() {
    // A dirty table: empty fields are missing values. Column `city`
    // functionally determines `country`, and `salary` clusters by seniority
    // — exactly the tuple- and attribute-level structure GRIMP exploits.
    let mut csv = String::from("city,country,seniority,salary\n");
    let rows = [
        ("Paris", "France", "senior", "95000"),
        ("Paris", "France", "junior", "55000"),
        ("Rome", "Italy", "senior", "90000"),
        ("Rome", "Italy", "junior", "52000"),
        ("Berlin", "Germany", "senior", "98000"),
        ("Berlin", "Germany", "junior", "56000"),
    ];
    // replicate with some blanks to give the model something to do
    for rep in 0..10 {
        for (i, (city, country, seniority, salary)) in rows.iter().enumerate() {
            let blank = (rep + i) % 7;
            let country = if blank == 0 { "" } else { country };
            let salary = if blank == 1 { "" } else { salary };
            let city = if blank == 2 { "" } else { city };
            csv.push_str(&format!("{city},{country},{seniority},{salary}\n"));
        }
    }

    let dirty = read_csv_str(&csv).expect("valid CSV");
    println!(
        "dirty table: {} rows x {} columns, {} missing cells ({:.0}%)",
        dirty.n_rows(),
        dirty.n_columns(),
        dirty.n_missing(),
        100.0 * dirty.missing_fraction()
    );

    // GRIMP is self-supervised: it trains on the dirty table itself. The
    // builder validates the configuration; the Pipeline separates the fit
    // from (possibly many) imputations; the sink records a structured
    // trace of everything the run did.
    let config = grimp::GrimpConfigBuilder::from_config(GrimpConfig::fast())
        .seed(42)
        .build()
        .expect("valid config");
    let pipeline = Pipeline::new(config).expect("validated config");
    let mut sink = MemorySink::new();
    let mut model = pipeline
        .fit_traced(&dirty, &mut sink)
        .expect("table has columns");
    let imputed = model.impute(&dirty).expect("training table");

    let report = model.report();
    println!(
        "trained {} epochs ({} weights), early stop: {}",
        report.epochs_run, report.n_weights, report.early_stopped
    );
    println!(
        "trace: {} events; graph build {:.1}ms, forward {:.1}ms, backward {:.1}ms",
        sink.len(),
        1e3 * sink.span_seconds("graph_build"),
        1e3 * sink.span_seconds("forward"),
        1e3 * sink.span_seconds("backward"),
    );
    println!(
        "epoch durations: p50 {:.2}ms, p95 {:.2}ms (over {} epochs)",
        sink.span_histogram("epoch").quantile(0.5) as f64 / 1e6,
        sink.span_histogram("epoch").quantile(0.95) as f64 / 1e6,
        sink.count_of(EventKind::SpanExit, "epoch"),
    );
    assert_eq!(imputed.n_missing(), 0, "every cell imputed");

    println!("\nfirst 12 imputed rows:");
    for line in to_csv_string(&imputed).lines().take(13) {
        println!("  {line}");
    }

    // Show a few specific repairs.
    println!("\nsample repairs (row: column -> imputed value):");
    let mut shown = 0;
    for (i, j) in dirty.missing_cells() {
        println!(
            "  row {i:>2}: {:<10} -> {}",
            dirty.schema().column(j).name,
            imputed.display(i, j)
        );
        shown += 1;
        if shown == 8 {
            break;
        }
    }
}

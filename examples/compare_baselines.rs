//! Leaderboard: every imputer in the workspace on one generated dataset.
//!
//! ```bash
//! cargo run --release --example compare_baselines [dataset-abbr] [rate]
//! # e.g. cargo run --release --example compare_baselines MM 0.2
//! ```

use grimp::{GnnMc, Grimp, GrimpConfig};
use grimp_baselines::{
    AimNetConfig, AimNetLike, DataWigConfig, DataWigLike, EmbdiMc, EmbdiMcConfig, KnnImputer,
    MeanMode, Mice, MiceConfig, MissForest, MissForestConfig, TurlConfig, TurlSub,
};
use grimp_datasets::{generate, DatasetId};
use grimp_graph::FeatureSource;
use grimp_metrics::evaluate;
use grimp_table::{inject_mcar, Imputer, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let abbr = args.get(1).map(String::as_str).unwrap_or("MM");
    let rate: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let id = DatasetId::ALL
        .into_iter()
        .find(|id| id.abbr() == abbr)
        .unwrap_or_else(|| {
            panic!("unknown dataset {abbr}; use one of AD AU CO CR FL IM MM TA TH TT")
        });

    let dataset = generate(id, 0);
    let clean = head(&dataset.table, 600);
    let mut dirty = clean.clone();
    let log = inject_mcar(&mut dirty, rate, &mut StdRng::seed_from_u64(1));
    println!(
        "{} ({} rows used, {:.0}% missing, {} test cells)\n",
        dataset.name,
        clean.n_rows(),
        rate * 100.0,
        log.len()
    );

    let cfg = GrimpConfig::fast().with_seed(0);
    let roster: Vec<Box<dyn Imputer>> = vec![
        Box::new(Grimp::new(
            cfg.clone().with_features(FeatureSource::FastText),
        )),
        Box::new(Grimp::new(cfg.clone().with_features(FeatureSource::Embdi))),
        Box::new(Grimp::new(cfg.clone().with_linear_tasks())),
        Box::new(GnnMc::new(cfg)),
        Box::new(MissForest::new(MissForestConfig::default())),
        Box::new(AimNetLike::new(AimNetConfig::default())),
        Box::new(TurlSub::new(TurlConfig::default())),
        Box::new(EmbdiMc::new(EmbdiMcConfig::default())),
        Box::new(DataWigLike::new(DataWigConfig::default())),
        Box::new(Mice::new(MiceConfig::default())),
        Box::new(KnnImputer::new(5)),
        Box::new(MeanMode),
    ];

    let mut scored: Vec<(String, Option<f64>, Option<f64>, f64)> = Vec::new();
    for mut algo in roster {
        let start = std::time::Instant::now();
        let imputed = algo.impute(&dirty);
        let secs = start.elapsed().as_secs_f64();
        let eval = evaluate(&clean, &imputed, &log);
        scored.push((algo.name().to_string(), eval.accuracy(), eval.rmse(), secs));
        eprintln!("  {} done ({secs:.1}s)", algo.name());
    }
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "\n{:<18} {:>9} {:>7} {:>8}",
        "algorithm", "accuracy", "rmse", "seconds"
    );
    println!("{}", "-".repeat(46));
    for (name, acc, rmse, secs) in scored {
        println!(
            "{name:<18} {:>9} {:>7} {secs:>7.1}s",
            acc.map(|a| format!("{a:.3}")).unwrap_or_else(|| "-".into()),
            rmse.map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn head(table: &Table, n: usize) -> Table {
    let mut out = Table::empty(Schema::clone(table.schema()));
    for i in 0..n.min(table.n_rows()) {
        let row: Vec<Value> = (0..table.n_columns())
            .map(|j| match table.get(i, j) {
                Value::Cat(_) => Value::Cat(out.intern(j, &table.display(i, j))),
                v => v,
            })
            .collect();
        out.push_value_row(&row);
    }
    out
}

//! Integration suite for crash-safe incremental imputation: the WAL-backed
//! append state machine (`Pipeline::append`), its recovery edge cases
//! (torn tails, foreign generations, double replay), and the kill-point
//! sweep proving an interrupted append converges bit-identically to the
//! uninterrupted run.

use std::path::{Path, PathBuf};

use grimp::{
    table_to_wal_rows, AppendPath, ErrorCategory, FinetuneConfig, GrimpConfig, GrimpError,
    Pipeline, ShutdownFlag, TrainReport, WalBase, WalRow, WalSegment, CHECKPOINT_FILE,
    CHECKPOINT_PREV_FILE, WAL_APPLIED_FILE, WAL_FILE,
};
use grimp_obs::{names, MemorySink, RealFs};
use grimp_table::{ColumnKind, Schema, Table};

/// Base table: two correlated categoricals plus a numerical, with a few
/// missing cells sprinkled deterministically.
fn base_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let k = format!("k{}", i % 4);
        let v = format!("v{}", i % 4);
        let x = format!("{}", (i % 4) as f64 * 10.0);
        let row: [Option<&str>; 3] = match i % 9 {
            7 => [None, Some(&v), Some(&x)],
            5 => [Some(&k), Some(&v), None],
            _ => [Some(&k), Some(&v), Some(&x)],
        };
        t.push_str_row(&row);
    }
    t
}

/// Rows to append, following the base pattern (no new dictionary values)
/// with one missing cell per row.
fn delta_rows() -> Vec<WalRow> {
    vec![
        vec![Some("k1".into()), None, Some("10".into())],
        vec![None, Some("v2".into()), Some("20".into())],
        vec![Some("k3".into()), Some("v3".into()), None],
    ]
}

fn incr_config(dir: &Path) -> GrimpConfig {
    GrimpConfig::builder()
        .feature_dim(8)
        .gnn(grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        })
        .merge_hidden(16)
        .embed_dim(8)
        .max_epochs(5)
        .patience(50)
        .learning_rate(2e-2)
        .seed(17)
        .checkpointing(grimp::CheckpointPolicy {
            dir: Some(dir.to_path_buf()),
            every: 1,
            ..Default::default()
        })
        .finetune(FinetuneConfig {
            epochs: 3,
            drift_band: 0.25,
        })
        .build()
        .expect("valid config")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grimp-incr-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        if entry.file_type().expect("type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
        }
    }
}

/// Fit the base model so a checkpoint generation exists under `dir`.
fn fit_base(dir: &Path, base: &Table) {
    let pipeline = Pipeline::new(incr_config(dir)).expect("validated");
    let fitted = pipeline.fit(base).expect("base fit");
    assert!(
        !fitted.report().degraded_to_baseline,
        "base fit must keep its GNN"
    );
    assert!(
        dir.join(CHECKPOINT_FILE).exists(),
        "base checkpoint on disk"
    );
}

#[test]
fn append_finetunes_rotates_the_wal_and_reports_drift() {
    let dir = fresh_dir("happy");
    let base = base_table(45);
    fit_base(&dir, &base);

    let mut sink = MemorySink::new();
    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline
        .append_traced(&base, &delta_rows(), &mut sink)
        .expect("append");

    assert_eq!(out.path, AppendPath::Finetune);
    assert_eq!(out.appended_rows, 3);
    assert!(!out.replayed);
    assert_eq!(out.table.n_rows(), base.n_rows() + 3);
    assert_eq!(out.imputed.n_missing(), 0, "every cell filled");
    for i in 0..base.n_rows() {
        for j in 0..base.n_columns() {
            if !base.is_missing(i, j) {
                assert_eq!(
                    out.imputed.display(i, j),
                    base.display(i, j),
                    "observed base cell ({i},{j}) rewritten"
                );
            }
        }
    }
    assert!(!dir.join(WAL_FILE).exists(), "WAL rotated away");
    assert!(dir.join(WAL_APPLIED_FILE).exists(), "applied segment kept");
    assert!(
        out.report.epochs_run > 0 && out.report.epochs_run <= 3,
        "fine-tune ran at most finetune.epochs ({})",
        out.report.epochs_run
    );
    assert!(
        out.report.resumed_from_epoch.is_some(),
        "fine-tune resumes the base checkpoint"
    );

    // The drift check ran and its verdict is consistent with the band.
    let drift = out.report.drift.expect("drift check on fine-tune");
    assert_eq!(out.report.refit_scheduled, drift > 0.25);

    // The trace carries the append lifecycle and replays to the same report.
    let events = sink.events();
    for name in [
        names::WAL_WRITE,
        names::WAL_ROTATE,
        names::APPEND,
        names::FINETUNE,
    ] {
        assert!(
            events.iter().any(|e| e.name == name),
            "missing {name:?} event"
        );
    }
    let replayed = TrainReport::from_events(events);
    assert_eq!(replayed.drift, out.report.drift);
    assert_eq!(replayed.refit_scheduled, out.report.refit_scheduled);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn new_dictionary_values_take_the_refit_path() {
    let dir = fresh_dir("refit");
    let base = base_table(45);
    fit_base(&dir, &base);

    let rows: Vec<WalRow> = vec![vec![Some("k-brand-new".into()), None, Some("12.5".into())]];
    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &rows).expect("append");

    assert_eq!(out.path, AppendPath::Refit);
    assert_eq!(out.imputed.n_missing(), 0);
    assert_eq!(out.imputed.display(base.n_rows(), 0), "k-brand-new");
    assert!(dir.join(WAL_APPLIED_FILE).exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_without_a_checkpoint_dir_is_a_config_error() {
    let mut cfg = incr_config(Path::new("/tmp/unused"));
    cfg.checkpoint_dir = None;
    let pipeline = Pipeline::new(cfg).expect("validated");
    let err = pipeline
        .append(&base_table(20), &delta_rows())
        .expect_err("must reject");
    assert_eq!(err.category(), ErrorCategory::Config);
}

#[test]
fn append_with_no_prior_fit_refits_from_the_data() {
    let dir = fresh_dir("cold");
    let base = base_table(40);
    // No fit_base: the directory is empty, so the WAL is tagged with the
    // zero generation and the append must do the full first fit itself.
    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &delta_rows()).expect("append");

    assert_eq!(out.path, AppendPath::Refit);
    assert_eq!(out.imputed.n_missing(), 0);
    assert!(dir.join(CHECKPOINT_FILE).exists(), "refit checkpointed");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_append_with_nothing_pending_trains_nothing_but_still_imputes() {
    let dir = fresh_dir("empty");
    let base = base_table(40);
    fit_base(&dir, &base);

    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &[]).expect("append");

    assert_eq!(out.appended_rows, 0);
    assert_eq!(out.table.n_rows(), base.n_rows());
    assert_eq!(
        out.report.epochs_run, 0,
        "an empty delta has no training samples"
    );
    assert_eq!(out.imputed.n_missing(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Write a pending WAL tagged with the *current* on-disk generation, the
/// way an interrupted append would have left it.
fn plant_wal(dir: &Path, rows: &[WalRow], n_columns: usize) -> WalSegment {
    let bytes = std::fs::read(dir.join(CHECKPOINT_FILE)).expect("ckpt");
    let ck = grimp::TrainCheckpoint::from_bytes(&bytes).expect("decode");
    let mut segment = WalSegment::new(
        WalBase {
            ckpt_crc: grimp::checkpoint::crc32(&bytes),
            epoch: ck.epoch,
        },
        n_columns,
    );
    segment.rows = rows.to_vec();
    let mut fs = RealFs;
    segment
        .write(&mut fs, &dir.join(WAL_FILE))
        .expect("wal write");
    segment
}

#[test]
fn torn_pending_wal_is_recovered_from_the_full_request() {
    let dir = fresh_dir("torn-full");
    let base = base_table(40);
    fit_base(&dir, &base);

    // Tear the last record off the planted segment, as a crash mid-write
    // through a non-atomic disk would.
    let segment = plant_wal(&dir, &delta_rows(), base.n_columns());
    let whole = segment.to_bytes();
    std::fs::write(dir.join(WAL_FILE), &whole[..whole.len() - 5]).expect("tear");

    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &delta_rows()).expect("append");

    assert!(out.replayed);
    assert!(out.torn_tail);
    assert_eq!(out.appended_rows, 3, "full request restores the torn rows");
    assert_eq!(out.path, AppendPath::Finetune);
    assert_eq!(out.imputed.n_missing(), 0);
    assert!(!dir.join(WAL_FILE).exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_pending_wal_replayed_bare_keeps_the_intact_prefix() {
    let dir = fresh_dir("torn-bare");
    let base = base_table(40);
    fit_base(&dir, &base);

    let segment = plant_wal(&dir, &delta_rows(), base.n_columns());
    let whole = segment.to_bytes();
    std::fs::write(dir.join(WAL_FILE), &whole[..whole.len() - 5]).expect("tear");

    // Recovery without the original rows (e.g. `grimp append` re-run with
    // no request) applies what survived and flags the tear.
    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &[]).expect("append");

    assert!(out.replayed && out.torn_tail);
    assert_eq!(out.appended_rows, 2, "last row was torn away");
    assert_eq!(out.imputed.n_missing(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conflicting_pending_wal_is_a_typed_data_error() {
    let dir = fresh_dir("conflict");
    let base = base_table(40);
    fit_base(&dir, &base);
    plant_wal(&dir, &delta_rows(), base.n_columns());

    let other: Vec<WalRow> = vec![vec![Some("k0".into()), Some("v0".into()), None]];
    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let err = pipeline.append(&base, &other).expect_err("must conflict");

    assert_eq!(err.category(), ErrorCategory::Data);
    assert!(matches!(err, GrimpError::PendingAppend { .. }), "{err}");
    assert!(
        dir.join(WAL_FILE).exists(),
        "the pending segment must survive a rejected conflicting append"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_pending_wal_is_a_typed_data_error() {
    let dir = fresh_dir("unusable");
    let base = base_table(40);
    fit_base(&dir, &base);
    std::fs::write(dir.join(WAL_FILE), b"GARBAGE").expect("plant garbage");

    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let err = pipeline.append(&base, &delta_rows()).expect_err("reject");
    assert_eq!(err.category(), ErrorCategory::Data);
    assert!(matches!(err, GrimpError::PendingAppend { .. }), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_referencing_a_vanished_checkpoint_refits() {
    let dir = fresh_dir("vanished");
    let base = base_table(40);
    fit_base(&dir, &base);
    plant_wal(&dir, &delta_rows(), base.n_columns());
    std::fs::remove_file(dir.join(CHECKPOINT_FILE)).expect("rm ckpt");
    let _ = std::fs::remove_file(dir.join(CHECKPOINT_PREV_FILE));

    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &[]).expect("append");

    assert!(out.replayed);
    assert_eq!(
        out.path,
        AppendPath::Refit,
        "no generation on disk matches the WAL's lineage"
    );
    assert_eq!(out.imputed.n_missing(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_from_a_foreign_generation_refits() {
    let dir = fresh_dir("foreign");
    let base = base_table(40);
    fit_base(&dir, &base);

    // A WAL claiming a future epoch: the checkpoint on disk predates it,
    // so the fine-tune lineage is broken and the append must refit.
    let mut segment = WalSegment::new(
        WalBase {
            ckpt_crc: 0x1234_5678,
            epoch: 999,
        },
        base.n_columns(),
    );
    segment.rows = delta_rows();
    let mut fs = RealFs;
    segment
        .write(&mut fs, &dir.join(WAL_FILE))
        .expect("wal write");

    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let out = pipeline.append(&base, &[]).expect("append");
    assert_eq!(out.path, AppendPath::Refit);
    assert_eq!(out.imputed.n_missing(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_replay_is_a_noop_and_bit_identical() {
    let dir = fresh_dir("double");
    let base = base_table(45);
    fit_base(&dir, &base);

    let pipeline = Pipeline::new(incr_config(&dir)).expect("validated");
    let first = pipeline.append(&base, &delta_rows()).expect("append");
    assert_eq!(first.path, AppendPath::Finetune);
    let ckpt_after_first = std::fs::read(dir.join(CHECKPOINT_FILE)).expect("ckpt");

    // Crash-before-rotation: put the applied segment back as pending and
    // replay it. The fine-tune target is already reached, so nothing
    // trains and the imputation is byte-for-byte the same.
    std::fs::rename(dir.join(WAL_APPLIED_FILE), dir.join(WAL_FILE)).expect("un-rotate");
    let second = pipeline.append(&base, &delta_rows()).expect("replay");

    assert_eq!(second.path, AppendPath::NoOp);
    assert!(second.replayed);
    assert_eq!(second.report.epochs_run, 0);
    assert_eq!(second.imputed, first.imputed, "replay diverged");
    let ckpt_after_second = std::fs::read(dir.join(CHECKPOINT_FILE)).expect("ckpt");
    assert_eq!(
        ckpt_after_first, ckpt_after_second,
        "replay must not move the checkpoint generation"
    );
    assert!(!dir.join(WAL_FILE).exists(), "replay rotates the WAL again");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_point_sweep_recovers_bit_identical_to_the_uninterrupted_run() {
    let base = base_table(45);
    let rows = delta_rows();

    // The base fit, done once; every sweep arm starts from a copy.
    let seed_dir = fresh_dir("sweep-seed");
    fit_base(&seed_dir, &base);

    // Reference: one uninterrupted append.
    let ref_dir = fresh_dir("sweep-ref");
    copy_dir(&seed_dir, &ref_dir);
    let reference = Pipeline::new(incr_config(&ref_dir))
        .expect("validated")
        .append(&base, &rows)
        .expect("reference append");
    assert_eq!(reference.path, AppendPath::Finetune);
    assert_eq!(reference.imputed.n_missing(), 0);
    let ref_ckpt = std::fs::read(ref_dir.join(CHECKPOINT_FILE)).expect("ckpt");

    // Kill point 0: shutdown lands before the first fine-tune epoch. The
    // run still imputes (never an unfilled cell) but leaves the WAL
    // pending, and the recovery append resumes it to the reference state.
    let d0 = fresh_dir("sweep-k0");
    copy_dir(&seed_dir, &d0);
    let mut interrupted_cfg = incr_config(&d0);
    let flag = ShutdownFlag::new();
    flag.request();
    interrupted_cfg.shutdown = Some(flag);
    let interrupted = Pipeline::new(interrupted_cfg)
        .expect("validated")
        .append(&base, &rows)
        .expect("interrupted append");
    assert!(interrupted.report.interrupted);
    assert_eq!(interrupted.imputed.n_missing(), 0);
    assert!(
        d0.join(WAL_FILE).exists() && !d0.join(WAL_APPLIED_FILE).exists(),
        "an interrupted append must leave its WAL pending"
    );
    let recovered = Pipeline::new(incr_config(&d0))
        .expect("validated")
        .append(&base, &rows)
        .expect("recovery append");
    assert!(recovered.replayed);
    assert_eq!(recovered.imputed, reference.imputed, "kill point 0");
    assert_eq!(
        std::fs::read(d0.join(CHECKPOINT_FILE)).expect("ckpt"),
        ref_ckpt,
        "kill point 0 checkpoint"
    );

    // Kill points 1..epochs-1: simulate a kill -9 after fine-tune epoch k
    // (checkpoint_every=1 makes each epoch durable; a kill mid-epoch loses
    // only the in-flight epoch, which resume replays identically) by
    // running the append with a k-epoch budget and putting its WAL back.
    for k in 1..3usize {
        let dk = fresh_dir(&format!("sweep-k{k}"));
        copy_dir(&seed_dir, &dk);
        let mut partial_cfg = incr_config(&dk);
        partial_cfg.finetune.epochs = k;
        let partial = Pipeline::new(partial_cfg)
            .expect("validated")
            .append(&base, &rows)
            .expect("partial append");
        assert_eq!(partial.path, AppendPath::Finetune, "kill point {k}");
        std::fs::rename(dk.join(WAL_APPLIED_FILE), dk.join(WAL_FILE)).expect("un-rotate");

        let resumed = Pipeline::new(incr_config(&dk))
            .expect("validated")
            .append(&base, &rows)
            .expect("resumed append");
        assert!(resumed.replayed, "kill point {k}");
        assert_eq!(resumed.imputed, reference.imputed, "kill point {k}");
        assert_eq!(
            std::fs::read(dk.join(CHECKPOINT_FILE)).expect("ckpt"),
            ref_ckpt,
            "kill point {k} checkpoint"
        );
        let _ = std::fs::remove_dir_all(&dk);
    }

    for d in [&seed_dir, &ref_dir, &d0] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn unseen_categories_at_impute_take_the_ladder_not_an_error() {
    // Regression: with a non-inductive feature source, imputing a table
    // that isn't the training table used to fail with
    // `InductiveUnsupported`. It now steps down the degradation ladder.
    let dir = fresh_dir("unseen");
    let base = base_table(40);
    let mut cfg = incr_config(&dir);
    cfg.features = grimp_graph::FeatureSource::Random;
    let pipeline = Pipeline::new(cfg).expect("validated");
    let mut fitted = pipeline.fit(&base).expect("fit");

    let mut unseen = base.clone();
    unseen.push_str_row(&[Some("k-never-seen"), None, Some("7.5")]);
    unseen.push_str_row(&[None, Some("v-never-seen"), None]);
    let imputed = fitted
        .impute(&unseen)
        .expect("unseen table imputes via the ladder");
    assert_eq!(imputed.n_missing(), 0);
    assert_eq!(imputed.n_rows(), base.n_rows() + 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table_to_wal_rows_round_trips_missing_and_numerics() {
    let t = base_table(18);
    let rows = table_to_wal_rows(&t);
    assert_eq!(rows.len(), t.n_rows());
    let mut rebuilt = Table::empty(t.schema().clone());
    for row in &rows {
        let r: Vec<Option<&str>> = row.iter().map(|c| c.as_deref()).collect();
        rebuilt.try_push_str_row(&r).expect("round trip");
    }
    assert_eq!(rebuilt, t);
}

//! Property-based tests of the fault-tolerance machinery: the checkpoint
//! codec must roundtrip arbitrary state bit-exactly (including non-finite
//! floats), and an interrupted-then-resumed training run must produce the
//! same table as an uninterrupted one, bit for bit.

use grimp::{Grimp, GrimpConfig, TaskKind, TrainCheckpoint};
use grimp_graph::FeatureSource;
use grimp_table::{inject_mcar, ColumnKind, Schema, Table, Value};
use grimp_tensor::{AdamState, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    let element = prop_oneof![
        12 => (-100.0f32..100.0).prop_map(|v| v),
        1 => Just(f32::NAN),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
    ];
    (
        1usize..4,
        1usize..4,
        proptest::collection::vec(element, 1..10),
    )
        .prop_map(|(rows, cols, pool)| {
            let data: Vec<f32> = (0..rows * cols).map(|i| pool[i % pool.len()]).collect();
            Tensor::from_vec(rows, cols, data)
        })
}

fn arb_checkpoint() -> impl Strategy<Value = TrainCheckpoint> {
    let params = proptest::collection::vec(arb_tensor(), 1..5);
    let adam_pair = proptest::collection::vec((arb_tensor(), arb_tensor()), 1..5);
    let scalars = (
        0u64..1000,
        prop_oneof![4 => 1e-6f32..1.0, 1 => Just(f32::NAN)],
        0u32..8,
    );
    let more = (
        prop_oneof![3 => -10.0f32..10.0, 1 => Just(f32::INFINITY)],
        0u64..50,
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
        ),
    );
    (scalars, more, params, (adam_pair, 0u32..3)).prop_map(
        |((epoch, lr, recoveries), (best_val, since_best, rng), params, (adam_pair, best))| {
            let (m, v): (Vec<Tensor>, Vec<Tensor>) = adam_pair.into_iter().unzip();
            let best_params = match best {
                0 => None,
                _ => Some(params.clone()),
            };
            TrainCheckpoint {
                epoch,
                lr,
                recoveries,
                best_val,
                since_best,
                rng: [rng.0, rng.1, rng.2, rng.3],
                params,
                adam: AdamState {
                    t: epoch as u32,
                    m,
                    v,
                },
                best_params,
            }
        },
    )
}

fn tensors_bit_equal(a: &[Tensor], b: &[Tensor]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.shape() == y.shape()
                && x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkpoint_roundtrips_bit_exactly(ck in arb_checkpoint()) {
        let bytes = ck.to_bytes();
        let back = TrainCheckpoint::from_bytes(&bytes).expect("roundtrip decodes");
        // scalars: compare float fields by bit pattern so NaN/Inf count
        prop_assert_eq!(back.epoch, ck.epoch);
        prop_assert_eq!(back.lr.to_bits(), ck.lr.to_bits());
        prop_assert_eq!(back.recoveries, ck.recoveries);
        prop_assert_eq!(back.best_val.to_bits(), ck.best_val.to_bits());
        prop_assert_eq!(back.since_best, ck.since_best);
        prop_assert_eq!(back.rng, ck.rng);
        prop_assert!(tensors_bit_equal(&back.params, &ck.params));
        prop_assert_eq!(back.adam.t, ck.adam.t);
        prop_assert!(tensors_bit_equal(&back.adam.m, &ck.adam.m));
        prop_assert!(tensors_bit_equal(&back.adam.v, &ck.adam.v));
        match (&back.best_params, &ck.best_params) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!(tensors_bit_equal(a, b)),
            _ => prop_assert!(false, "best_params presence flag did not roundtrip"),
        }
        // and the re-encoding is byte-identical
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncated_checkpoints_never_decode(ck in arb_checkpoint(), frac in 0.0f64..1.0) {
        let bytes = ck.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(TrainCheckpoint::from_bytes(&bytes[..cut]).is_err());
    }
}

fn training_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let k = format!("k{}", i % 4);
        let v = format!("v{}", i % 4);
        let x = format!("{}", (i % 4) as f64 * 10.0);
        t.push_str_row(&[Some(&k), Some(&v), Some(&x)]);
    }
    t
}

fn resume_config(seed: u64, epochs: usize) -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 8,
        gnn: grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        },
        merge_hidden: 16,
        embed_dim: 8,
        task_kind: TaskKind::Linear,
        max_epochs: epochs,
        patience: epochs,
        lr: 2e-2,
        seed,
        ..GrimpConfig::paper()
    }
}

fn assert_bit_identical(a: &Table, b: &Table) {
    assert_eq!(a.n_rows(), b.n_rows());
    assert_eq!(a.n_columns(), b.n_columns());
    for j in 0..a.n_columns() {
        for i in 0..a.n_rows() {
            match (a.get(i, j), b.get(i, j)) {
                (Value::Num(x), Value::Num(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "cell ({i}, {j}) differs")
                }
                (x, y) => assert_eq!(x, y, "cell ({i}, {j}) differs"),
            }
        }
    }
}

proptest! {
    // fit_impute is expensive; a handful of (seed, split point) cases is
    // enough to cover resuming early, in the middle, and near the end.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn interrupted_runs_resume_bit_identically(seed in 0u64..1000, split in 2usize..11) {
        const EPOCHS: usize = 12;
        let mut dirty = training_table(40);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(seed));

        let reference = Grimp::new(resume_config(seed, EPOCHS)).fit_impute(&dirty);

        let dir = std::env::temp_dir().join(format!(
            "grimp-resume-prop-{}-{seed}-{split}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // phase 1: train only `split` epochs, checkpointing to disk
        let cfg1 = resume_config(seed, split).with_checkpoint_dir(&dir);
        let _ = Grimp::new(cfg1).fit_impute(&dirty);

        // phase 2: resume and finish the remaining epochs
        let cfg2 = resume_config(seed, EPOCHS)
            .with_checkpoint_dir(&dir)
            .with_resume(true);
        let mut model = Grimp::new(cfg2);
        let resumed = model.fit_impute(&dirty);
        let report = model.last_report().expect("fit_impute sets a report");
        prop_assert_eq!(report.resumed_from_epoch, Some(split));

        assert_bit_identical(&reference, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! End-to-end backend parity: a full `fit` + `impute` on the parallel
//! backend must be **bit-identical** to the serial backend — same epoch
//! losses, same gradient norms, same on-disk checkpoint bytes, same imputed
//! table — on random dirty tables, for 1, 2 and 8 threads. This is the
//! contract that makes `--threads` safe to flip on an existing workflow:
//! checkpoints written by one backend resume exactly under another.

use grimp::{BackendKind, GrimpConfig, Pipeline, TaskKind, CHECKPOINT_FILE};
use grimp_graph::FeatureSource;
use grimp_table::{inject_mcar, ColumnKind, Schema, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn small_config(seed: u64) -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 8,
        gnn: grimp_gnn::GnnConfig {
            layers: 1,
            hidden: 8,
            ..Default::default()
        },
        merge_hidden: 16,
        embed_dim: 8,
        task_kind: TaskKind::Linear,
        max_epochs: 3,
        patience: 3,
        seed,
        ..GrimpConfig::fast()
    }
}

fn dirty_table(rows: usize, seed: u64) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let k = format!("k{}", i % 5);
        let v = format!("v{}", (i + seed as usize) % 4);
        let x = format!("{}", (i % 6) as f64 * 2.5);
        t.push_str_row(&[Some(&k), Some(&v), Some(&x)]);
    }
    inject_mcar(&mut t, 0.15, &mut StdRng::seed_from_u64(seed));
    t
}

/// One full run on `kind`: (train losses, val losses, grad norms, imputed
/// cells, final checkpoint bytes). With `sampler` set the run trains on
/// neighbor-sampled mini-batches instead of the full graph.
#[allow(clippy::type_complexity)]
fn run_sampled(
    dirty: &Table,
    seed: u64,
    kind: BackendKind,
    sampler: Option<grimp::SamplerConfig>,
) -> (Vec<u32>, Vec<u32>, Vec<u64>, Vec<String>, Vec<u8>) {
    let dir = std::env::temp_dir().join(format!(
        "grimp-backend-e2e-{}-{}-{}-{}",
        std::process::id(),
        seed,
        kind.threads(),
        sampler.as_ref().map_or(0, |s| s.batch_rows),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = small_config(seed);
    cfg.backend = kind;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.sampler = sampler;
    let pipeline = Pipeline::new(cfg).expect("valid config");
    let mut fitted = pipeline.fit(dirty).expect("fit");
    let imputed = fitted.impute(dirty).expect("impute");
    let report = fitted.report();
    assert_eq!(report.backend_threads, kind.threads());
    let bits32 = |v: Vec<f32>| v.into_iter().map(f32::to_bits).collect::<Vec<_>>();
    let bits64 = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<_>>();
    let cells = (0..imputed.n_rows())
        .flat_map(|i| (0..imputed.n_columns()).map(move |j| (i, j)))
        .map(|(i, j)| imputed.display(i, j))
        .collect();
    let ckpt = std::fs::read(dir.join(CHECKPOINT_FILE)).expect("checkpoint written");
    let out = (
        bits32(report.train_losses()),
        bits32(report.val_losses()),
        bits64(report.grad_norms()),
        cells,
        ckpt,
    );
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[allow(clippy::type_complexity)]
fn run(
    dirty: &Table,
    seed: u64,
    kind: BackendKind,
) -> (Vec<u32>, Vec<u32>, Vec<u64>, Vec<String>, Vec<u8>) {
    run_sampled(dirty, seed, kind, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_fit_is_bit_identical_to_serial(rows in 20usize..40, seed in 0u64..100) {
        let dirty = dirty_table(rows, seed);
        let want = run(&dirty, seed, BackendKind::Serial);
        for threads in THREAD_COUNTS {
            let got = run(&dirty, seed, BackendKind::Parallel { threads });
            prop_assert_eq!(&got.0, &want.0, "train losses, {} threads", threads);
            prop_assert_eq!(&got.1, &want.1, "val losses, {} threads", threads);
            prop_assert_eq!(&got.2, &want.2, "grad norms, {} threads", threads);
            prop_assert_eq!(&got.3, &want.3, "imputed cells, {} threads", threads);
            prop_assert_eq!(&got.4, &want.4, "checkpoint bytes, {} threads", threads);
        }
    }

    #[test]
    fn sampled_training_is_bit_identical_across_backends_and_runs(
        rows in 30usize..60,
        seed in 0u64..100,
    ) {
        // Mini-batch draws and neighbor sampling are keyed on (seed, epoch,
        // task/node), never on backend or thread count, so the serial run
        // pins the reference for every thread count — and for a repeat run.
        let dirty = dirty_table(rows, seed);
        let sampler = grimp::SamplerConfig { batch_rows: 8, fanout: 3 };
        let want = run_sampled(&dirty, seed, BackendKind::Serial, Some(sampler));
        let again = run_sampled(&dirty, seed, BackendKind::Serial, Some(sampler));
        prop_assert_eq!(&again, &want, "same-seed rerun diverged");
        for threads in THREAD_COUNTS {
            let got = run_sampled(&dirty, seed, BackendKind::Parallel { threads }, Some(sampler));
            prop_assert_eq!(&got.0, &want.0, "train losses, {} threads", threads);
            prop_assert_eq!(&got.1, &want.1, "val losses, {} threads", threads);
            prop_assert_eq!(&got.2, &want.2, "grad norms, {} threads", threads);
            prop_assert_eq!(&got.3, &want.3, "imputed cells, {} threads", threads);
            prop_assert_eq!(&got.4, &want.4, "checkpoint bytes, {} threads", threads);
        }
    }
}

//! End-to-end observability contracts: a traced run is deterministic,
//! replayable from JSONL, and its event stream reproduces the
//! `TrainReport` aggregates bit-for-bit.

use grimp::{GrimpConfig, Pipeline, TrainReport};
use grimp_obs::{json, names, Event, EventKind, JsonlSink, MemorySink};
use grimp_table::{inject_mcar, ColumnKind, Schema, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn functional_table(n: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("a", ColumnKind::Categorical),
        ("b", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..n {
        let a = format!("a{}", i % 4);
        let b = format!("b{}", i % 4);
        let x = format!("{}", (i % 4) as f64 * 10.0);
        t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
    }
    t
}

fn dirty_table(n: usize, seed: u64) -> Table {
    let mut dirty = functional_table(n);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(seed));
    dirty
}

fn quick_config() -> GrimpConfig {
    GrimpConfig::builder()
        .feature_dim(16)
        .gnn(grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 16,
            ..Default::default()
        })
        .merge_hidden(32)
        .embed_dim(16)
        .max_epochs(12)
        .patience(12)
        .learning_rate(2e-2)
        .seed(7)
        .build()
        .expect("valid config")
}

/// Fit + impute with a memory sink, returning (live report, events).
fn traced_run(seed_table: &Table) -> (TrainReport, Vec<Event>) {
    let mut sink = MemorySink::new();
    let pipeline = Pipeline::new(quick_config()).expect("validated");
    let mut fitted = pipeline
        .fit_traced(seed_table, &mut sink)
        .expect("table has columns");
    let _ = fitted.impute_traced(seed_table, &mut sink);
    (fitted.report().clone(), sink.events().to_vec())
}

#[test]
fn identical_seeded_runs_emit_identical_event_streams() {
    let dirty = dirty_table(60, 1);
    let (_, a) = traced_run(&dirty);
    let (_, b) = traced_run(&dirty);
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len(), "event counts differ between runs");
    for (ea, eb) in a.iter().zip(&b) {
        assert_eq!((ea.kind, ea.name, ea.index), (eb.kind, eb.name, eb.index));
        // Payload values are deterministic for everything except span
        // durations (wall-clock noise).
        if ea.kind != EventKind::SpanExit {
            assert_eq!(
                ea.value.to_bits(),
                eb.value.to_bits(),
                "{:?} {} value differs",
                ea.kind,
                ea.name
            );
        }
    }
}

#[test]
fn report_from_events_matches_the_live_report_bit_for_bit() {
    let dirty = dirty_table(60, 2);
    let (live, events) = traced_run(&dirty);
    let replayed = TrainReport::from_events(&events);

    assert_eq!(replayed.epochs_run, live.epochs_run);
    assert_eq!(replayed.train_losses(), live.train_losses());
    assert_eq!(replayed.val_losses(), live.val_losses());
    assert_eq!(replayed.grad_norms(), live.grad_norms());
    assert_eq!(replayed.epoch_allocs(), live.epoch_allocs());
    assert_eq!(replayed.seconds.to_bits(), live.seconds.to_bits());
    assert_eq!(replayed.forward_s.to_bits(), live.forward_s.to_bits());
    assert_eq!(replayed.backward_s.to_bits(), live.backward_s.to_bits());
    assert_eq!(replayed.optim_s.to_bits(), live.optim_s.to_bits());
    assert_eq!(replayed.n_weights, live.n_weights);
    assert_eq!(replayed.clip_activations, live.clip_activations);
    assert_eq!(replayed.anomalies.len(), live.anomalies.len());
    assert_eq!(replayed.recoveries, live.recoveries);
    assert_eq!(replayed.checkpoint_bytes, live.checkpoint_bytes);
    assert_eq!(replayed.early_stopped, live.early_stopped);
    assert_eq!(replayed.degraded_to_baseline, live.degraded_to_baseline);
    assert_eq!(replayed.resumed_from_epoch, live.resumed_from_epoch);
    assert_eq!(replayed.io_errors.len(), live.io_errors.len());
    assert_eq!(replayed.column_tiers, live.column_tiers);
    // Per-epoch phase times line up with the run totals.
    let fwd: f64 = replayed.epochs.iter().map(|e| e.forward_s).sum();
    assert!(fwd <= replayed.forward_s + 1e-12);
}

#[test]
fn the_trace_covers_every_pipeline_phase() {
    let dirty = dirty_table(60, 3);
    let (report, events) = traced_run(&dirty);
    let count = |kind: EventKind, name: &str| {
        events
            .iter()
            .filter(|e| e.kind == kind && e.name == name)
            .count()
    };
    assert_eq!(count(EventKind::SpanExit, names::FIT), 1);
    assert_eq!(count(EventKind::SpanExit, names::GRAPH_BUILD), 1);
    assert_eq!(count(EventKind::SpanExit, names::FEATURE_INIT), 1);
    assert_eq!(count(EventKind::SpanExit, names::MODEL_BUILD), 1);
    assert_eq!(count(EventKind::SpanExit, names::BATCH_BUILD), 1);
    assert_eq!(count(EventKind::SpanExit, names::IMPUTE), 1);
    assert_eq!(count(EventKind::SpanExit, names::EPOCH), report.epochs_run);
    assert_eq!(
        count(EventKind::SpanExit, names::FORWARD),
        report.epochs_run
    );
    assert_eq!(
        count(EventKind::SpanExit, names::BACKWARD),
        report.epochs_run
    );
    // 3 tasks × epochs per-task losses
    assert_eq!(
        count(EventKind::Metric, names::TASK_LOSS),
        3 * report.epochs_run
    );
    assert_eq!(
        count(EventKind::Counter, names::TAPE_BACKWARD_NODES),
        report.epochs_run
    );
    assert!(count(EventKind::Counter, names::GRAPH_NODES) >= 1);
    assert!(count(EventKind::Counter, names::N_WEIGHTS) == 1);
    assert!(count(EventKind::SpanExit, names::CHECKPOINT_SAVE) >= 1);
    assert!(count(EventKind::Counter, names::IMPUTED_CELLS) >= 1);
    // The optimized hot path allocates only in epoch 1.
    let allocs = report.epoch_allocs();
    assert!(
        allocs.iter().skip(1).all(|&a| a == 0),
        "allocations after warm-up: {allocs:?}"
    );
}

#[test]
fn jsonl_trace_round_trips_through_the_hand_rolled_parser() {
    let dirty = dirty_table(50, 4);
    let path = std::env::temp_dir().join("grimp-obs-trace-test.jsonl");
    let _ = std::fs::remove_file(&path);
    {
        let mut sink = JsonlSink::create(&path).expect("create trace file");
        let pipeline = Pipeline::new(quick_config()).expect("validated");
        let mut fitted = pipeline
            .fit_traced(&dirty, &mut sink)
            .expect("table has columns");
        let _ = fitted.impute_traced(&dirty, &mut sink);
    }
    let text = std::fs::read_to_string(&path).expect("trace written");
    let mut kinds = std::collections::HashSet::new();
    let mut names_seen = std::collections::HashSet::new();
    let mut lines = 0usize;
    for line in text.lines() {
        let v = json::parse(line).expect("every line is valid JSON");
        let kind = v.get("kind").and_then(|k| k.as_str()).expect("kind field");
        assert!(EventKind::from_label(kind).is_some(), "unknown kind {kind}");
        kinds.insert(kind.to_string());
        names_seen.insert(
            v.get("name")
                .and_then(|n| n.as_str())
                .expect("name field")
                .to_string(),
        );
        assert!(v.get("t").and_then(|t| t.as_u64()).is_some(), "t field");
        assert!(v.get("i").and_then(|i| i.as_u64()).is_some(), "i field");
        lines += 1;
    }
    assert!(lines > 50, "expected a real trace, got {lines} lines");
    assert_eq!(kinds.len(), 4, "all four event kinds appear: {kinds:?}");
    for required in [
        names::GRAPH_BUILD,
        names::FEATURE_INIT,
        names::EPOCH,
        names::TASK_LOSS,
        names::TRAIN_LOSS,
        names::CHECKPOINT_SAVE,
        names::IMPUTE,
        names::IMPUTED_CELLS,
    ] {
        assert!(names_seen.contains(required), "missing {required}");
    }
    std::fs::remove_file(&path).ok();
}

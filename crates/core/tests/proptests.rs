//! Property-based tests of GRIMP's core machinery: training-vector batches,
//! K-matrix construction, and the imputation contract on random tables.

use grimp::{build_k_matrix, Grimp, GrimpConfig, KStrategy, Pipeline, SamplerConfig, VectorBatch};
use grimp_graph::{GraphConfig, TableGraph};
use grimp_table::{check_imputation_contract, ColumnKind, FdSet, Imputer, Schema, Table};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    let cat = prop_oneof![
        4 => (0u32..4).prop_map(Some),
        1 => Just(None),
    ];
    proptest::collection::vec((cat.clone(), cat), 3..25).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for (a, b) in rows {
            let a = a.map(|v| format!("a{v}"));
            let b = b.map(|v| format!("b{v}"));
            t.push_str_row(&[a.as_deref(), b.as_deref()]);
        }
        t
    })
}

/// A hostile mixed-kind table: categorical cells may be empty strings or
/// missing, numerical cells may be NaN/±inf or missing, and an entire
/// column may be blanked out. Single-row tables are in range.
fn arb_hostile_table() -> impl Strategy<Value = Table> {
    let cat = prop_oneof![
        3 => (0u32..3).prop_map(|v| Some(format!("c{v}"))),
        1 => Just(Some(String::new())),
        2 => Just(None),
    ];
    let num = prop_oneof![
        3 => (-4i32..4).prop_map(|v| Some(format!("{}.5", v))),
        1 => Just(Some("NaN".to_string())),
        1 => Just(Some("inf".to_string())),
        1 => Just(Some("-inf".to_string())),
        2 => Just(None),
    ];
    let rows = proptest::collection::vec((cat.clone(), cat, num), 1..20);
    (rows, 0usize..5).prop_map(|(rows, blank_col)| {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for (a, b, x) in &rows {
            let cell = |j: usize, v: &Option<String>| {
                if j == blank_col {
                    None
                } else {
                    v.clone()
                }
            };
            let (a, b, x) = (cell(0, a), cell(1, b), cell(2, x));
            t.push_str_row(&[a.as_deref(), b.as_deref(), x.as_deref()]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vector_batches_mask_consistently(t in arb_table(), dim in 2usize..16) {
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let samples: Vec<(usize, usize)> = (0..t.n_rows())
            .flat_map(|i| (0..t.n_columns()).map(move |j| (i, j)))
            .collect();
        let batch = VectorBatch::build(&g, &t, &samples, dim);
        prop_assert_eq!(batch.n, samples.len());
        for (s, &(row, target)) in samples.iter().enumerate() {
            for c in 0..t.n_columns() {
                let slot = s * t.n_columns() + c;
                let masked = batch.mask.row_slice(slot).iter().all(|&v| v == 0.0);
                let live = batch.mask.row_slice(slot).iter().all(|&v| v == 1.0);
                prop_assert!(masked || live, "mask rows must be all-0 or all-1");
                let expect_masked = c == target || t.is_missing(row, c);
                prop_assert_eq!(masked, expect_masked, "slot ({}, {})", s, c);
                // score bias mirrors the mask
                let biased = batch.score_bias.get(s, c) < -1e8;
                prop_assert_eq!(biased, expect_masked);
            }
        }
    }

    #[test]
    fn k_matrices_are_diagonal_and_bounded(n_cols in 1usize..12, target in 0usize..12) {
        let target = target % n_cols;
        for strategy in [
            KStrategy::Diagonal,
            KStrategy::TargetColumn,
            KStrategy::WeakDiagonal,
            KStrategy::WeakDiagonalFd,
        ] {
            let k = build_k_matrix(strategy, n_cols, target, &FdSet::empty());
            prop_assert_eq!(k.shape(), (n_cols, n_cols));
            for r in 0..n_cols {
                for c in 0..n_cols {
                    let v = k.get(r, c);
                    if r != c {
                        prop_assert_eq!(v, 0.0, "{:?} off-diagonal", strategy);
                    } else {
                        prop_assert!((0.0..=1.0).contains(&v), "{:?} weight {}", strategy, v);
                    }
                }
            }
            // the target's weight is maximal on the diagonal
            let target_w = k.get(target, target);
            for c in 0..n_cols {
                prop_assert!(k.get(c, c) <= target_w + 1e-9, "{:?}", strategy);
            }
        }
    }

    #[test]
    fn grimp_contract_on_random_tables(t in arb_table(), seed in 0u64..8) {
        // only when every column has at least one observed value
        prop_assume!((0..t.n_columns()).all(|j| t.column(j).n_missing() < t.n_rows()));
        let cfg = GrimpConfig {
            feature_dim: 8,
            gnn: grimp_gnn::GnnConfig { layers: 1, hidden: 8, ..Default::default() },
            merge_hidden: 16,
            embed_dim: 8,
            max_epochs: 4,
            patience: 2,
            ..GrimpConfig::fast()
        }
        .with_seed(seed);
        let mut model = Grimp::new(cfg);
        let imputed = model.impute(&t);
        prop_assert!(check_imputation_contract(&t, &imputed).is_ok());
        // categorical imputations come from the column's domain
        for (i, j) in t.missing_cells() {
            let v = imputed.display(i, j);
            let prefix = if j == 0 { "a" } else { "b" };
            prop_assert!(v.starts_with(prefix), "leaked {v} into column {j}");
        }
    }

    #[test]
    fn hostile_tables_never_panic_and_always_fill(t in arb_hostile_table(), seed in 0u64..8) {
        // The never-panic/always-impute contract with NO assumptions: any
        // column may be all-missing, rows may number exactly one, strings
        // may be empty, numerics may be NaN or ±inf. The degradation
        // ladder must still fill every missing cell.
        let cfg = GrimpConfig {
            feature_dim: 8,
            gnn: grimp_gnn::GnnConfig { layers: 1, hidden: 8, ..Default::default() },
            merge_hidden: 16,
            embed_dim: 8,
            max_epochs: 3,
            patience: 3,
            ..GrimpConfig::fast()
        }
        .with_seed(seed);
        let pipeline = Pipeline::new(cfg).expect("valid config");
        let fit = pipeline.fit(&t);
        prop_assert!(
            fit.is_ok(),
            "fit failed: {}",
            fit.as_ref().err().map_or(String::new(), |e| e.to_string())
        );
        let Ok(mut fitted) = fit else { unreachable!() };
        let imputation = fitted.impute(&t);
        prop_assert!(
            imputation.is_ok(),
            "impute failed: {}",
            imputation.as_ref().err().map_or(String::new(), |e| e.to_string())
        );
        let Ok(imputed) = imputation else { unreachable!() };
        prop_assert_eq!(imputed.n_missing(), 0, "missing cells survived");
        prop_assert_eq!(imputed.n_rows(), t.n_rows());
        prop_assert_eq!(
            fitted.report().column_tiers.len(),
            t.n_columns(),
            "one ladder tier per column"
        );
        // Imputed numerics are finite even when the observed ones are not.
        for (i, j) in t.missing_cells() {
            if j == 2 {
                let v = imputed.get(i, j).as_num().expect("numeric cell");
                prop_assert!(v.is_finite(), "imputed non-finite {v}");
            }
        }
    }

    #[test]
    fn sampled_training_on_hostile_tables_still_fills_every_cell(
        t in arb_hostile_table(),
        seed in 0u64..8,
    ) {
        // The same no-assumptions contract, but trained on neighbor-sampled
        // mini-batches with a batch smaller than most tables: degenerate
        // columns, single-row tables and non-finite numerics must not break
        // the sampler, and every missing cell is still filled.
        let cfg = GrimpConfig {
            feature_dim: 8,
            gnn: grimp_gnn::GnnConfig { layers: 1, hidden: 8, ..Default::default() },
            merge_hidden: 16,
            embed_dim: 8,
            max_epochs: 3,
            patience: 3,
            sampler: Some(SamplerConfig { batch_rows: 4, fanout: 2 }),
            ..GrimpConfig::fast()
        }
        .with_seed(seed);
        let pipeline = Pipeline::new(cfg).expect("valid config");
        let fit = pipeline.fit(&t);
        prop_assert!(
            fit.is_ok(),
            "fit failed: {}",
            fit.as_ref().err().map_or(String::new(), |e| e.to_string())
        );
        let Ok(mut fitted) = fit else { unreachable!() };
        let imputation = fitted.impute(&t);
        prop_assert!(
            imputation.is_ok(),
            "impute failed: {}",
            imputation.as_ref().err().map_or(String::new(), |e| e.to_string())
        );
        let Ok(imputed) = imputation else { unreachable!() };
        prop_assert_eq!(imputed.n_missing(), 0, "missing cells survived");
        prop_assert!(check_imputation_contract(&t, &imputed).is_ok());
        for (i, j) in t.missing_cells() {
            if j == 2 {
                let v = imputed.get(i, j).as_num().expect("numeric cell");
                prop_assert!(v.is_finite(), "imputed non-finite {v}");
            }
        }
    }
}

//! Property-based tests of GRIMP's core machinery: training-vector batches,
//! K-matrix construction, and the imputation contract on random tables.

use grimp::{build_k_matrix, Grimp, GrimpConfig, KStrategy, VectorBatch};
use grimp_graph::{GraphConfig, TableGraph};
use grimp_table::{check_imputation_contract, ColumnKind, FdSet, Imputer, Schema, Table};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = Table> {
    let cat = prop_oneof![
        4 => (0u32..4).prop_map(Some),
        1 => Just(None),
    ];
    proptest::collection::vec((cat.clone(), cat), 3..25).prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for (a, b) in rows {
            let a = a.map(|v| format!("a{v}"));
            let b = b.map(|v| format!("b{v}"));
            t.push_str_row(&[a.as_deref(), b.as_deref()]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vector_batches_mask_consistently(t in arb_table(), dim in 2usize..16) {
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let samples: Vec<(usize, usize)> = (0..t.n_rows())
            .flat_map(|i| (0..t.n_columns()).map(move |j| (i, j)))
            .collect();
        let batch = VectorBatch::build(&g, &t, &samples, dim);
        prop_assert_eq!(batch.n, samples.len());
        for (s, &(row, target)) in samples.iter().enumerate() {
            for c in 0..t.n_columns() {
                let slot = s * t.n_columns() + c;
                let masked = batch.mask.row_slice(slot).iter().all(|&v| v == 0.0);
                let live = batch.mask.row_slice(slot).iter().all(|&v| v == 1.0);
                prop_assert!(masked || live, "mask rows must be all-0 or all-1");
                let expect_masked = c == target || t.is_missing(row, c);
                prop_assert_eq!(masked, expect_masked, "slot ({}, {})", s, c);
                // score bias mirrors the mask
                let biased = batch.score_bias.get(s, c) < -1e8;
                prop_assert_eq!(biased, expect_masked);
            }
        }
    }

    #[test]
    fn k_matrices_are_diagonal_and_bounded(n_cols in 1usize..12, target in 0usize..12) {
        let target = target % n_cols;
        for strategy in [
            KStrategy::Diagonal,
            KStrategy::TargetColumn,
            KStrategy::WeakDiagonal,
            KStrategy::WeakDiagonalFd,
        ] {
            let k = build_k_matrix(strategy, n_cols, target, &FdSet::empty());
            prop_assert_eq!(k.shape(), (n_cols, n_cols));
            for r in 0..n_cols {
                for c in 0..n_cols {
                    let v = k.get(r, c);
                    if r != c {
                        prop_assert_eq!(v, 0.0, "{:?} off-diagonal", strategy);
                    } else {
                        prop_assert!((0.0..=1.0).contains(&v), "{:?} weight {}", strategy, v);
                    }
                }
            }
            // the target's weight is maximal on the diagonal
            let target_w = k.get(target, target);
            for c in 0..n_cols {
                prop_assert!(k.get(c, c) <= target_w + 1e-9, "{:?}", strategy);
            }
        }
    }

    #[test]
    fn grimp_contract_on_random_tables(t in arb_table(), seed in 0u64..8) {
        // only when every column has at least one observed value
        prop_assume!((0..t.n_columns()).all(|j| t.column(j).n_missing() < t.n_rows()));
        let cfg = GrimpConfig {
            feature_dim: 8,
            gnn: grimp_gnn::GnnConfig { layers: 1, hidden: 8, ..Default::default() },
            merge_hidden: 16,
            embed_dim: 8,
            max_epochs: 4,
            patience: 2,
            ..GrimpConfig::fast()
        }
        .with_seed(seed);
        let mut model = Grimp::new(cfg);
        let imputed = model.impute(&t);
        prop_assert!(check_imputation_contract(&t, &imputed).is_ok());
        // categorical imputations come from the column's domain
        for (i, j) in t.missing_cells() {
            let v = imputed.display(i, j);
            let prefix = if j == 0 { "a" } else { "b" };
            prop_assert!(v.starts_with(prefix), "leaked {v} into column {j}");
        }
    }
}

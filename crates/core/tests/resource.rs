//! Resource-governance integration suite: deadlines, memory budgets,
//! cooperative shutdown, the checkpoint-directory lock, and the
//! fault-injectable IO layer — all through the public API, the way an
//! operator-facing harness would drive them.
//!
//! The invariant under test everywhere: governance may stop or shrink
//! *training*, but the imputation contract (every missing cell filled,
//! observed cells untouched, no panic) holds unconditionally.

use grimp::{
    ColumnTier, DownscaleRung, ErrorCategory, Grimp, GrimpConfig, GrimpError, Pipeline,
    ShutdownFlag, TaskKind, CHECKPOINT_FILE, CHECKPOINT_PREV_FILE, LOCK_FILE,
};
use grimp_graph::FeatureSource;
use grimp_obs::{IoFaultKind, IoFaultPlan};
use grimp_table::csv::to_csv_string;
use grimp_table::{check_imputation_contract, inject_mcar, ColumnKind, Schema, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

fn functional_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let k = format!("k{}", i % 5);
        let v = format!("v{}", i % 5);
        let x = format!("{}", (i % 5) as f64 * 10.0);
        t.push_str_row(&[Some(&k), Some(&v), Some(&x)]);
    }
    t
}

fn tiny_config() -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 8,
        gnn: grimp_gnn::GnnConfig {
            layers: 1,
            hidden: 8,
            ..Default::default()
        },
        merge_hidden: 16,
        embed_dim: 8,
        task_kind: TaskKind::Linear,
        max_epochs: 6,
        patience: 6,
        seed: 13,
        ..GrimpConfig::fast()
    }
}

fn dirty_table(rows: usize, seed: u64) -> Table {
    let mut t = functional_table(rows);
    inject_mcar(&mut t, 0.15, &mut StdRng::seed_from_u64(seed));
    t
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("grimp-res-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn expired_deadline_stops_before_training_and_still_fills_every_cell() {
    let dirty = dirty_table(40, 2);
    let mut cfg = tiny_config();
    cfg.deadline_secs = Some(1e-12); // already expired at the first boundary
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("report");
    assert!(report.deadline_hit, "deadline must register");
    assert_eq!(report.stopped_at_epoch, Some(0));
    assert_eq!(report.epochs_run, 0, "no epoch fits inside 1e-12 s");
    // Untrained heads are noise: every would-be GNN column steps down.
    assert!(
        report.column_tiers.iter().all(|t| *t != ColumnTier::Gnn),
        "{:?}",
        report.column_tiers
    );
    check_imputation_contract(&dirty, &imputed).expect("contract");
    assert_eq!(imputed.n_missing(), 0);
}

#[test]
fn generous_deadline_changes_nothing() {
    let dirty = dirty_table(40, 2);
    let reference = Grimp::new(tiny_config()).fit_impute(&dirty);
    let mut cfg = tiny_config();
    cfg.deadline_secs = Some(3600.0);
    let mut model = Grimp::new(cfg);
    let governed = model.fit_impute(&dirty);
    assert!(!model.last_report().expect("report").deadline_hit);
    assert_eq!(
        to_csv_string(&reference),
        to_csv_string(&governed),
        "an unhit deadline must not perturb training"
    );
}

/// The deadline path composes with checkpoint/resume bit-exactly: for every
/// epoch k, a run killed at k, resumed under an already-expired deadline
/// (which must impute successfully from the checkpointed state), and then
/// resumed again without a deadline finishes bit-identical to a run that
/// was never interrupted.
#[test]
fn deadline_interrupt_at_every_epoch_resumes_bit_identically() {
    let dirty = dirty_table(40, 3);
    let base = tiny_config();
    let total = base.max_epochs;
    let reference = Grimp::new(base.clone()).fit_impute(&dirty);
    let reference_csv = to_csv_string(&reference);

    for k in 1..total {
        let dir = fresh_dir(&format!("every-epoch-{k}"));

        // Phase 1: "killed" after k epochs, checkpointing every epoch.
        let mut phase1 = base.clone();
        phase1.max_epochs = k;
        phase1.checkpoint_dir = Some(dir.clone());
        let _ = Grimp::new(phase1).fit_impute(&dirty);

        // Phase 2: resume under an expired deadline — stops at the first
        // epoch boundary and must impute from the checkpointed state.
        let mut phase2 = base.clone();
        phase2.checkpoint_dir = Some(dir.clone());
        phase2.resume = true;
        phase2.deadline_secs = Some(1e-12);
        let mut deadline_model = Grimp::new(phase2);
        let deadline_imputed = deadline_model.fit_impute(&dirty);
        let report = deadline_model.last_report().expect("report");
        assert!(report.deadline_hit, "epoch {k}: deadline must register");
        assert_eq!(report.stopped_at_epoch, Some(k));
        assert_eq!(report.resumed_from_epoch, Some(k));
        assert_eq!(deadline_imputed.n_missing(), 0, "epoch {k}");
        check_imputation_contract(&dirty, &deadline_imputed).expect("contract");

        // Phase 3: resume again without a deadline and finish.
        let mut phase3 = base.clone();
        phase3.checkpoint_dir = Some(dir.clone());
        phase3.resume = true;
        let mut model = Grimp::new(phase3);
        let resumed = model.fit_impute(&dirty);
        let report = model.last_report().expect("report");
        assert_eq!(report.resumed_from_epoch, Some(k), "epoch {k}");
        assert_eq!(
            to_csv_string(&resumed),
            reference_csv,
            "resume after a deadline stop at epoch {k} must be bit-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn shutdown_request_stops_at_the_next_boundary_and_fills_every_cell() {
    let dirty = dirty_table(40, 4);
    let flag = ShutdownFlag::new();
    flag.request(); // "Ctrl-C" before training starts
    let mut cfg = tiny_config();
    cfg.shutdown = Some(flag);
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("report");
    assert!(report.interrupted);
    assert!(!report.deadline_hit);
    assert_eq!(report.stopped_at_epoch, Some(0));
    check_imputation_contract(&dirty, &imputed).expect("contract");
    assert_eq!(imputed.n_missing(), 0);
}

#[test]
fn unrequested_shutdown_flag_changes_nothing() {
    let dirty = dirty_table(40, 4);
    let reference = Grimp::new(tiny_config()).fit_impute(&dirty);
    let mut cfg = tiny_config();
    cfg.shutdown = Some(ShutdownFlag::new());
    let mut model = Grimp::new(cfg);
    let governed = model.fit_impute(&dirty);
    assert!(!model.last_report().expect("report").interrupted);
    assert_eq!(to_csv_string(&reference), to_csv_string(&governed));
}

#[test]
fn tight_memory_budget_downscales_and_still_fills_every_cell() {
    // 200 rows with a high-cardinality key column: plenty of value nodes
    // for the ladder's first rung to cut.
    let schema = Schema::from_pairs(&[
        ("id", ColumnKind::Categorical),
        ("grp", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..400 {
        let id = format!("id{i}");
        let grp = format!("g{}", i % 4);
        let x = format!("{}", (i % 7) as f64);
        t.push_str_row(&[Some(&id), Some(&grp), Some(&x)]);
    }
    inject_mcar(&mut t, 0.1, &mut StdRng::seed_from_u64(5));

    let mut cfg = tiny_config();
    cfg.memory_budget_mb = Some(1);
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&t);
    let report = model.last_report().expect("report");
    assert!(
        !report.downscales.is_empty(),
        "a 1 MB budget must force downscaling"
    );
    // Rung order: every value-node-cap decision precedes any dims decision.
    if let Some(first_dims) = report
        .downscales
        .iter()
        .position(|d| d.rung == DownscaleRung::HiddenDims)
    {
        assert!(report.downscales[..first_dims]
            .iter()
            .all(|d| d.rung == DownscaleRung::ValueNodeCap));
    }
    check_imputation_contract(&t, &imputed).expect("contract");
    assert_eq!(imputed.n_missing(), 0);
}

#[test]
fn generous_memory_budget_records_no_downscales() {
    let dirty = dirty_table(40, 6);
    let mut cfg = tiny_config();
    cfg.memory_budget_mb = Some(65_536);
    let mut model = Grimp::new(cfg);
    let _ = model.fit_impute(&dirty);
    assert!(model.last_report().expect("report").downscales.is_empty());
}

#[test]
fn held_lock_is_a_typed_busy_error() {
    // Plant a lock owned by a *live* process (this one) so the stale-lock
    // reclaim must not kick in: a live holder is a hard Busy error.
    let live_pid = std::process::id();
    let dirty = dirty_table(30, 7);
    let dir = fresh_dir("lock-held");
    std::fs::write(dir.join(LOCK_FILE), live_pid.to_string()).expect("plant lock");

    let mut cfg = tiny_config();
    cfg.checkpoint_dir = Some(dir.clone());
    let pipeline = Pipeline::new(cfg).expect("valid config");
    let err = match pipeline.fit(&dirty) {
        Err(e) => e,
        Ok(_) => panic!("must refuse to start with a held lock"),
    };
    match &err {
        GrimpError::LockHeld { path, owner_pid } => {
            assert_eq!(*owner_pid, Some(live_pid));
            assert!(path.ends_with(LOCK_FILE), "{}", path.display());
        }
        other => panic!("expected LockHeld, got {other}"),
    }
    assert_eq!(err.category(), ErrorCategory::Busy);
    assert_eq!(err.category().exit_code(), 7);
    assert!(
        dir.join(LOCK_FILE).exists(),
        "a live holder's lock must not be reclaimed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(target_os = "linux")]
#[test]
fn stale_lock_from_a_dead_process_is_reclaimed() {
    // u32::MAX far exceeds the kernel's pid_max, so no process can hold it:
    // the lock is provably stale and the run must reclaim it and proceed
    // instead of livelocking every future run on this directory.
    let dead_pid = u32::MAX;
    let dirty = dirty_table(30, 7);
    let dir = fresh_dir("lock-stale");
    std::fs::write(dir.join(LOCK_FILE), dead_pid.to_string()).expect("plant stale lock");

    let mut cfg = tiny_config();
    cfg.max_epochs = 2;
    cfg.checkpoint_dir = Some(dir.clone());
    let pipeline = Pipeline::new(cfg).expect("valid config");
    let mut sink = grimp_obs::MemorySink::new();
    let fitted = pipeline
        .fit_traced(&dirty, &mut sink)
        .expect("stale lock must be reclaimed, not fatal");
    assert_eq!(fitted.report().locks_reclaimed, 1);
    assert!(
        sink.events().iter().any(|e| {
            e.kind == grimp_obs::EventKind::Counter
                && e.name == grimp_obs::names::LOCK_RECLAIMED
                && e.index == u64::from(dead_pid)
        }),
        "reclaim must be traced with the dead holder's pid"
    );
    assert!(
        !dir.join(LOCK_FILE).exists(),
        "the reclaimed lock is released again after fit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(target_os = "linux")]
#[test]
fn unparseable_lock_file_is_treated_as_stale() {
    // A torn write from a crashed run leaves garbage in the lock file; with
    // no PID to probe, the lock counts as stale (index 0 in the trace).
    let dirty = dirty_table(30, 7);
    let dir = fresh_dir("lock-garbage");
    std::fs::write(dir.join(LOCK_FILE), b"not-a-pid").expect("plant torn lock");

    let mut cfg = tiny_config();
    cfg.max_epochs = 2;
    cfg.checkpoint_dir = Some(dir.clone());
    let pipeline = Pipeline::new(cfg).expect("valid config");
    let mut sink = grimp_obs::MemorySink::new();
    let fitted = pipeline
        .fit_traced(&dirty, &mut sink)
        .expect("unreadable lock must be reclaimed, not fatal");
    assert_eq!(fitted.report().locks_reclaimed, 1);
    assert!(sink.events().iter().any(|e| {
        e.kind == grimp_obs::EventKind::Counter
            && e.name == grimp_obs::names::LOCK_RECLAIMED
            && e.index == 0
    }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_lock_is_released_when_fit_finishes() {
    let dirty = dirty_table(30, 8);
    let dir = fresh_dir("lock-released");
    let mut cfg = tiny_config();
    cfg.max_epochs = 2;
    cfg.checkpoint_dir = Some(dir.clone());
    let _ = Grimp::new(cfg.clone()).fit_impute(&dirty);
    assert!(
        !dir.join(LOCK_FILE).exists(),
        "lock must be released after fit"
    );
    // And a second run can take it again.
    let _ = Grimp::new(cfg).fit_impute(&dirty);
    std::fs::remove_dir_all(&dir).ok();
}

/// Every injected fault kind × the checkpoint path: training must absorb
/// the fault (retry transients, degrade on persistent failures) and the
/// imputation contract must hold.
#[test]
fn every_io_fault_kind_degrades_without_losing_the_imputation() {
    let dirty = dirty_table(40, 9);
    for kind in IoFaultKind::all() {
        let dir = fresh_dir(&format!("fault-{}", kind.label()));
        let plan = match kind {
            IoFaultKind::Transient => IoFaultPlan::transient(2),
            other => IoFaultPlan::persistent(other),
        };
        let mut cfg = tiny_config();
        cfg.max_epochs = 4;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.io_fault = Some(plan);
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        let report = model.last_report().expect("report").clone();
        check_imputation_contract(&dirty, &imputed)
            .unwrap_or_else(|e| panic!("{}: contract broken: {e}", kind.label()));
        assert_eq!(imputed.n_missing(), 0, "{}", kind.label());
        match kind {
            // Retried transparently: the checkpoint survives and no
            // warning-level IO error needs to surface.
            IoFaultKind::Transient => {
                assert!(
                    dir.join(CHECKPOINT_FILE).exists(),
                    "transient faults must be retried through"
                );
            }
            // Persistent faults: structured warnings, checkpointing is
            // degraded at admission (dir/lock IO already fails), and no
            // half-written checkpoint is ever published.
            _ => {
                assert!(
                    !report.io_errors.is_empty(),
                    "{}: persistent faults must be reported",
                    kind.label()
                );
                assert!(
                    !dir.join(CHECKPOINT_FILE).exists(),
                    "{}: no checkpoint may be published through a faulty disk",
                    kind.label()
                );
                assert!(
                    report.epochs_run > 0,
                    "{}: training must continue",
                    kind.label()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A torn write mid-rotation must never destroy the previous good
/// generation: resume falls back to it.
#[test]
fn torn_checkpoint_write_leaves_the_previous_generation_resumable() {
    let dirty = dirty_table(40, 10);
    let dir = fresh_dir("torn-rotation");

    // Phase 1: two clean epochs → a valid grimp.ckpt (+ prev).
    let mut cfg = tiny_config();
    cfg.max_epochs = 2;
    cfg.checkpoint_dir = Some(dir.clone());
    let _ = Grimp::new(cfg).fit_impute(&dirty);
    assert!(dir.join(CHECKPOINT_FILE).exists());

    // Phase 2: resume, but every checkpoint write after the lock tears
    // (from_op 2 skips dir creation and the lock file, so the torn writes
    // land exactly on the epoch saves).
    let mut cfg = tiny_config();
    cfg.max_epochs = 4;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    cfg.io_fault = Some(IoFaultPlan {
        kind: IoFaultKind::TornWrite,
        from_op: 2,
        times: usize::MAX,
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("report");
    assert_eq!(report.resumed_from_epoch, Some(2));
    assert!(!report.io_errors.is_empty(), "torn writes must be reported");
    assert!(
        report.checkpoints_disabled,
        "repeated torn saves must disable checkpointing"
    );
    assert_eq!(imputed.n_missing(), 0);

    // The rotation's atomicity held: at least one on-disk generation still
    // decodes (the torn bytes only ever landed in the .tmp sibling).
    let current = grimp::TrainCheckpoint::load(&dir.join(CHECKPOINT_FILE));
    let prev = grimp::TrainCheckpoint::load(&dir.join(CHECKPOINT_PREV_FILE));
    assert!(
        current.is_ok() || prev.is_ok(),
        "a good generation must survive torn writes (current: {current:?})"
    );

    // Phase 3: a plain resume still works.
    let mut cfg = tiny_config();
    cfg.max_epochs = 6;
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    let mut model = Grimp::new(cfg);
    let resumed = model.fit_impute(&dirty);
    assert!(
        model
            .last_report()
            .expect("report")
            .resumed_from_epoch
            .is_some(),
        "resume must find a good generation"
    );
    assert_eq!(resumed.n_missing(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A hostile mixed-kind table: empty strings, NaN/±inf, missing cells,
/// possibly a fully-blank column — the same shape the core proptest suite
/// uses, here crossed with the IO-fault matrix.
fn arb_hostile_table() -> impl Strategy<Value = Table> {
    let cat = prop_oneof![
        3 => (0u32..3).prop_map(|v| Some(format!("c{v}"))),
        1 => Just(Some(String::new())),
        2 => Just(None),
    ];
    let num = prop_oneof![
        3 => (-4i32..4).prop_map(|v| Some(format!("{}.5", v))),
        1 => Just(Some("NaN".to_string())),
        1 => Just(Some("inf".to_string())),
        2 => Just(None),
    ];
    let rows = proptest::collection::vec((cat.clone(), cat, num), 1..16);
    (rows, 0usize..5).prop_map(|(rows, blank_col)| {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for (a, b, x) in &rows {
            let cell = |j: usize, v: &Option<String>| {
                if j == blank_col {
                    None
                } else {
                    v.clone()
                }
            };
            let (a, b, x) = (cell(0, a), cell(1, b), cell(2, x));
            t.push_str_row(&[a.as_deref(), b.as_deref(), x.as_deref()]);
        }
        t
    })
}

static PROP_DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any adversarial table × any single IO fault kind: the run never
    /// panics, fills every cell, and persistent faults surface as
    /// structured warnings rather than lost output.
    #[test]
    fn any_table_under_any_io_fault_still_fills(t in arb_hostile_table(), kind_ix in 0usize..4) {
        let kind = IoFaultKind::all()[kind_ix];
        let seq = PROP_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = fresh_dir(&format!("prop-{}-{seq}", kind.label()));
        let plan = match kind {
            IoFaultKind::Transient => IoFaultPlan::transient(2),
            other => IoFaultPlan::persistent(other),
        };
        let mut cfg = tiny_config();
        cfg.max_epochs = 2;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.io_fault = Some(plan);
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&t);
        let report = model.last_report().expect("report");
        prop_assert_eq!(imputed.n_missing(), 0, "kind {}", kind.label());
        if let Err(e) = check_imputation_contract(&t, &imputed) {
            panic!("{}: contract broken: {e}", kind.label());
        }
        if kind != IoFaultKind::Transient {
            prop_assert!(
                !report.io_errors.is_empty(),
                "{}: persistent faults must be reported", kind.label()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! End-to-end fault-injection suite, compiled only with
//! `--features fault-injection`. Exercises the external surface of the
//! harness — `GrimpConfig::fault_injection`, `FaultPlan`, `FaultKind`,
//! `TrainAnomaly` — the way an outside robustness test would, proving the
//! feature gate actually exports everything needed.
#![cfg(feature = "fault-injection")]

use grimp::{FaultKind, FaultPlan, Grimp, GrimpConfig, TaskKind, TrainAnomaly};
use grimp_graph::FeatureSource;
use grimp_table::{inject_mcar, ColumnKind, Schema, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn training_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let k = format!("k{}", i % 4);
        let v = format!("v{}", i % 4);
        let x = format!("{}", (i % 4) as f64 * 10.0);
        t.push_str_row(&[Some(&k), Some(&v), Some(&x)]);
    }
    t
}

fn tiny_config() -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 8,
        gnn: grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        },
        merge_hidden: 16,
        embed_dim: 8,
        task_kind: TaskKind::Linear,
        max_epochs: 20,
        patience: 20,
        lr: 2e-2,
        seed: 11,
        ..GrimpConfig::paper()
    }
}

#[test]
fn feature_gated_gradient_fault_is_detected_and_recovered() {
    let mut dirty = training_table(40);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(5));

    let mut cfg = tiny_config();
    cfg.fault_injection = Some(FaultPlan {
        at_epoch: 4,
        times: 1,
        kind: FaultKind::GradNan,
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("fit_impute sets a report");

    assert_eq!(report.recoveries, 1);
    assert!(matches!(
        report.anomalies.as_slice(),
        [TrainAnomaly::NonFiniteGradient { epoch: 4, .. }]
    ));
    assert!(!report.degraded_to_baseline);
    assert_eq!(imputed.n_missing(), 0);
}

#[test]
fn feature_gated_exhaustion_degrades_but_still_imputes() {
    let mut dirty = training_table(40);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(6));

    let mut cfg = tiny_config();
    cfg.max_recoveries = 1;
    cfg.fault_injection = Some(FaultPlan {
        at_epoch: 2,
        times: usize::MAX,
        kind: FaultKind::ParamNan,
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("fit_impute sets a report");

    assert!(report.degraded_to_baseline);
    assert_eq!(report.recoveries, 2);
    assert_eq!(imputed.n_missing(), 0, "degraded run must fill every cell");
}

//! End-to-end fault-injection suite, compiled only with
//! `--features fault-injection`. Exercises the external surface of the
//! harness — `GrimpConfig::fault_injection`, `FaultPlan`, `FaultKind`,
//! `TrainAnomaly` — the way an outside robustness test would, proving the
//! feature gate actually exports everything needed.
#![cfg(feature = "fault-injection")]

use grimp::{ColumnTier, FaultKind, FaultPlan, Grimp, GrimpConfig, TaskKind, TrainAnomaly};
use grimp_graph::FeatureSource;
use grimp_table::{inject_mcar, ColumnKind, Schema, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn training_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("k", ColumnKind::Categorical),
        ("v", ColumnKind::Categorical),
        ("x", ColumnKind::Numerical),
    ]);
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let k = format!("k{}", i % 4);
        let v = format!("v{}", i % 4);
        let x = format!("{}", (i % 4) as f64 * 10.0);
        t.push_str_row(&[Some(&k), Some(&v), Some(&x)]);
    }
    t
}

fn tiny_config() -> GrimpConfig {
    GrimpConfig {
        features: FeatureSource::FastText,
        feature_dim: 8,
        gnn: grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        },
        merge_hidden: 16,
        embed_dim: 8,
        task_kind: TaskKind::Linear,
        max_epochs: 20,
        patience: 20,
        lr: 2e-2,
        seed: 11,
        ..GrimpConfig::paper()
    }
}

#[test]
fn feature_gated_gradient_fault_is_detected_and_recovered() {
    let mut dirty = training_table(40);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(5));

    let mut cfg = tiny_config();
    cfg.fault_injection = Some(FaultPlan {
        at_epoch: 4,
        times: 1,
        kind: FaultKind::GradNan,
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("fit_impute sets a report");

    assert_eq!(report.recoveries, 1);
    assert!(matches!(
        report.anomalies.as_slice(),
        [TrainAnomaly::NonFiniteGradient { epoch: 4, .. }]
    ));
    assert!(!report.degraded_to_baseline);
    assert_eq!(imputed.n_missing(), 0);
}

#[test]
fn feature_gated_exhaustion_degrades_but_still_imputes() {
    let mut dirty = training_table(40);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(6));

    let mut cfg = tiny_config();
    cfg.max_recoveries = 1;
    cfg.fault_injection = Some(FaultPlan {
        at_epoch: 2,
        times: usize::MAX,
        kind: FaultKind::ParamNan,
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("fit_impute sets a report");

    assert!(report.degraded_to_baseline);
    assert_eq!(report.recoveries, 2);
    assert_eq!(imputed.n_missing(), 0, "degraded run must fill every cell");
}

#[test]
fn task_loss_fault_demotes_only_the_poisoned_column() {
    let mut dirty = training_table(40);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(7));

    let mut cfg = tiny_config();
    cfg.fault_injection = Some(FaultPlan {
        at_epoch: 3,
        times: 1,
        kind: FaultKind::TaskLossNan(1),
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("fit_impute sets a report");

    // Exactly column 1 steps down the ladder; its neighbours keep their
    // trained heads and the run neither rolls back nor degrades globally.
    assert_eq!(
        report.column_tiers,
        vec![ColumnTier::Gnn, ColumnTier::Baseline, ColumnTier::Gnn]
    );
    assert!(matches!(
        report.anomalies.as_slice(),
        [TrainAnomaly::NonFiniteTaskLoss {
            epoch: 3,
            column: 1
        }]
    ));
    assert!(!report.degraded_to_baseline);
    assert_eq!(
        report.recoveries, 0,
        "per-column demotion is not a rollback"
    );
    assert!(
        report.epochs_run > 4,
        "training continues after the demotion (ran {})",
        report.epochs_run
    );
    assert_eq!(imputed.n_missing(), 0);
}

#[test]
fn checkpoint_write_fault_is_reported_and_training_completes() {
    let mut dirty = training_table(40);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(8));

    let dir = std::env::temp_dir().join(format!("grimp-ckpt-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = tiny_config();
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;
    cfg.fault_injection = Some(FaultPlan {
        at_epoch: 2,
        times: 1,
        kind: FaultKind::CheckpointWrite,
    });
    let mut model = Grimp::new(cfg);
    let imputed = model.fit_impute(&dirty);
    let report = model.last_report().expect("fit_impute sets a report");

    assert_eq!(
        report.io_errors.len(),
        1,
        "io errors: {:?}",
        report.io_errors
    );
    assert!(
        report.io_errors[0].contains("checkpoint write failed"),
        "{}",
        report.io_errors[0]
    );
    assert!(
        report.anomalies.is_empty(),
        "an IO fault is not a divergence"
    );
    assert!(!report.degraded_to_baseline);
    assert_eq!(imputed.n_missing(), 0);
    assert!(
        dir.join(grimp::CHECKPOINT_FILE).exists(),
        "later saves still land on disk"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

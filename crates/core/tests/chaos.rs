//! Deterministic chaos harness: every adversarial input in
//! `grimp_table::adversarial` must uphold the never-panic/always-impute
//! contract — fit succeeds, every missing cell is filled (possibly from a
//! degraded ladder tier), and the emitted trace replays into the same
//! per-column tier assignment the live report carries. Malformed CSV is
//! rejected with a typed error, and a bit-flipped checkpoint falls back to
//! the previous good generation on resume.

use grimp::{ColumnTier, GrimpConfig, Pipeline, TrainReport};
use grimp_obs::MemorySink;
use grimp_table::adversarial::{self, Scenario};
use grimp_table::csv::read_csv_str;
use grimp_table::ColumnKind;

fn chaos_config() -> GrimpConfig {
    GrimpConfig::builder()
        .feature_dim(8)
        .gnn(grimp_gnn::GnnConfig {
            layers: 2,
            hidden: 8,
            ..Default::default()
        })
        .merge_hidden(16)
        .embed_dim(8)
        .max_epochs(6)
        .patience(6)
        .learning_rate(2e-2)
        .max_train_samples_per_task(Some(400))
        .seed(3)
        .build()
        .expect("valid config")
}

/// Run one scenario end-to-end with a full trace and return the live report
/// plus the imputed-table missing count.
fn run_scenario(s: &Scenario) -> (TrainReport, usize) {
    let mut sink = MemorySink::new();
    let pipeline = Pipeline::new(chaos_config()).expect("validated");
    let mut fitted = pipeline
        .fit_traced(&s.table, &mut sink)
        .unwrap_or_else(|e| panic!("{}: fit must not fail: {e}", s.name));
    let imputed = fitted
        .impute_traced(&s.table, &mut sink)
        .unwrap_or_else(|e| panic!("{}: impute must not fail: {e}", s.name));
    let live = fitted.report().clone();

    // Contract: trace and report tell the same story.
    let replayed = TrainReport::from_events(sink.events());
    assert_eq!(
        replayed.column_tiers, live.column_tiers,
        "{}: replayed tiers diverge from the live report",
        s.name
    );
    assert_eq!(replayed.epochs_run, live.epochs_run, "{}", s.name);
    assert_eq!(replayed.anomalies.len(), live.anomalies.len(), "{}", s.name);

    // Contract: shape preserved, observed cells untouched.
    assert_eq!(imputed.n_rows(), s.table.n_rows(), "{}", s.name);
    assert_eq!(imputed.schema(), s.table.schema(), "{}", s.name);
    for i in 0..s.table.n_rows() {
        for j in 0..s.table.n_columns() {
            if !s.table.is_missing(i, j) {
                assert_eq!(
                    imputed.display(i, j),
                    s.table.display(i, j),
                    "{}: observed cell ({i},{j}) was rewritten",
                    s.name
                );
            }
        }
    }
    (live, imputed.n_missing())
}

#[test]
fn every_adversarial_scenario_upholds_the_contract() {
    for s in adversarial::scenarios() {
        let (report, missing_after) = run_scenario(&s);
        assert_eq!(
            missing_after, 0,
            "{}: {missing_after} cells left missing",
            s.name
        );
        assert_eq!(
            report.column_tiers.len(),
            s.table.n_columns(),
            "{}: one tier per column",
            s.name
        );
    }
}

#[test]
fn degenerate_columns_take_the_advertised_ladder_tier() {
    // A column with zero observed values can only be filled by the constant
    // tier; a cardinality-1 column steps down to the mode/mean baseline.
    let s = adversarial::scenarios();
    let by_name = |name: &str| s.iter().find(|s| s.name == name).expect("scenario");

    let ghost_cat = by_name("all_missing_categorical");
    let (report, _) = run_scenario(ghost_cat);
    assert_eq!(report.column_tiers[1], ColumnTier::Constant);

    let ghost_num = by_name("all_missing_numerical");
    let (report, _) = run_scenario(ghost_num);
    assert_eq!(report.column_tiers[1], ColumnTier::Constant);

    let single = by_name("single_distinct_column");
    let (report, _) = run_scenario(single);
    assert_eq!(report.column_tiers[0], ColumnTier::Baseline);
}

#[test]
fn constant_tier_fills_are_the_documented_sentinels() {
    let pipeline = Pipeline::new(chaos_config()).expect("validated");

    let t = adversarial::all_missing_categorical();
    let mut fitted = pipeline.fit(&t).expect("fit");
    let imputed = fitted.impute(&t).expect("impute");
    for i in 0..t.n_rows() {
        if t.is_missing(i, 1) {
            assert_eq!(imputed.display(i, 1), "(unknown)");
        }
    }

    let t = adversarial::all_missing_numerical();
    let mut fitted = pipeline.fit(&t).expect("fit");
    let imputed = fitted.impute(&t).expect("impute");
    for i in 0..t.n_rows() {
        if t.is_missing(i, 1) {
            let v = imputed.get(i, 1).as_num().expect("numeric fill");
            assert_eq!(v, 0.0, "constant numeric fill is 0.0");
        }
    }
}

#[test]
fn healthy_columns_keep_their_gnn_heads_next_to_degenerate_ones() {
    // The ladder is per-column: a pathological neighbour must not drag a
    // healthy column off its trained head.
    for s in adversarial::scenarios() {
        let (report, _) = run_scenario(&s);
        for (j, tier) in report.column_tiers.iter().enumerate() {
            let col = s.table.column(j);
            let observed = s.table.n_rows() - col.n_missing();
            let healthy = match s.table.schema().column(j).kind {
                ColumnKind::Categorical => col.n_distinct() >= 2,
                ColumnKind::Numerical => observed >= 2,
            };
            if healthy && report.epochs_run > 0 && !report.degraded_to_baseline {
                assert_eq!(
                    *tier,
                    ColumnTier::Gnn,
                    "{}: healthy column {j} lost its GNN head",
                    s.name
                );
            }
        }
    }
}

#[test]
fn malformed_csv_inputs_are_rejected_with_typed_errors() {
    for (name, text) in adversarial::malformed_csvs() {
        match read_csv_str(text) {
            Err(_) => {}
            Ok(t) => panic!(
                "{name}: malformed CSV parsed into a {}x{} table",
                t.n_rows(),
                t.n_columns()
            ),
        }
    }
}

#[test]
fn bit_flipped_checkpoint_falls_back_to_the_previous_generation() {
    use grimp::{Grimp, CHECKPOINT_FILE, CHECKPOINT_PREV_FILE};
    use grimp_table::inject_mcar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let dir = std::env::temp_dir().join(format!("grimp-chaos-bitflip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut dirty = adversarial::high_cardinality(60);
    inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(9));

    let mut cfg = chaos_config();
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 1;
    let mut model = Grimp::new(cfg.clone());
    let _ = model.fit_impute(&dirty);

    let current = dir.join(CHECKPOINT_FILE);
    let prev = dir.join(CHECKPOINT_PREV_FILE);
    assert!(current.exists() && prev.exists(), "two generations on disk");

    // Flip one bit in the middle of the newest checkpoint. The CRC-32
    // footer must reject it and resume must fall back to the previous
    // generation instead of restarting from scratch.
    let mut bytes = std::fs::read(&current).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&current, &bytes).unwrap();

    cfg.resume = true;
    let mut resumed = Grimp::new(cfg);
    let imputed = resumed.fit_impute(&dirty);
    let report = resumed.last_report().expect("report");

    assert!(
        report.resumed_from_epoch.is_some(),
        "resume must recover from the previous generation, not restart"
    );
    assert_eq!(
        report.io_errors.len(),
        1,
        "io errors: {:?}",
        report.io_errors
    );
    assert!(
        report.io_errors[0].contains("CRC-32"),
        "the rejection names the CRC check: {}",
        report.io_errors[0]
    );
    assert_eq!(imputed.n_missing(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

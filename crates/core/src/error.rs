//! Unified error taxonomy for the GRIMP pipeline.
//!
//! Every fallible public entry point — [`crate::Pipeline::fit`],
//! [`crate::FittedModel::impute`], checkpoint resume, CSV-fed CLI paths —
//! surfaces a [`GrimpError`] instead of panicking. Each variant carries
//! enough context (column name, epoch, file path, source error) to act on,
//! and maps to one of five coarse [`ErrorCategory`] buckets that the CLI
//! turns into stable process exit codes:
//!
//! | category   | exit code | meaning                                   |
//! |------------|-----------|-------------------------------------------|
//! | `Config`   | 2         | caller asked for something invalid        |
//! | `Data`     | 3         | the input table/CSV is malformed          |
//! | `Io`       | 4         | the filesystem failed us                  |
//! | `Internal` | 5         | an invariant broke — a bug in GRIMP       |
//! | `Busy`     | 7         | another run holds a shared resource       |
//!
//! (Exit code 6 — deadline hit — is a *successful* run that stopped at its
//! wall-clock budget, so it has no error variant; 130 is the POSIX-style
//! interrupted-but-finished code. Both are produced by the CLI, not here.)
//!
//! The taxonomy is deliberately shallow: callers that just want to report
//! use `Display`; callers that want to branch use [`GrimpError::category`];
//! callers that need the details match the variant.

use std::fmt;
use std::path::PathBuf;

use grimp_table::TableError;
use grimp_tensor::CheckpointError;

use crate::config::ConfigError;

/// Coarse classification of a [`GrimpError`], used for CLI exit codes and
/// retry decisions (I/O errors are transient, config errors are not).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// The caller's configuration or arguments are invalid.
    Config,
    /// The input data (table, CSV, schema) is malformed or unusable.
    Data,
    /// A filesystem or serialization operation failed.
    Io,
    /// A GRIMP invariant was violated — always a bug, never user error.
    Internal,
    /// A shared resource (the checkpoint-directory lock) is held by
    /// another run; retry after it finishes.
    Busy,
}

impl ErrorCategory {
    /// Stable process exit code for this category (config=2, data=3, io=4,
    /// internal=5, busy=7; 0 is success, 1 is reserved for uncategorized
    /// errors, and 6 is the CLI's deadline-hit success code).
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorCategory::Config => 2,
            ErrorCategory::Data => 3,
            ErrorCategory::Io => 4,
            ErrorCategory::Internal => 5,
            ErrorCategory::Busy => 7,
        }
    }

    /// Lowercase label used in error messages and traces.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCategory::Config => "config",
            ErrorCategory::Data => "data",
            ErrorCategory::Io => "io",
            ErrorCategory::Internal => "internal",
            ErrorCategory::Busy => "busy",
        }
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Any error the GRIMP pipeline can surface to a caller.
#[derive(Debug)]
pub enum GrimpError {
    /// The [`crate::GrimpConfig`] failed validation.
    Config(ConfigError),
    /// A table operation failed, optionally attributable to one column.
    Table {
        /// Name of the offending column, when known.
        column: Option<String>,
        /// The underlying table error.
        source: TableError,
    },
    /// The training table has no columns — there is nothing to impute.
    EmptySchema,
    /// An unseen table's schema does not match the training schema.
    SchemaMismatch {
        /// Rendered training schema.
        expected: String,
        /// Rendered schema of the offending table.
        got: String,
    },
    /// Imputing an unseen table requires deterministic per-value features
    /// (`FeatureSource::FastText`); the model was trained with another
    /// feature source.
    InductiveUnsupported,
    /// A checkpoint could not be written, read, or decoded.
    Checkpoint {
        /// Path of the offending checkpoint file.
        path: PathBuf,
        /// The underlying codec or I/O error.
        source: CheckpointError,
    },
    /// A filesystem operation outside the checkpoint codec failed.
    Io {
        /// What was being attempted (e.g. a file path or operation name).
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A pending append log (`grimp.wal`) holds rows that differ from the
    /// requested append. Applying both blindly could double-apply or drop
    /// the interrupted delta, so the caller must either re-run the
    /// interrupted append with its original rows or remove the log.
    PendingAppend {
        /// Path of the pending append log.
        path: PathBuf,
        /// Why it conflicts with the requested append.
        detail: String,
    },
    /// The checkpoint directory is locked by another run, so starting
    /// would corrupt its checkpoint rotation.
    LockHeld {
        /// Path of the lock file.
        path: PathBuf,
        /// PID recorded in the lock file, when readable.
        owner_pid: Option<u32>,
    },
    /// An internal invariant was violated. Seeing this is a GRIMP bug.
    Internal {
        /// What went wrong, for the bug report.
        detail: String,
    },
}

impl GrimpError {
    /// Which coarse bucket (and therefore CLI exit code) this error is in.
    pub fn category(&self) -> ErrorCategory {
        match self {
            GrimpError::Config(_) => ErrorCategory::Config,
            GrimpError::Table { .. }
            | GrimpError::EmptySchema
            | GrimpError::SchemaMismatch { .. }
            | GrimpError::InductiveUnsupported
            | GrimpError::PendingAppend { .. } => ErrorCategory::Data,
            GrimpError::Checkpoint { .. } | GrimpError::Io { .. } => ErrorCategory::Io,
            GrimpError::LockHeld { .. } => ErrorCategory::Busy,
            GrimpError::Internal { .. } => ErrorCategory::Internal,
        }
    }

    /// Attach a column name to a [`GrimpError::Table`] error.
    pub fn in_column(self, column: &str) -> Self {
        match self {
            GrimpError::Table { source, .. } => GrimpError::Table {
                column: Some(column.to_string()),
                source,
            },
            other => other,
        }
    }
}

impl fmt::Display for GrimpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrimpError::Config(e) => write!(f, "invalid configuration: {e}"),
            GrimpError::Table {
                column: Some(c),
                source,
            } => write!(f, "column {c:?}: {source}"),
            GrimpError::Table {
                column: None,
                source,
            } => write!(f, "{source}"),
            GrimpError::EmptySchema => {
                write!(f, "the table has no columns; nothing to impute")
            }
            GrimpError::SchemaMismatch { expected, got } => write!(
                f,
                "schema mismatch: the model was trained on {expected}, got {got}"
            ),
            GrimpError::InductiveUnsupported => write!(
                f,
                "imputing an unseen table requires FeatureSource::FastText \
                 (deterministic per-value features)"
            ),
            GrimpError::Checkpoint { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            GrimpError::PendingAppend { path, detail } => write!(
                f,
                "pending append log {}: {detail} — re-run the interrupted \
                 append with its original rows, or remove the file to \
                 abandon that delta",
                path.display()
            ),
            GrimpError::Io { context, source } => write!(f, "{context}: {source}"),
            GrimpError::LockHeld { path, owner_pid } => {
                write!(f, "checkpoint directory is locked by another run")?;
                if let Some(pid) = owner_pid {
                    write!(f, " (pid {pid})")?;
                }
                write!(
                    f,
                    ": {} — remove the file if that run is gone",
                    path.display()
                )
            }
            GrimpError::Internal { detail } => {
                write!(f, "internal invariant violated (GRIMP bug): {detail}")
            }
        }
    }
}

impl std::error::Error for GrimpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GrimpError::Table { source, .. } => Some(source),
            GrimpError::Checkpoint { source, .. } => Some(source),
            GrimpError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ConfigError> for GrimpError {
    fn from(e: ConfigError) -> Self {
        GrimpError::Config(e)
    }
}

impl From<TableError> for GrimpError {
    fn from(e: TableError) -> Self {
        GrimpError::Table {
            column: None,
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_map_to_the_documented_exit_codes() {
        assert_eq!(ErrorCategory::Config.exit_code(), 2);
        assert_eq!(ErrorCategory::Data.exit_code(), 3);
        assert_eq!(ErrorCategory::Io.exit_code(), 4);
        assert_eq!(ErrorCategory::Internal.exit_code(), 5);
        assert_eq!(ErrorCategory::Busy.exit_code(), 7);
    }

    #[test]
    fn every_variant_lands_in_the_right_category() {
        assert_eq!(
            GrimpError::Config(ConfigError::ZeroEpochs).category(),
            ErrorCategory::Config
        );
        assert_eq!(GrimpError::EmptySchema.category(), ErrorCategory::Data);
        assert_eq!(
            GrimpError::SchemaMismatch {
                expected: "a".into(),
                got: "b".into()
            }
            .category(),
            ErrorCategory::Data
        );
        assert_eq!(
            GrimpError::InductiveUnsupported.category(),
            ErrorCategory::Data
        );
        assert_eq!(
            GrimpError::PendingAppend {
                path: PathBuf::from("/tmp/ck/grimp.wal"),
                detail: "holds 2 different rows".into(),
            }
            .category(),
            ErrorCategory::Data
        );
        assert_eq!(
            GrimpError::Checkpoint {
                path: PathBuf::from("x.ckpt"),
                source: CheckpointError::BadMagic,
            }
            .category(),
            ErrorCategory::Io
        );
        assert_eq!(
            GrimpError::Io {
                context: "reading x".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            }
            .category(),
            ErrorCategory::Io
        );
        assert_eq!(
            GrimpError::Internal { detail: "x".into() }.category(),
            ErrorCategory::Internal
        );
        assert_eq!(
            GrimpError::LockHeld {
                path: PathBuf::from("/tmp/ck/grimp.lock"),
                owner_pid: Some(41),
            }
            .category(),
            ErrorCategory::Busy
        );
    }

    #[test]
    fn lock_held_display_names_the_owner_and_the_file() {
        let msg = GrimpError::LockHeld {
            path: PathBuf::from("/tmp/ck/grimp.lock"),
            owner_pid: Some(41),
        }
        .to_string();
        assert!(msg.contains("locked"), "{msg}");
        assert!(msg.contains("pid 41"), "{msg}");
        assert!(msg.contains("grimp.lock"), "{msg}");
    }

    #[test]
    fn display_carries_the_context() {
        let e = GrimpError::Table {
            column: None,
            source: TableError::RaggedRow {
                expected: 3,
                got: 2,
            },
        }
        .in_column("city");
        let msg = e.to_string();
        assert!(msg.contains("city"), "{msg}");
        let c = GrimpError::Checkpoint {
            path: PathBuf::from("/tmp/grimp.ckpt"),
            source: CheckpointError::BadMagic,
        };
        assert!(c.to_string().contains("grimp.ckpt"));
        assert!(GrimpError::InductiveUnsupported
            .to_string()
            .contains("FastText"));
    }
}

//! # grimp (grimp-core)
//!
//! GRIMP — **G**raph embeddings for **R**elational data **IMP**utation
//! (Cappuzzo, Thirumuruganathan, Papotti; EDBT 2024) — reimplemented in
//! Rust on a from-scratch autodiff/GNN stack.
//!
//! GRIMP imputes missing values in mixed categorical/numerical tables:
//!
//! 1. the table becomes a heterogeneous quasi-bipartite graph
//!    ([`grimp_graph::TableGraph`]);
//! 2. a heterogeneous GraphSAGE ([`grimp_gnn::HeteroSage`]) plus a two-layer
//!    merge step (the *shared layer*) produces cell-value embeddings;
//! 3. one *task* per attribute — multi-class classifier or regressor,
//!    linear or attention-structured ([`Task`]) — imputes that attribute,
//!    trained jointly under hard parameter sharing with a summed dual loss
//!    (cross-entropy/focal + MSE) and early stopping on a 20 % validation
//!    holdout.
//!
//! Training is self-supervised: every non-missing cell yields a training
//! sample with that cell masked, so no clean data is required.
//!
//! ## Quickstart
//!
//! ```
//! use grimp::{Grimp, GrimpConfig};
//! use grimp_table::{csv::read_csv_str, Imputer};
//!
//! let dirty = read_csv_str("city,country\nParis,France\nRome,\nParis,\n").unwrap();
//! let mut model = Grimp::new(GrimpConfig::fast().with_seed(1));
//! let imputed = model.impute(&dirty);
//! assert_eq!(imputed.n_missing(), 0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod fault;
pub mod federated;
pub mod governor;
pub mod incremental;
pub mod inductive;
pub mod mc;
pub mod model;
pub mod params;
pub mod pipeline;
pub mod report;
pub mod tasks;
pub mod tuner;
pub mod vectors;
pub mod wal;

pub use checkpoint::{
    TrainCheckpoint, CHECKPOINT_FILE, CHECKPOINT_MAGIC, CHECKPOINT_PREV_FILE, CHECKPOINT_VERSION,
};
pub use config::FinetuneConfig;
pub use config::{
    CategoricalLoss, CheckpointPolicy, ConfigError, GrimpConfig, GrimpConfigBuilder, KStrategy,
    ResourceLimits, SamplerConfig, TaskKind,
};
pub use error::{ErrorCategory, GrimpError};
pub use fault::TrainAnomaly;
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::{FaultKind, FaultPlan};
pub use federated::{FederatedConfig, FederatedGrimp, FederatedReport};
pub use governor::{
    downscale_to_budget, estimate_footprint, pid_alive, DirLock, FootprintEstimate, ShutdownFlag,
    LOCK_FILE,
};
pub use grimp_tensor::BackendKind;
pub use incremental::{table_to_wal_rows, AppendOutcome, AppendPath};
pub use inductive::TrainedGrimp;
pub use mc::{GlobalDomain, GnnMc};
pub use model::{FittedModel, Grimp, TrainState};
pub use params::{ParamCounts, ParamFormula};
pub use pipeline::Pipeline;
pub use report::{ColumnTier, DownscaleDecision, DownscaleRung, EpochStats, TrainReport};
pub use tasks::{build_k_matrix, Task};
pub use tuner::{default_candidates, select_config, ProbeResult, TunerConfig};
pub use vectors::VectorBatch;
pub use wal::{WalBase, WalRead, WalRow, WalSegment, WAL_APPLIED_FILE, WAL_FILE};

//! Versioned binary training checkpoints for [`crate::Grimp::fit_impute`].
//!
//! A [`TrainCheckpoint`] captures everything the training loop needs to
//! resume bit-exactly after a kill: the epoch counter, current learning rate
//! and recovery count, the early-stopping bookkeeping, the RNG state, every
//! trainable tape parameter, the Adam moments, and the best-validation
//! parameter snapshot.
//!
//! ## On-disk format (version 2)
//!
//! All integers and floats are little-endian; floats are stored as raw bit
//! patterns so non-finite sentinels (`best_val` starts at `+inf`) round-trip
//! bit-exactly.
//!
//! | field        | encoding                                     |
//! |--------------|----------------------------------------------|
//! | magic        | 8 raw bytes `"GRIMPCKP"`                     |
//! | version      | `u32` (currently 2)                          |
//! | epoch        | `u64`                                        |
//! | lr           | `f32` bits                                   |
//! | recoveries   | `u32`                                        |
//! | best_val     | `f32` bits                                   |
//! | since_best   | `u64`                                        |
//! | rng          | 4 × `u64` (xoshiro256** state)               |
//! | params       | tensor list (`u64` count, then tensors)      |
//! | adam         | `u32` step counter + two tensor lists        |
//! | best_params  | `u8` flag, then a tensor list when 1         |
//! | crc32        | `u32` CRC-32 (IEEE) of every preceding byte  |
//!
//! A tensor is `u64` rows, `u64` cols, then row-major `f32` bits. Decoding
//! never panics: wrong magic, unknown versions, truncation, bit flips (the
//! CRC-32 footer), and corrupt length prefixes all surface as a typed
//! [`CheckpointError`](grimp_tensor::CheckpointError).
//!
//! [`TrainCheckpoint::save`] keeps the last *two* checkpoints: the previous
//! good file survives as `grimp.ckpt.prev`, so a torn or bit-flipped write
//! of the newest checkpoint never destroys the ability to resume.

use std::path::Path;

use grimp_tensor::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use grimp_tensor::{AdamState, Tensor};

/// Magic header identifying a GRIMP training checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"GRIMPCKP";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 2;
/// File name used inside a `--checkpoint-dir`.
pub const CHECKPOINT_FILE: &str = "grimp.ckpt";
/// Previous-generation checkpoint kept alongside [`CHECKPOINT_FILE`]; resume
/// falls back to it when the newest file is truncated or bit-flipped.
pub const CHECKPOINT_PREV_FILE: &str = "grimp.ckpt.prev";

/// Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) —
/// the same checksum gzip and PNG use, computed bitwise so the codec stays
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            // Branch-free: mask is all-ones when the low bit is set.
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A complete, resumable snapshot of the training loop.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// Number of completed epochs.
    pub epoch: u64,
    /// Learning rate in effect (halved by each divergence recovery).
    pub lr: f32,
    /// Divergence recoveries consumed so far.
    pub recoveries: u32,
    /// Best validation loss seen (`+inf` until the first epoch).
    pub best_val: f32,
    /// Epochs since `best_val` improved (early-stopping counter).
    pub since_best: u64,
    /// RNG state at capture time.
    pub rng: [u64; 4],
    /// Every trainable tape parameter, in registration order.
    pub params: Vec<Tensor>,
    /// Adam optimizer state.
    pub adam: AdamState,
    /// Parameters at the best-validation epoch, when one exists.
    pub best_params: Option<Vec<Tensor>>,
}

impl TrainCheckpoint {
    /// Serialize to the version-2 binary format (CRC-32 footer included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION);
        w.u64(self.epoch);
        w.f32(self.lr);
        w.u32(self.recoveries);
        w.f32(self.best_val);
        w.u64(self.since_best);
        for s in self.rng {
            w.u64(s);
        }
        w.tensor_list(&self.params);
        w.adam_state(&self.adam);
        match &self.best_params {
            Some(ps) => {
                w.u8(1);
                w.tensor_list(ps);
            }
            None => w.u8(0),
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Decode a checkpoint previously produced by
    /// [`TrainCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // Magic and version are checked before the CRC so that a v1 file (no
        // footer) reports "unsupported version", not a misleading CRC error.
        {
            let mut head = ByteReader::new(bytes);
            if head.raw(CHECKPOINT_MAGIC.len(), "magic header")? != &CHECKPOINT_MAGIC[..] {
                return Err(CheckpointError::BadMagic);
            }
            let version = head.u32("format version")?;
            if version != CHECKPOINT_VERSION {
                return Err(CheckpointError::UnsupportedVersion(version));
            }
        }
        let footer_at = bytes
            .len()
            .checked_sub(4)
            .ok_or_else(|| CheckpointError::Corrupt("too short for a CRC-32 footer".into()))?;
        let payload = &bytes[..footer_at];
        let mut stored = [0u8; 4];
        stored.copy_from_slice(&bytes[footer_at..]);
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(payload);
        if computed != stored {
            return Err(CheckpointError::Corrupt(format!(
                "CRC-32 mismatch (stored {stored:08x}, computed {computed:08x}) — \
                 the file is truncated or bit-flipped"
            )));
        }
        let mut r = ByteReader::new(payload);
        let _ = r.raw(CHECKPOINT_MAGIC.len(), "magic header")?;
        let _ = r.u32("format version")?;
        let epoch = r.u64("epoch")?;
        let lr = r.f32("learning rate")?;
        let recoveries = r.u32("recovery count")?;
        let best_val = r.f32("best validation loss")?;
        let since_best = r.u64("early-stopping counter")?;
        let mut rng = [0u64; 4];
        for s in &mut rng {
            *s = r.u64("rng state")?;
        }
        let params = r.tensor_list("parameters")?;
        let adam = r.adam_state()?;
        let best_params = match r.u8("best-params flag")? {
            0 => None,
            1 => Some(r.tensor_list("best parameters")?),
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "best-params flag must be 0 or 1, got {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after checkpoint payload",
                r.remaining()
            )));
        }
        Ok(TrainCheckpoint {
            epoch,
            lr,
            recoveries,
            best_val,
            since_best,
            rng,
            params,
            adam,
            best_params,
        })
    }

    /// Write atomically to `path` (via a sibling temp file + rename, so a
    /// kill mid-write never leaves a truncated checkpoint behind), keeping
    /// the previous generation as `<path>.prev` so resume can fall back past
    /// a corrupted newest file. Returns the number of bytes written.
    pub fn save(&self, path: &Path) -> Result<usize, CheckpointError> {
        self.save_with(&mut grimp_obs::RealFs, path)
    }

    /// [`TrainCheckpoint::save`] through an injectable filesystem, so
    /// checkpoint IO can be fault-tested. Transient errors (interrupted,
    /// timed-out) are retried with deterministic backoff; persistent ones
    /// surface to the caller, which degrades to checkpoint-less training.
    pub fn save_with(
        &self,
        fs: &mut dyn grimp_obs::GrimpFs,
        path: &Path,
    ) -> Result<usize, CheckpointError> {
        use grimp_obs::fs::{with_retry, IO_RETRY_ATTEMPTS};

        let bytes = self.to_bytes();
        let tmp = path.with_extension("ckpt.tmp");
        with_retry(IO_RETRY_ATTEMPTS, || fs.write(&tmp, &bytes))?;
        if fs.exists(path) {
            let prev = path.with_extension("ckpt.prev");
            with_retry(IO_RETRY_ATTEMPTS, || fs.rename(path, &prev))?;
        }
        with_retry(IO_RETRY_ATTEMPTS, || fs.rename(&tmp, path))?;
        // The new generation just became the checkpoint; `.prev` still holds
        // the old one. A kill here must resume from one or the other intact.
        grimp_obs::crashpoint::hit(grimp_obs::crashpoint::CHECKPOINT_ROTATE);
        Ok(bytes.len())
    }

    /// Read and decode the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 12,
            lr: 5e-3,
            recoveries: 1,
            best_val: 0.75,
            since_best: 3,
            rng: [1, 2, 3, u64::MAX],
            params: vec![
                Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, -0.4]),
                Tensor::scalar(9.0),
            ],
            adam: AdamState {
                t: 12,
                m: vec![Tensor::from_vec(2, 2, vec![0.0; 4]), Tensor::zeros(0, 0)],
                v: vec![Tensor::from_vec(2, 2, vec![1.0; 4]), Tensor::zeros(0, 0)],
            },
            best_params: Some(vec![
                Tensor::from_vec(2, 2, vec![0.5; 4]),
                Tensor::scalar(8.0),
            ]),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let ck = sample();
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn infinity_best_val_roundtrips() {
        let mut ck = sample();
        ck.best_val = f32::INFINITY;
        ck.best_params = None;
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.best_val, f32::INFINITY);
        assert!(back.best_params.is_none());
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            TrainCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            TrainCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes = sample().to_bytes();
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 1);
        assert!(matches!(
            TrainCheckpoint::from_bytes(&short),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            TrainCheckpoint::from_bytes(&long),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_disk() {
        let dir = std::env::temp_dir().join("grimp-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let ck = sample();
        let n = ck.save(&path).unwrap();
        assert_eq!(n, ck.to_bytes().len());
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_with_rides_out_transient_faults_and_reports_persistent_ones() {
        use grimp_obs::{FaultFs, IoFaultKind, IoFaultPlan};

        let dir = std::env::temp_dir().join(format!("grimp-ckpt-fault-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let ck = sample();

        // Two transient (interrupted) faults are within the retry budget.
        let mut fs = FaultFs::new(IoFaultPlan::transient(2));
        ck.save_with(&mut fs, &path).expect("retried past faults");
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), ck);

        // A persistent ENOSPC surfaces as an error without panicking.
        let mut full = FaultFs::new(IoFaultPlan::persistent(IoFaultKind::Enospc));
        let err = ck.save_with(&mut full, &dir.join("other.ckpt"));
        assert!(err.is_err(), "persistent fault must surface");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector from the PNG/gzip specs.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn a_single_bit_flip_anywhere_is_detected() {
        let bytes = sample().to_bytes();
        // Flip one bit in a parameter float, far from any length prefix, so
        // only the CRC can catch it.
        let mid = bytes.len() / 2;
        for &at in &[CHECKPOINT_MAGIC.len() + 4, mid, bytes.len() - 5] {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x10;
            assert!(
                matches!(
                    TrainCheckpoint::from_bytes(&flipped),
                    Err(CheckpointError::Corrupt(_))
                ),
                "bit flip at byte {at} was not detected"
            );
        }
    }

    #[test]
    fn save_keeps_the_previous_generation() {
        let dir = std::env::temp_dir().join("grimp-ckpt-rotate-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let prev = dir.join(CHECKPOINT_PREV_FILE);

        let mut first = sample();
        first.epoch = 1;
        first.save(&path).unwrap();
        assert!(!prev.exists(), "no previous generation after one save");

        let mut second = sample();
        second.epoch = 2;
        second.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap().epoch, 2);
        assert_eq!(TrainCheckpoint::load(&prev).unwrap().epoch, 1);

        let mut third = sample();
        third.epoch = 3;
        third.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap().epoch, 3);
        assert_eq!(
            TrainCheckpoint::load(&prev).unwrap().epoch,
            2,
            "only the last two generations are kept"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

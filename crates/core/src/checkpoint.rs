//! Versioned binary training checkpoints for [`crate::Grimp::fit_impute`].
//!
//! A [`TrainCheckpoint`] captures everything the training loop needs to
//! resume bit-exactly after a kill: the epoch counter, current learning rate
//! and recovery count, the early-stopping bookkeeping, the RNG state, every
//! trainable tape parameter, the Adam moments, and the best-validation
//! parameter snapshot.
//!
//! ## On-disk format (version 1)
//!
//! All integers and floats are little-endian; floats are stored as raw bit
//! patterns so non-finite sentinels (`best_val` starts at `+inf`) round-trip
//! bit-exactly.
//!
//! | field        | encoding                                     |
//! |--------------|----------------------------------------------|
//! | magic        | 8 raw bytes `"GRIMPCKP"`                     |
//! | version      | `u32` (currently 1)                          |
//! | epoch        | `u64`                                        |
//! | lr           | `f32` bits                                   |
//! | recoveries   | `u32`                                        |
//! | best_val     | `f32` bits                                   |
//! | since_best   | `u64`                                        |
//! | rng          | 4 × `u64` (xoshiro256** state)               |
//! | params       | tensor list (`u64` count, then tensors)      |
//! | adam         | `u32` step counter + two tensor lists        |
//! | best_params  | `u8` flag, then a tensor list when 1         |
//!
//! A tensor is `u64` rows, `u64` cols, then row-major `f32` bits. Decoding
//! never panics: wrong magic, unknown versions, truncation, and corrupt
//! length prefixes all surface as a typed
//! [`CheckpointError`](grimp_tensor::CheckpointError).

use std::path::Path;

use grimp_tensor::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use grimp_tensor::{AdamState, Tensor};

/// Magic header identifying a GRIMP training checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"GRIMPCKP";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// File name used inside a `--checkpoint-dir`.
pub const CHECKPOINT_FILE: &str = "grimp.ckpt";

/// A complete, resumable snapshot of the training loop.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// Number of completed epochs.
    pub epoch: u64,
    /// Learning rate in effect (halved by each divergence recovery).
    pub lr: f32,
    /// Divergence recoveries consumed so far.
    pub recoveries: u32,
    /// Best validation loss seen (`+inf` until the first epoch).
    pub best_val: f32,
    /// Epochs since `best_val` improved (early-stopping counter).
    pub since_best: u64,
    /// RNG state at capture time.
    pub rng: [u64; 4],
    /// Every trainable tape parameter, in registration order.
    pub params: Vec<Tensor>,
    /// Adam optimizer state.
    pub adam: AdamState,
    /// Parameters at the best-validation epoch, when one exists.
    pub best_params: Option<Vec<Tensor>>,
}

impl TrainCheckpoint {
    /// Serialize to the version-1 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION);
        w.u64(self.epoch);
        w.f32(self.lr);
        w.u32(self.recoveries);
        w.f32(self.best_val);
        w.u64(self.since_best);
        for s in self.rng {
            w.u64(s);
        }
        w.tensor_list(&self.params);
        w.adam_state(&self.adam);
        match &self.best_params {
            Some(ps) => {
                w.u8(1);
                w.tensor_list(ps);
            }
            None => w.u8(0),
        }
        w.into_bytes()
    }

    /// Decode a checkpoint previously produced by
    /// [`TrainCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        if r.raw(CHECKPOINT_MAGIC.len(), "magic header")? != &CHECKPOINT_MAGIC[..] {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32("format version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let epoch = r.u64("epoch")?;
        let lr = r.f32("learning rate")?;
        let recoveries = r.u32("recovery count")?;
        let best_val = r.f32("best validation loss")?;
        let since_best = r.u64("early-stopping counter")?;
        let mut rng = [0u64; 4];
        for s in &mut rng {
            *s = r.u64("rng state")?;
        }
        let params = r.tensor_list("parameters")?;
        let adam = r.adam_state()?;
        let best_params = match r.u8("best-params flag")? {
            0 => None,
            1 => Some(r.tensor_list("best parameters")?),
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "best-params flag must be 0 or 1, got {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after checkpoint payload",
                r.remaining()
            )));
        }
        Ok(TrainCheckpoint {
            epoch,
            lr,
            recoveries,
            best_val,
            since_best,
            rng,
            params,
            adam,
            best_params,
        })
    }

    /// Write atomically to `path` (via a sibling temp file + rename, so a
    /// kill mid-write never leaves a truncated checkpoint behind). Returns
    /// the number of bytes written.
    pub fn save(&self, path: &Path) -> Result<usize, CheckpointError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len())
    }

    /// Read and decode the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 12,
            lr: 5e-3,
            recoveries: 1,
            best_val: 0.75,
            since_best: 3,
            rng: [1, 2, 3, u64::MAX],
            params: vec![
                Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, -0.4]),
                Tensor::scalar(9.0),
            ],
            adam: AdamState {
                t: 12,
                m: vec![Tensor::from_vec(2, 2, vec![0.0; 4]), Tensor::zeros(0, 0)],
                v: vec![Tensor::from_vec(2, 2, vec![1.0; 4]), Tensor::zeros(0, 0)],
            },
            best_params: Some(vec![
                Tensor::from_vec(2, 2, vec![0.5; 4]),
                Tensor::scalar(8.0),
            ]),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let ck = sample();
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn infinity_best_val_roundtrips() {
        let mut ck = sample();
        ck.best_val = f32::INFINITY;
        ck.best_params = None;
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.best_val, f32::INFINITY);
        assert!(back.best_params.is_none());
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            TrainCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            TrainCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes = sample().to_bytes();
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 1);
        assert!(matches!(
            TrainCheckpoint::from_bytes(&short),
            Err(CheckpointError::Corrupt(_))
        ));
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            TrainCheckpoint::from_bytes(&long),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_disk() {
        let dir = std::env::temp_dir().join("grimp-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let ck = sample();
        let n = ck.save(&path).unwrap();
        assert_eq!(n, ck.to_bytes().len());
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Training reports: a thin run summary ([`TrainReport`]) plus per-epoch
//! [`EpochStats`], both derivable from a recorded observability event
//! stream via [`TrainReport::from_events`].
//!
//! Historically `TrainReport` was a grab-bag of parallel per-epoch vectors
//! (`train_losses`, `val_losses`, `grad_norms`, `epoch_allocs`) that grew
//! a field per PR. Those fields are gone: per-epoch data now lives in one
//! `Vec<EpochStats>`, and the old names survive as accessor methods so
//! benches and experiment code keep reading the same numbers.

use std::fmt;

use grimp_obs::{Event, EventKind};

use crate::fault::TrainAnomaly;

/// Which rung of the per-column degradation ladder imputes a column.
///
/// Every column starts at [`ColumnTier::Gnn`]. Pathological columns
/// (all-missing, single distinct value) are demoted before training;
/// a column whose task loss diverges mid-run is demoted without touching
/// its healthy neighbours; exhausting the rollback budget demotes whatever
/// is left. Demotion only ever steps *down* — a column never climbs back
/// up within a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ColumnTier {
    /// Imputed by the column's trained GNN task head.
    #[default]
    Gnn,
    /// Imputed by the column's mode (categorical) or mean (numerical).
    Baseline,
    /// Imputed by a global constant — `"(unknown)"` / `0.0` — because the
    /// column has no observed values to take a mode or mean from.
    Constant,
}

impl ColumnTier {
    /// Stable numeric code used in `column_tier` trace events.
    pub fn code(self) -> u64 {
        match self {
            ColumnTier::Gnn => 0,
            ColumnTier::Baseline => 1,
            ColumnTier::Constant => 2,
        }
    }

    /// Inverse of [`ColumnTier::code`]; unknown codes clamp to `Constant`
    /// (the most conservative tier).
    pub fn from_code(code: u64) -> Self {
        match code {
            0 => ColumnTier::Gnn,
            1 => ColumnTier::Baseline,
            _ => ColumnTier::Constant,
        }
    }

    /// Lowercase label used in traces and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ColumnTier::Gnn => "gnn",
            ColumnTier::Baseline => "baseline",
            ColumnTier::Constant => "constant",
        }
    }
}

impl fmt::Display for ColumnTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which knob the admission-time memory governor turned when the estimated
/// footprint exceeded `memory_budget_mb` (see [`crate::downscale_to_budget`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DownscaleRung {
    /// Capped (or further halved) the distinct-value nodes kept per
    /// attribute column — the cheapest knob, tried first.
    ValueNodeCap,
    /// Halved the GNN hidden width, merge-layer width, and embedding dim
    /// together — only after the value-node cap bottomed out.
    HiddenDims,
    /// Switched training to neighbor-sampled mini-batches (or further
    /// halved `batch_rows`) — the last rung, taken only when the smallest
    /// full-batch shape still exceeds the budget. The run stays exact at
    /// imputation time; only the per-epoch gradient is estimated from a
    /// sample.
    Sample,
}

impl DownscaleRung {
    /// Stable numeric code used in `downscale` trace events.
    pub fn code(self) -> u64 {
        match self {
            DownscaleRung::ValueNodeCap => 0,
            DownscaleRung::HiddenDims => 1,
            DownscaleRung::Sample => 2,
        }
    }

    /// Inverse of [`DownscaleRung::code`]; unknown codes clamp to
    /// `Sample` (the most drastic rung).
    pub fn from_code(code: u64) -> Self {
        match code {
            0 => DownscaleRung::ValueNodeCap,
            1 => DownscaleRung::HiddenDims,
            _ => DownscaleRung::Sample,
        }
    }

    /// Lowercase label used in traces and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            DownscaleRung::ValueNodeCap => "value_node_cap",
            DownscaleRung::HiddenDims => "hidden_dims",
            DownscaleRung::Sample => "sample",
        }
    }
}

impl fmt::Display for DownscaleRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One admission-time downscale step taken to fit the memory budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DownscaleDecision {
    /// Which knob was turned.
    pub rung: DownscaleRung,
    /// The value the knob was set to (the new per-column value-node cap,
    /// the new GNN hidden width, or the new sampler `batch_rows`).
    pub value: u64,
}

impl fmt::Display for DownscaleDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.rung, self.value)
    }
}

/// Everything measured about one *completed* training epoch. Epoch
/// attempts undone by the divergence guard's rollback are not recorded
/// here (their time still counts in the [`TrainReport`] phase totals).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochStats {
    /// Epoch number (resumes continue the count from the checkpoint).
    pub epoch: usize,
    /// Summed training loss over all tasks.
    pub train_loss: f32,
    /// Summed validation loss over all tasks.
    pub val_loss: f32,
    /// Global L2 gradient norm before clipping.
    pub grad_norm: f64,
    /// Workspace allocation misses during the epoch. With the optimized
    /// hot path every epoch after the first reports 0.
    pub allocs: u64,
    /// Wall-clock seconds of the whole epoch.
    pub seconds: f64,
    /// Seconds in the forward passes (training + validation).
    pub forward_s: f64,
    /// Seconds in the backward pass.
    pub backward_s: f64,
    /// Seconds in the optimizer step plus tape reset.
    pub optim_s: f64,
    /// Directed edges kept by the epoch's neighbor sample (0 when training
    /// full-batch — the sampler is off and every edge participates).
    pub sampled_edges: u64,
}

/// Outcome of one training run: a run summary plus per-epoch stats.
///
/// The report is equivalently computable from a recorded event stream —
/// [`TrainReport::from_events`] on the events of a run reproduces the
/// aggregate fields bit-for-bit (free-text payloads such as I/O error
/// messages carry placeholders, since events hold no strings).
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Epochs actually executed (in this process — excludes epochs replayed
    /// from a resumed checkpoint).
    pub epochs_run: usize,
    /// Per-epoch statistics for every completed epoch, in order.
    pub epochs: Vec<EpochStats>,
    /// Whether early stopping fired before `max_epochs`.
    pub early_stopped: bool,
    /// Wall-clock seconds of training, plus every imputation pass made
    /// through the same fitted model.
    pub seconds: f64,
    /// Seconds in forward passes, including rolled-back epoch attempts.
    pub forward_s: f64,
    /// Seconds in backward passes, including rolled-back epoch attempts.
    pub backward_s: f64,
    /// Seconds in optimizer steps plus tape resets, including rolled-back
    /// epoch attempts.
    pub optim_s: f64,
    /// Scalar parameters actually allocated on the tape.
    pub n_weights: usize,
    /// Number of epochs on which gradient clipping rescaled the gradients.
    pub clip_activations: usize,
    /// Divergences detected by the per-epoch guard, in detection order.
    pub anomalies: Vec<TrainAnomaly>,
    /// Rollback recoveries consumed by this run.
    pub recoveries: usize,
    /// Serialized size of the final training checkpoint, in bytes.
    pub checkpoint_bytes: usize,
    /// Whether the run exhausted `max_recoveries` and fell back to the
    /// mode/mean baseline imputer.
    pub degraded_to_baseline: bool,
    /// Final degradation-ladder tier of every column, in schema order.
    pub column_tiers: Vec<ColumnTier>,
    /// Epoch count restored from a disk checkpoint, when resuming.
    pub resumed_from_epoch: Option<usize>,
    /// Non-fatal checkpoint I/O problems (failed resume or write). Training
    /// continues; the messages are surfaced here for observability.
    pub io_errors: Vec<String>,
    /// Whether training stopped because the wall-clock deadline
    /// (`deadline_secs`) expired before `max_epochs`/`patience` did.
    pub deadline_hit: bool,
    /// Whether training stopped because a shutdown (Ctrl-C) was requested.
    pub interrupted: bool,
    /// The epoch count at which a deadline or interrupt stopped training
    /// (equals the number of epochs whose results were kept).
    pub stopped_at_epoch: Option<usize>,
    /// Admission-time memory-governor decisions, in the order taken.
    /// Empty when the estimated footprint fit `memory_budget_mb` (or no
    /// budget was set).
    pub downscales: Vec<DownscaleDecision>,
    /// Whether checkpoint writing was disabled mid-run after repeated
    /// persistent I/O failures (training continued checkpoint-less).
    pub checkpoints_disabled: bool,
    /// Thread count of the kernel backend the fit ran on (1 for the serial
    /// backend; results are bit-identical across backends by contract).
    pub backend_threads: usize,
    /// Stale checkpoint-directory locks (left by dead processes) reclaimed
    /// while acquiring the directory for this fit.
    pub locks_reclaimed: usize,
    /// Torn (partial) trailing trace lines skipped while replaying a JSONL
    /// trace (see [`TrainReport::from_jsonl`]) — a crash mid-write leaves
    /// exactly one behind. Always 0 for live reports.
    pub torn_trace_lines: usize,
    /// `batch_rows` of the neighbor sampler the run trained with, whether
    /// user-configured or applied by the memory governor's sampling rung.
    /// `None` for full-batch runs.
    pub sampler_batch_rows: Option<usize>,
    /// `fanout` of the neighbor sampler, when sampling was active.
    pub sampler_fanout: Option<usize>,
    /// Relative validation-loss regression measured by the post-fine-tune
    /// drift check (`(last - best) / best`). `None` when no drift check
    /// ran (plain fits, refits).
    pub drift: Option<f64>,
    /// Whether the drift check found the regression beyond the configured
    /// `drift_band`, scheduling a full refit for the next append.
    pub refit_scheduled: bool,
}

impl TrainReport {
    /// Number of anomalies the divergence guard detected.
    pub fn anomalies_detected(&self) -> usize {
        self.anomalies.len()
    }

    /// Per-epoch summed training loss (accessor over [`TrainReport::epochs`];
    /// replaces the former `train_losses` field).
    pub fn train_losses(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.train_loss).collect()
    }

    /// Per-epoch summed validation loss (replaces the former `val_losses`
    /// field).
    pub fn val_losses(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.val_loss).collect()
    }

    /// Global L2 gradient norm per completed epoch (replaces the former
    /// `grad_norms` field).
    pub fn grad_norms(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.grad_norm).collect()
    }

    /// Per-epoch workspace allocation counts (replaces the former
    /// `epoch_allocs` field). With the optimized hot path every entry after
    /// the first is 0.
    pub fn epoch_allocs(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.allocs).collect()
    }

    /// Append the stats of one completed epoch and bump `epochs_run`.
    pub fn push_epoch(&mut self, stats: EpochStats) {
        self.epochs.push(stats);
        self.epochs_run += 1;
    }

    /// Reconstruct a report from a JSONL trace file's text, tolerating the
    /// torn trailing line a crash mid-write leaves behind: the partial
    /// record is skipped and counted in
    /// [`torn_trace_lines`](TrainReport::torn_trace_lines) instead of
    /// failing the replay.
    ///
    /// # Errors
    /// [`grimp_obs::ReplayError`] on a malformed line *before* the trailing
    /// one — that is corruption, not a torn write.
    pub fn from_jsonl(text: &str) -> Result<TrainReport, grimp_obs::ReplayError> {
        let replay = grimp_obs::read_jsonl(text)?;
        let mut report = TrainReport::from_events(&replay.events);
        report.torn_trace_lines = replay.torn_lines;
        Ok(report)
    }

    /// Reconstruct a report from a recorded event stream (see
    /// [`grimp_obs::names`] for the event vocabulary).
    ///
    /// The scan mirrors the emission protocol of the training loop:
    /// forward/backward/optim span exits accumulate into both the run
    /// totals and a pending-attempt buffer; an `epoch` span exit commits
    /// the pending attempt as a completed [`EpochStats`]; an
    /// `epoch_rollback` span exit discards it. Aggregates come out
    /// bit-identical to the live report because the trace carries the very
    /// same measured values, summed in the same order. String payloads
    /// (I/O error messages, anomaly loss values) are not recorded in
    /// events, so those fields hold placeholders.
    pub fn from_events(events: &[Event]) -> TrainReport {
        use grimp_obs::names;

        let mut report = TrainReport::default();
        let mut pending = EpochStats::default();
        let mut att_forward = 0.0f64;
        let mut att_backward = 0.0f64;
        let mut att_optim = 0.0f64;
        for e in events {
            match (e.kind, e.name) {
                (EventKind::SpanExit, names::FORWARD) => {
                    report.forward_s += e.value;
                    att_forward += e.value;
                }
                (EventKind::SpanExit, names::BACKWARD) => {
                    report.backward_s += e.value;
                    att_backward += e.value;
                }
                (EventKind::SpanExit, names::OPTIM) | (EventKind::SpanExit, names::TAPE_RESET) => {
                    report.optim_s += e.value;
                    att_optim += e.value;
                }
                (EventKind::Metric, names::TRAIN_LOSS) => pending.train_loss = e.value as f32,
                (EventKind::Metric, names::VAL_LOSS) => pending.val_loss = e.value as f32,
                (EventKind::Metric, names::GRAD_NORM) => pending.grad_norm = e.value,
                (EventKind::Counter, names::EPOCH_ALLOCS) => pending.allocs = e.value as u64,
                (EventKind::Counter, names::SAMPLED_EDGES) => {
                    pending.sampled_edges = e.value as u64
                }
                (EventKind::Counter, names::BATCH_ROWS) => {
                    report.sampler_batch_rows = Some(e.value as usize)
                }
                (EventKind::Counter, names::FANOUT) => {
                    report.sampler_fanout = Some(e.value as usize)
                }
                (EventKind::SpanExit, names::EPOCH) => {
                    pending.epoch = e.index as usize;
                    pending.seconds = e.value;
                    pending.forward_s = att_forward;
                    pending.backward_s = att_backward;
                    pending.optim_s = att_optim;
                    report.push_epoch(pending);
                    pending = EpochStats::default();
                    (att_forward, att_backward, att_optim) = (0.0, 0.0, 0.0);
                }
                (EventKind::SpanExit, names::EPOCH_ROLLBACK) => {
                    pending = EpochStats::default();
                    (att_forward, att_backward, att_optim) = (0.0, 0.0, 0.0);
                }
                (EventKind::Counter, names::ANOMALY) => {
                    let epoch = e.index as usize;
                    // Codes 0..=2 are the run-level anomalies; 3 + column
                    // encodes a per-column task-loss divergence.
                    report.anomalies.push(match e.value as u64 {
                        0 => TrainAnomaly::NonFiniteLoss {
                            epoch,
                            train: f32::NAN,
                            val: f32::NAN,
                        },
                        1 => TrainAnomaly::NonFiniteGradient {
                            epoch,
                            norm: f64::NAN,
                        },
                        2 => TrainAnomaly::NonFiniteParameter { epoch },
                        code => TrainAnomaly::NonFiniteTaskLoss {
                            epoch,
                            column: (code - 3) as usize,
                        },
                    });
                }
                (EventKind::Counter, names::COLUMN_TIER) => {
                    let column = e.index as usize;
                    if report.column_tiers.len() <= column {
                        report.column_tiers.resize(column + 1, ColumnTier::Gnn);
                    }
                    report.column_tiers[column] = ColumnTier::from_code(e.value as u64);
                }
                (EventKind::Counter, names::RECOVERY) => report.recoveries = e.value as usize,
                (EventKind::Counter, names::GRAD_CLIP) => report.clip_activations += 1,
                (EventKind::Counter, names::N_WEIGHTS) => report.n_weights = e.value as usize,
                (EventKind::Counter, names::CHECKPOINT_BYTES) => {
                    report.checkpoint_bytes = e.value as usize
                }
                (EventKind::Counter, names::RESUME) => {
                    report.resumed_from_epoch = Some(e.index as usize)
                }
                (EventKind::Counter, names::IO_ERROR) => report
                    .io_errors
                    .push("io error (message in the live report only)".to_string()),
                (EventKind::Counter, names::EARLY_STOP) => report.early_stopped = true,
                (EventKind::Counter, names::DEGRADED) => report.degraded_to_baseline = true,
                (EventKind::Counter, names::DEADLINE_HIT) => {
                    report.deadline_hit = true;
                    report.stopped_at_epoch = Some(e.index as usize);
                }
                (EventKind::Counter, names::INTERRUPTED) => {
                    report.interrupted = true;
                    report.stopped_at_epoch = Some(e.index as usize);
                }
                (EventKind::Counter, names::DOWNSCALE) => {
                    report.downscales.push(DownscaleDecision {
                        rung: DownscaleRung::from_code(e.index),
                        value: e.value as u64,
                    });
                }
                (EventKind::Counter, names::CHECKPOINT_DISABLED) => {
                    report.checkpoints_disabled = true;
                }
                (EventKind::Counter, names::BACKEND) => {
                    report.backend_threads = e.value as usize;
                }
                (EventKind::Counter, names::LOCK_RECLAIMED) => {
                    report.locks_reclaimed += 1;
                }
                (EventKind::Metric, names::DRIFT) => report.drift = Some(e.value),
                (EventKind::Counter, names::REFIT_SCHEDULED) => {
                    report.refit_scheduled = true;
                }
                // `seconds` accumulates in encounter order — the fit span
                // exits before any impute span, matching the live order of
                // assignment (fit sets `seconds`, each imputation adds).
                (EventKind::SpanExit, names::FIT) | (EventKind::SpanExit, names::IMPUTE) => {
                    report.seconds += e.value
                }
                _ => {}
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_obs::{names, MemorySink, Trace};

    #[test]
    fn accessors_project_the_epoch_stats() {
        let mut report = TrainReport::default();
        report.push_epoch(EpochStats {
            epoch: 0,
            train_loss: 2.0,
            val_loss: 1.5,
            grad_norm: 0.25,
            allocs: 100,
            ..Default::default()
        });
        report.push_epoch(EpochStats {
            epoch: 1,
            train_loss: 1.0,
            val_loss: 0.75,
            grad_norm: 0.125,
            allocs: 0,
            ..Default::default()
        });
        assert_eq!(report.epochs_run, 2);
        assert_eq!(report.train_losses(), vec![2.0, 1.0]);
        assert_eq!(report.val_losses(), vec![1.5, 0.75]);
        assert_eq!(report.grad_norms(), vec![0.25, 0.125]);
        assert_eq!(report.epoch_allocs(), vec![100, 0]);
    }

    #[test]
    fn from_events_reconstructs_epochs_and_discards_rollbacks() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            let fit = trace.enter(names::FIT, 0);
            trace.counter(names::N_WEIGHTS, 0, 500);

            // A rolled-back attempt at epoch 0.
            let ep = trace.enter(names::EPOCH, 0);
            let f = trace.enter(names::FORWARD, 0);
            trace.exit_with(names::FORWARD, 0, f, 0.5);
            let r = trace.enter(names::TAPE_RESET, 0);
            trace.exit_with(names::TAPE_RESET, 0, r, 0.01);
            trace.counter(names::ANOMALY, 0, 0);
            trace.counter(names::RECOVERY, 0, 1);
            trace.exit_with(names::EPOCH_ROLLBACK, 0, ep, 0.6);

            // A completed retry of epoch 0.
            let ep = trace.enter(names::EPOCH, 0);
            let f = trace.enter(names::FORWARD, 0);
            trace.exit_with(names::FORWARD, 0, f, 0.25);
            let b = trace.enter(names::BACKWARD, 0);
            trace.exit_with(names::BACKWARD, 0, b, 0.125);
            let o = trace.enter(names::OPTIM, 0);
            trace.exit_with(names::OPTIM, 0, o, 0.0625);
            let r = trace.enter(names::TAPE_RESET, 0);
            trace.exit_with(names::TAPE_RESET, 0, r, 0.03125);
            trace.metric(names::TRAIN_LOSS, 0, 2.5);
            trace.metric(names::VAL_LOSS, 0, 1.25);
            trace.metric(names::GRAD_NORM, 0, 0.5);
            trace.counter(names::EPOCH_ALLOCS, 0, 7);
            trace.exit_with(names::EPOCH, 0, ep, 0.5);

            trace.counter(names::EARLY_STOP, 1, 1);
            trace.counter(names::CHECKPOINT_BYTES, 0, 4096);
            trace.exit_with(names::FIT, 0, fit, 2.0);
            let imp = trace.enter(names::IMPUTE, 0);
            trace.exit_with(names::IMPUTE, 0, imp, 0.25);
        }
        let report = TrainReport::from_events(sink.events());
        assert_eq!(report.epochs_run, 1);
        assert_eq!(report.epochs.len(), 1);
        let e = report.epochs[0];
        assert_eq!(e.epoch, 0);
        assert_eq!(e.train_loss, 2.5);
        assert_eq!(e.val_loss, 1.25);
        assert_eq!(e.grad_norm, 0.5);
        assert_eq!(e.allocs, 7);
        assert_eq!(e.seconds, 0.5);
        assert_eq!(e.forward_s, 0.25, "rollback forward time not attributed");
        assert_eq!(e.backward_s, 0.125);
        assert_eq!(e.optim_s, 0.0625 + 0.03125);
        // Run totals DO include the rolled-back attempt.
        assert_eq!(report.forward_s, 0.5 + 0.25);
        assert_eq!(report.optim_s, 0.01 + 0.0625 + 0.03125);
        assert_eq!(report.anomalies_detected(), 1);
        assert!(matches!(
            report.anomalies[0],
            TrainAnomaly::NonFiniteLoss { epoch: 0, .. }
        ));
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.n_weights, 500);
        assert_eq!(report.checkpoint_bytes, 4096);
        assert!(report.early_stopped);
        assert_eq!(report.seconds, 0.25 + 2.0);
        assert!(!report.degraded_to_baseline);
        assert!(report.resumed_from_epoch.is_none());
        assert!(!report.deadline_hit);
        assert!(!report.interrupted);
        assert!(report.stopped_at_epoch.is_none());
        assert!(report.downscales.is_empty());
        assert!(!report.checkpoints_disabled);
    }

    #[test]
    fn from_events_replays_the_governance_counters() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::MEM_ESTIMATE, 0, 1 << 20);
            trace.counter(names::DOWNSCALE, 0, 128); // cap -> 128
            trace.counter(names::DOWNSCALE, 1, 16); // hidden -> 16
            trace.counter(names::CHECKPOINT_DISABLED, 2, 1);
            trace.counter(names::DEADLINE_HIT, 3, 1);
        }
        let report = TrainReport::from_events(sink.events());
        assert!(report.deadline_hit);
        assert!(!report.interrupted);
        assert_eq!(report.stopped_at_epoch, Some(3));
        assert!(report.checkpoints_disabled);
        assert_eq!(
            report.downscales,
            vec![
                DownscaleDecision {
                    rung: DownscaleRung::ValueNodeCap,
                    value: 128,
                },
                DownscaleDecision {
                    rung: DownscaleRung::HiddenDims,
                    value: 16,
                },
            ]
        );
        assert_eq!(report.downscales[0].to_string(), "value_node_cap -> 128");
    }

    #[test]
    fn from_events_replays_backend_and_lock_provenance() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::BACKEND, 1, 4); // parallel, 4 threads
            trace.counter(names::LOCK_RECLAIMED, 12345, 1);
        }
        let report = TrainReport::from_events(sink.events());
        assert_eq!(report.backend_threads, 4);
        assert_eq!(report.locks_reclaimed, 1);

        let fresh = TrainReport::default();
        assert_eq!(fresh.backend_threads, 0);
        assert_eq!(fresh.locks_reclaimed, 0);
    }

    #[test]
    fn from_jsonl_tolerates_a_torn_trailing_line() {
        // Record a two-epoch trace, then simulate a crash mid-write by
        // cutting the final line short: the committed epochs must replay
        // and the partial record must be skipped with a warning counter,
        // not an error.
        let mut sink = grimp_obs::JsonlSink::new(Vec::new());
        {
            let mut trace = Trace::new(&mut sink);
            for epoch in 0..2u64 {
                let span = trace.enter(names::EPOCH, epoch);
                trace.metric(names::TRAIN_LOSS, epoch, 1.0 / (epoch + 1) as f64);
                trace.metric(names::VAL_LOSS, epoch, 2.0);
                trace.exit_with(names::EPOCH, epoch, span, 0.25);
            }
            trace.counter(names::N_WEIGHTS, 0, 500);
        }
        let text = String::from_utf8(sink.into_inner().expect("no io errors")).expect("utf8 trace");

        let clean = TrainReport::from_jsonl(&text).expect("clean trace replays");
        assert_eq!(clean.epochs_run, 2);
        assert_eq!(clean.torn_trace_lines, 0);
        assert_eq!(clean.n_weights, 500);

        let mut torn = text.clone();
        torn.truncate(torn.len() - 15);
        let report = TrainReport::from_jsonl(&torn).expect("torn tail tolerated");
        assert_eq!(report.torn_trace_lines, 1);
        assert_eq!(report.epochs_run, 2, "committed epochs survive the tear");
        assert_eq!(report.n_weights, 0, "the torn record is skipped");

        // Corruption *before* the tail stays a hard error.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{\"t\":9,\"kind\":\"metr";
        assert!(TrainReport::from_jsonl(&lines.join("\n")).is_err());
    }

    #[test]
    fn downscale_rung_codes_round_trip() {
        for rung in [
            DownscaleRung::ValueNodeCap,
            DownscaleRung::HiddenDims,
            DownscaleRung::Sample,
        ] {
            assert_eq!(DownscaleRung::from_code(rung.code()), rung);
        }
        assert_eq!(DownscaleRung::from_code(99), DownscaleRung::Sample);
    }

    #[test]
    fn from_events_replays_the_sampler_counters() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::BATCH_ROWS, 0, 2048);
            trace.counter(names::FANOUT, 0, 8);
            trace.counter(names::DOWNSCALE, 2, 2048); // sample -> 2048
            for epoch in 0..2u64 {
                let span = trace.enter(names::EPOCH, epoch);
                trace.counter(names::SAMPLED_EDGES, epoch, 100 + epoch);
                trace.exit_with(names::EPOCH, epoch, span, 0.25);
            }
        }
        let report = TrainReport::from_events(sink.events());
        assert_eq!(report.sampler_batch_rows, Some(2048));
        assert_eq!(report.sampler_fanout, Some(8));
        assert_eq!(report.epochs[0].sampled_edges, 100);
        assert_eq!(report.epochs[1].sampled_edges, 101);
        assert_eq!(
            report.downscales,
            vec![DownscaleDecision {
                rung: DownscaleRung::Sample,
                value: 2048,
            }]
        );
        assert_eq!(report.downscales[0].to_string(), "sample -> 2048");

        let fresh = TrainReport::default();
        assert!(fresh.sampler_batch_rows.is_none());
        assert!(fresh.sampler_fanout.is_none());
    }

    #[test]
    fn from_events_replays_the_drift_check() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            trace.metric(names::DRIFT, 4, 0.5);
            trace.counter(names::REFIT_SCHEDULED, 4, 1);
        }
        let report = TrainReport::from_events(sink.events());
        assert_eq!(report.drift, Some(0.5));
        assert!(report.refit_scheduled);

        let fresh = TrainReport::default();
        assert!(fresh.drift.is_none());
        assert!(!fresh.refit_scheduled);
    }

    #[test]
    fn interrupted_counter_records_the_stop_epoch() {
        let mut sink = MemorySink::new();
        {
            let mut trace = Trace::new(&mut sink);
            trace.counter(names::INTERRUPTED, 5, 1);
        }
        let report = TrainReport::from_events(sink.events());
        assert!(report.interrupted);
        assert!(!report.deadline_hit);
        assert_eq!(report.stopped_at_epoch, Some(5));
    }
}

//! Typed training anomalies and the deterministic fault-injection harness.
//!
//! The divergence guard in [`crate::Grimp::fit_impute`] checks three things
//! every epoch — loss finiteness after the forward pass, gradient finiteness
//! (via the global gradient norm) after the backward pass, and parameter
//! finiteness after the optimizer step — and surfaces each violation as a
//! [`TrainAnomaly`] instead of letting NaNs silently poison every task head.
//!
//! [`FaultPlan`] is the test harness for that machinery: it corrupts a chosen
//! gradient or parameter at a chosen epoch so tests can prove the whole
//! detect → rollback → retry → converge pipeline end-to-end. It is
//! compiled only for this crate's unit tests and behind the
//! `fault-injection` cargo feature; production builds carry no injection
//! code path.

use std::fmt;

/// A divergence detected by the per-epoch training guard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrainAnomaly {
    /// The summed training or validation loss left the finite range.
    NonFiniteLoss {
        /// Epoch index (0-based) at which the check fired.
        epoch: usize,
        /// Summed training loss that epoch.
        train: f32,
        /// Summed validation loss that epoch.
        val: f32,
    },
    /// Some parameter gradient contained a non-finite element, observed as a
    /// non-finite global gradient norm.
    NonFiniteGradient {
        /// Epoch index at which the check fired.
        epoch: usize,
        /// The offending global L2 norm (`NaN` or `inf`).
        norm: f64,
    },
    /// Some trainable parameter value became non-finite after the optimizer
    /// step.
    NonFiniteParameter {
        /// Epoch index at which the check fired.
        epoch: usize,
    },
    /// One attribute's task loss left the finite range while the others
    /// stayed healthy. The per-column degradation ladder demotes only that
    /// column to its baseline tier; no rollback is triggered.
    NonFiniteTaskLoss {
        /// Epoch index at which the check fired.
        epoch: usize,
        /// Index of the diverging column/task.
        column: usize,
    },
}

impl TrainAnomaly {
    /// Epoch index at which the anomaly was detected.
    pub fn epoch(&self) -> usize {
        match *self {
            TrainAnomaly::NonFiniteLoss { epoch, .. }
            | TrainAnomaly::NonFiniteGradient { epoch, .. }
            | TrainAnomaly::NonFiniteParameter { epoch }
            | TrainAnomaly::NonFiniteTaskLoss { epoch, .. } => epoch,
        }
    }
}

impl fmt::Display for TrainAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainAnomaly::NonFiniteLoss { epoch, train, val } => write!(
                f,
                "epoch {epoch}: non-finite loss (train {train}, val {val})"
            ),
            TrainAnomaly::NonFiniteGradient { epoch, norm } => {
                write!(f, "epoch {epoch}: non-finite gradient norm ({norm})")
            }
            TrainAnomaly::NonFiniteParameter { epoch } => {
                write!(
                    f,
                    "epoch {epoch}: non-finite parameter after optimizer step"
                )
            }
            TrainAnomaly::NonFiniteTaskLoss { epoch, column } => {
                write!(
                    f,
                    "epoch {epoch}: non-finite task loss for column {column} \
                     (demoted to its baseline tier)"
                )
            }
        }
    }
}

/// What a [`FaultPlan`] corrupts.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one element of the first parameter gradient with `NaN`
    /// after the backward pass.
    GradNan,
    /// Overwrite one element of the first trainable parameter with `NaN`
    /// after the optimizer step.
    ParamNan,
    /// Poison the task loss of column `.0` with `NaN` after the forward
    /// pass, driving the per-column degradation ladder for exactly that
    /// column while every other task stays healthy.
    TaskLossNan(usize),
    /// Fail the next checkpoint save with an injected I/O error, exercising
    /// the save-time error path without touching the filesystem.
    CheckpointWrite,
}

/// A deterministic fault to inject during training: at epoch `at_epoch`
/// (0-based, counted over *attempted* epochs so a rolled-back epoch is hit
/// again on retry), corrupt state according to `kind`, up to `times` times
/// over the whole run.
///
/// With `times: 1` the retry after rollback runs clean and must converge;
/// with a large `times` every retry is re-poisoned until the recovery budget
/// is exhausted and the model degrades to the mode/mean baseline.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Epoch at which to inject.
    pub at_epoch: usize,
    /// Maximum number of injections across the run (retries included).
    pub times: usize,
    /// What to corrupt.
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomalies_render_their_epoch_and_cause() {
        let a = TrainAnomaly::NonFiniteLoss {
            epoch: 3,
            train: f32::NAN,
            val: 1.0,
        };
        assert_eq!(a.epoch(), 3);
        assert!(a.to_string().contains("epoch 3"));
        let g = TrainAnomaly::NonFiniteGradient {
            epoch: 7,
            norm: f64::INFINITY,
        };
        assert_eq!(g.epoch(), 7);
        assert!(g.to_string().contains("gradient"));
        let p = TrainAnomaly::NonFiniteParameter { epoch: 11 };
        assert_eq!(p.epoch(), 11);
        assert!(p.to_string().contains("parameter"));
    }
}

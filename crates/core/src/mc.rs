//! GNN-MC: the ablation of Fig. 10 with the GNN enabled but multi-task
//! learning disabled — a *single* multiclass classifier over the full domain
//! of the table (the design §3.5 argues against; implemented to measure how
//! much MTL buys).
//!
//! Every value of every attribute (numericals via their rounded keys) is one
//! global class. At imputation time the argmax is restricted to the target
//! attribute's slice, mirroring GRIMP's `Dom(A_i)` restriction.

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp_gnn::HeteroSage;
use grimp_graph::{build_features, TableGraph};
use grimp_table::{ColumnKind, Corpus, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

use crate::config::GrimpConfig;
use crate::report::TrainReport;
use crate::vectors::VectorBatch;

/// Global label space: one class per (attribute, value-key) pair.
pub struct GlobalDomain {
    /// Per column: its value keys in a fixed order.
    keys: Vec<Vec<String>>,
    /// Per column: starting offset into the global class space.
    offsets: Vec<usize>,
    /// Total number of classes.
    total: usize,
}

impl GlobalDomain {
    /// Build the global domain from a graph's cell nodes.
    pub fn build(graph: &TableGraph) -> Self {
        let n_cols = graph.n_edge_types();
        let mut keys: Vec<Vec<String>> = Vec::with_capacity(n_cols);
        let mut offsets = Vec::with_capacity(n_cols);
        let mut total = 0usize;
        for j in 0..n_cols {
            let mut col_keys: Vec<String> =
                graph.column_cells(j).map(|(k, _)| k.to_string()).collect();
            col_keys.sort_unstable();
            offsets.push(total);
            total += col_keys.len();
            keys.push(col_keys);
        }
        GlobalDomain {
            keys,
            offsets,
            total,
        }
    }

    /// Total number of global classes.
    pub fn n_classes(&self) -> usize {
        self.total
    }

    /// Global class index of `(column, key)`.
    pub fn class_of(&self, col: usize, key: &str) -> Option<u32> {
        self.keys[col]
            .binary_search_by(|k| k.as_str().cmp(key))
            .ok()
            .map(|i| (self.offsets[col] + i) as u32)
    }

    /// The `(start, end)` slice of global classes belonging to `column`.
    pub fn column_range(&self, col: usize) -> (usize, usize) {
        (self.offsets[col], self.offsets[col] + self.keys[col].len())
    }

    /// The value key of a global class inside `column`'s slice.
    pub fn key_of(&self, col: usize, class: usize) -> &str {
        &self.keys[col][class - self.offsets[col]]
    }
}

/// The GNN-MC ablation model.
pub struct GnnMc {
    config: GrimpConfig,
    last_report: Option<TrainReport>,
}

impl GnnMc {
    /// A GNN-MC model. Only the shared-layer fields of the config are used
    /// (task kind / K strategy do not apply).
    pub fn new(config: GrimpConfig) -> Self {
        GnnMc {
            config,
            last_report: None,
        }
    }

    /// The report of the most recent run.
    pub fn last_report(&self) -> Option<&TrainReport> {
        self.last_report.as_ref()
    }

    /// Train self-supervised and impute all missing values.
    pub fn fit_impute(&mut self, dirty: &Table) -> Table {
        let start = Instant::now();
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let corpus = Corpus::build(&norm, cfg.validation_fraction, &mut rng);
        let excluded: Vec<(usize, usize)> = corpus
            .validation_flat()
            .map(|s| (s.row, s.target_col))
            .collect();
        let graph = TableGraph::build(&norm, cfg.graph, &excluded);
        let domain = GlobalDomain::build(&graph);
        let features = build_features(
            &graph,
            &norm,
            cfg.features,
            cfg.feature_dim,
            &cfg.embdi,
            &mut rng,
        );
        let feature_tensor = Tensor::from_vec(
            graph.n_nodes(),
            cfg.feature_dim,
            features.node_matrix.clone(),
        );

        let n_cols = norm.n_columns();
        let mut tape = Tape::new();
        let gnn = HeteroSage::new(&mut tape, &graph, cfg.feature_dim, cfg.gnn, &mut rng);
        let merge = Mlp::new(
            &mut tape,
            &[cfg.gnn.hidden, cfg.merge_hidden, cfg.embed_dim],
            &mut rng,
        );
        let classifier = Mlp::new(
            &mut tape,
            &[
                n_cols * cfg.embed_dim,
                cfg.merge_hidden,
                domain.n_classes().max(1),
            ],
            &mut rng,
        );
        tape.freeze();
        let n_weights = tape.total_param_elems();
        let mut adam = Adam::new(cfg.lr);

        // One flat sample list; labels in the global class space.
        let collect = |buckets: &[Vec<grimp_table::TrainingSample>]| {
            let mut positions = Vec::new();
            let mut labels = Vec::new();
            for bucket in buckets {
                for s in bucket {
                    let key = grimp_graph::value_key(
                        &norm,
                        s.row,
                        s.target_col,
                        cfg.graph.numeric_decimals,
                    )
                    .expect("training sample labels are non-null");
                    if let Some(class) = domain.class_of(s.target_col, &key) {
                        positions.push((s.row, s.target_col));
                        labels.push(class);
                    }
                }
            }
            (positions, labels)
        };
        let (mut train_pos, mut train_labels) = collect(&corpus.train);
        if let Some(cap) = cfg.max_train_samples_per_task {
            // the MC model has one "task": scale the cap by column count
            let cap = cap * n_cols;
            train_pos.truncate(cap);
            train_labels.truncate(cap);
        }
        let (val_pos, val_labels) = collect(&corpus.validation);
        let train_batch = VectorBatch::build(&graph, &norm, &train_pos, cfg.embed_dim);
        let val_batch = VectorBatch::build(&graph, &norm, &val_pos, cfg.embed_dim);
        let train_labels = Rc::new(train_labels);
        let val_labels = Rc::new(val_labels);

        let mut report = TrainReport {
            n_weights,
            ..Default::default()
        };
        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;
        if !train_batch.is_empty() && domain.n_classes() > 0 {
            for _epoch in 0..cfg.max_epochs {
                let x = tape.input(feature_tensor.clone());
                let h0 = gnn.forward(&mut tape, x);
                let h = merge.forward(&mut tape, h0);

                let logits = mc_forward(&mut tape, &classifier, h, &train_batch);
                let loss = tape.softmax_cross_entropy(logits, Rc::clone(&train_labels));
                let train_total = tape.value(loss).item();
                let val_total = if val_batch.is_empty() {
                    train_total
                } else {
                    let vl = mc_forward(&mut tape, &classifier, h, &val_batch);
                    let v = tape.softmax_cross_entropy(vl, Rc::clone(&val_labels));
                    tape.value(v).item()
                };
                tape.backward(loss);
                adam.step(&mut tape);
                tape.reset();

                report.push_epoch(crate::report::EpochStats {
                    epoch: report.epochs.len(),
                    train_loss: train_total,
                    val_loss: val_total,
                    ..Default::default()
                });
                if val_total + 1e-5 < best_val {
                    best_val = val_total;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= cfg.patience {
                        report.early_stopped = true;
                        break;
                    }
                }
            }
        }

        // Imputation: argmax restricted to the target column's class slice.
        let mut result = dirty.clone();
        let missing = norm.missing_cells();
        if !missing.is_empty() && domain.n_classes() > 0 {
            let x = tape.input(feature_tensor.clone());
            let h0 = gnn.forward(&mut tape, x);
            let h = merge.forward(&mut tape, h0);
            let batch = VectorBatch::build(&graph, &norm, &missing, cfg.embed_dim);
            let out = mc_forward(&mut tape, &classifier, h, &batch);
            let out_t = tape.value(out).clone();
            for (s, &(i, j)) in missing.iter().enumerate() {
                let (lo, hi) = domain.column_range(j);
                if lo == hi {
                    continue;
                }
                let row = out_t.row_slice(s);
                let best = (lo..hi)
                    .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                    .expect("non-empty column range");
                let key = domain.key_of(j, best);
                match norm.schema().column(j).kind {
                    ColumnKind::Categorical => {
                        let code = result.intern(j, key);
                        result.set(i, j, Value::Cat(code));
                    }
                    ColumnKind::Numerical => {
                        let z: f64 = key.parse().expect("numeric keys parse back");
                        result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                    }
                }
            }
            tape.reset();
        }
        report.seconds = start.elapsed().as_secs_f64();
        self.last_report = Some(report);
        result
    }
}

fn mc_forward(
    tape: &mut Tape,
    classifier: &Mlp,
    h: grimp_tensor::Var,
    batch: &VectorBatch,
) -> grimp_tensor::Var {
    let v = tape.gather_rows(h, Rc::clone(&batch.idx));
    let mask = tape.input(batch.mask.clone());
    let v = tape.mul_elem(v, mask);
    let flat = tape.reshape(v, batch.n, batch.n_cols * batch.dim);
    classifier.forward(tape, flat)
}

impl Imputer for GnnMc {
    fn name(&self) -> &str {
        "GNN-MC"
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        self.fit_impute(dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_graph::{FeatureSource, GraphConfig};
    use grimp_table::{check_imputation_contract, inject_mcar, ColumnKind, Schema};

    fn config() -> GrimpConfig {
        GrimpConfig {
            features: FeatureSource::FastText,
            feature_dim: 16,
            gnn: grimp_gnn::GnnConfig {
                layers: 2,
                hidden: 16,
                ..Default::default()
            },
            merge_hidden: 32,
            embed_dim: 16,
            max_epochs: 60,
            patience: 10,
            lr: 2e-2,
            seed: 3,
            ..GrimpConfig::paper()
        }
    }

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            t.push_str_row(&[Some(&a), Some(&b)]);
        }
        t
    }

    #[test]
    fn global_domain_indexes_every_value_once() {
        let t = functional_table(9);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let d = GlobalDomain::build(&g);
        assert_eq!(d.n_classes(), 6);
        let (lo, hi) = d.column_range(1);
        assert_eq!(hi - lo, 3);
        let class = d.class_of(1, "b2").unwrap() as usize;
        assert!((lo..hi).contains(&class));
        assert_eq!(d.key_of(1, class), "b2");
        assert_eq!(d.class_of(0, "b2"), None, "keys are column-scoped");
    }

    #[test]
    fn gnn_mc_imputes_and_respects_contract() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut model = GnnMc::new(config());
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        // functional table: should beat random (1/3)
        let correct = log
            .cells
            .iter()
            .filter(|c| {
                imputed.display(c.row, c.col)
                    == match c.truth {
                        Value::Cat(code) => clean.dictionary(c.col)[code as usize].clone(),
                        _ => unreachable!(),
                    }
            })
            .count();
        assert!(correct as f64 / log.len() as f64 > 0.5);
    }

    #[test]
    fn imputed_values_stay_in_column_domain() {
        let clean = functional_table(30);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(2));
        let mut model = GnnMc::new(config());
        let imputed = model.fit_impute(&dirty);
        for (i, j) in dirty.missing_cells() {
            let v = imputed.display(i, j);
            assert!(
                v.starts_with(if j == 0 { "a" } else { "b" }),
                "leaked value {v} into col {j}"
            );
        }
    }
}

//! Federated imputation prototype (paper §7, future work #5: "in settings
//! where data privacy is an issue, we see GRIMP as a step that can lead to
//! novel solutions for federated imputation").
//!
//! Simulates `K` parties holding disjoint row shards of one table. Each
//! party trains a *local* GRIMP on its shard (its own graph, features and
//! self-supervised corpus — raw rows never leave the party); every round,
//! only the **model parameters** are averaged across parties (FedAvg,
//! McMahan et al. 2017) and broadcast back. After the final round each
//! party imputes its own shard and the shards are reassembled.
//!
//! Simulation simplifications (documented, inherent to an offline
//! prototype): the parties share the schema and the categorical label
//! vocabularies (in a real deployment this is an agreed codebook — values,
//! not records), and the shard split is round-robin. Optimizer state stays
//! local; only weights are communicated.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grimp_gnn::HeteroSage;
use grimp_graph::{build_features, TableGraph};
use grimp_table::{ColumnKind, Corpus, FdSet, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor, Var};

use crate::config::{CategoricalLoss, GrimpConfig};
use crate::tasks::Task;
use crate::vectors::VectorBatch;

/// Federation options.
#[derive(Clone, Debug)]
pub struct FederatedConfig {
    /// Number of parties `K`.
    pub parties: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs per round `E`.
    pub local_epochs: usize,
    /// The per-party GRIMP configuration (its `max_epochs`/`patience` are
    /// ignored; `rounds × local_epochs` governs training).
    pub base: GrimpConfig,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        FederatedConfig {
            parties: 3,
            rounds: 8,
            local_epochs: 5,
            base: GrimpConfig::fast(),
        }
    }
}

/// Outcome of a federated run.
#[derive(Clone, Debug, Default)]
pub struct FederatedReport {
    /// Rounds executed.
    pub rounds_run: usize,
    /// Mean local training loss per round (averaged over parties).
    pub round_losses: Vec<f32>,
    /// Scalar parameters exchanged per round (weights of one model).
    pub params_per_round: usize,
}

/// One party's local state: shard data, graph, model, optimizer.
struct Party {
    /// Original row indices of this shard.
    rows: Vec<usize>,
    shard: Table,
    graph: TableGraph,
    feature_tensor: Tensor,
    tape: Tape,
    gnn: HeteroSage,
    merge: Mlp,
    tasks: Vec<Task>,
    adam: Adam,
    batches: Vec<Option<(VectorBatch, Labels)>>,
}

enum Labels {
    Cat(Rc<Vec<u32>>),
    Num(Rc<Vec<f32>>),
}

/// The federated GRIMP coordinator.
pub struct FederatedGrimp {
    config: FederatedConfig,
    fds: FdSet,
    last_report: Option<FederatedReport>,
}

/// Clone a table's schema and dictionaries without any rows, so shard
/// tables share categorical codes with the source.
fn empty_with_dictionaries(source: &Table) -> Table {
    let mut out = Table::empty(source.schema().clone());
    for j in 0..source.n_columns() {
        if source.schema().column(j).kind == ColumnKind::Categorical {
            for value in source.dictionary(j) {
                out.intern(j, value);
            }
        }
    }
    out
}

impl FederatedGrimp {
    /// A federated coordinator without FDs.
    pub fn new(config: FederatedConfig) -> Self {
        assert!(config.parties >= 2, "federation needs at least two parties");
        FederatedGrimp {
            config,
            fds: FdSet::empty(),
            last_report: None,
        }
    }

    /// The report of the most recent run.
    pub fn last_report(&self) -> Option<&FederatedReport> {
        self.last_report.as_ref()
    }

    /// Split, train federated, impute shards, reassemble.
    pub fn fit_impute(&mut self, dirty: &Table) -> Table {
        let cfg = &self.config;
        let base = &cfg.base;

        // Global normalization statistics (in deployment: securely
        // aggregated moments — scalar statistics, not records).
        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        // Round-robin shard split.
        let mut parties: Vec<Party> = Vec::with_capacity(cfg.parties);
        for p in 0..cfg.parties {
            let rows: Vec<usize> = (p..norm.n_rows()).step_by(cfg.parties).collect();
            let mut shard = empty_with_dictionaries(&norm);
            for &i in &rows {
                let row: Vec<Value> = (0..norm.n_columns()).map(|j| norm.get(i, j)).collect();
                shard.push_value_row(&row);
            }
            // identical seeds → identical initial weights on every party
            let mut rng = StdRng::seed_from_u64(base.seed);
            let corpus = Corpus::build(&shard, 0.0, &mut rng);
            let graph = TableGraph::build(&shard, base.graph, &[]);
            let features = build_features(
                &graph,
                &shard,
                base.features,
                base.feature_dim,
                &base.embdi,
                &mut rng,
            );
            let feature_tensor = Tensor::from_vec(
                graph.n_nodes(),
                base.feature_dim,
                features.node_matrix.clone(),
            );
            let mut tape = Tape::new();
            let gnn = HeteroSage::new(&mut tape, &graph, base.feature_dim, base.gnn, &mut rng);
            let merge = Mlp::new(
                &mut tape,
                &[base.gnn.hidden, base.merge_hidden, base.embed_dim],
                &mut rng,
            );
            let n_cols = shard.n_columns();
            let tasks: Vec<Task> = (0..n_cols)
                .map(|j| {
                    let out_dim = match shard.schema().column(j).kind {
                        // shared vocabulary: dictionary of the *global* table
                        ColumnKind::Categorical => shard.dictionary(j).len().max(1),
                        ColumnKind::Numerical => 1,
                    };
                    Task::new(
                        &mut tape,
                        base.task_kind,
                        n_cols,
                        base.embed_dim,
                        base.merge_hidden,
                        out_dim,
                        j,
                        base.k_strategy,
                        &self.fds,
                        None,
                        &mut rng,
                    )
                })
                .collect();
            tape.freeze();
            let batches = (0..n_cols)
                .map(|j| {
                    let samples = &corpus.train[j];
                    if samples.is_empty() {
                        return None;
                    }
                    let positions: Vec<(usize, usize)> =
                        samples.iter().map(|s| (s.row, s.target_col)).collect();
                    let batch = VectorBatch::build(&graph, &shard, &positions, base.embed_dim);
                    let labels = match shard.schema().column(j).kind {
                        ColumnKind::Categorical => Labels::Cat(Rc::new(
                            samples
                                .iter()
                                .map(|s| s.label.as_cat().expect("cat"))
                                .collect(),
                        )),
                        ColumnKind::Numerical => Labels::Num(Rc::new(
                            samples
                                .iter()
                                .map(|s| s.label.as_num().expect("num") as f32)
                                .collect(),
                        )),
                    };
                    Some((batch, labels))
                })
                .collect();
            parties.push(Party {
                rows,
                shard,
                graph,
                feature_tensor,
                tape,
                gnn,
                merge,
                tasks,
                adam: Adam::new(base.lr),
                batches,
            });
        }

        let n_params = parties[0].tape.param_count();
        for party in &parties {
            assert_eq!(
                party.tape.param_count(),
                n_params,
                "parties must have identical parameter layouts"
            );
        }

        // FedAvg rounds.
        let mut report = FederatedReport {
            params_per_round: parties[0].tape.total_param_elems(),
            ..Default::default()
        };
        for _round in 0..cfg.rounds {
            let mut round_loss = 0.0f32;
            for party in &mut parties {
                for _ in 0..cfg.local_epochs {
                    round_loss += party.local_epoch(base) / cfg.local_epochs as f32;
                }
            }
            average_parameters(&mut parties, n_params);
            report.rounds_run += 1;
            report.round_losses.push(round_loss / cfg.parties as f32);
        }

        // Local imputation of each shard, merged back by original row ids.
        let mut result = dirty.clone();
        for party in &mut parties {
            let imputed_shard = party.impute_shard(base, &normalizer);
            for (local, &global) in party.rows.iter().enumerate() {
                for j in 0..result.n_columns() {
                    if result.is_missing(global, j) {
                        let v = imputed_shard.get(local, j);
                        if !v.is_null() {
                            result.set(global, j, v);
                        }
                    }
                }
            }
        }
        self.last_report = Some(report);
        result
    }
}

impl Party {
    /// One local epoch; returns the summed task loss.
    fn local_epoch(&mut self, base: &GrimpConfig) -> f32 {
        let x = self.tape.input(self.feature_tensor.clone());
        let h0 = self.gnn.forward(&mut self.tape, x);
        let h = self.merge.forward(&mut self.tape, h0);
        let mut losses = Vec::new();
        for (task, entry) in self.tasks.iter().zip(&self.batches) {
            let Some((batch, labels)) = entry else {
                continue;
            };
            let out = task.forward(&mut self.tape, h, batch);
            let loss = match labels {
                Labels::Cat(t) => match base.categorical_loss {
                    CategoricalLoss::CrossEntropy => {
                        self.tape.softmax_cross_entropy(out, Rc::clone(t))
                    }
                    CategoricalLoss::Focal(g) => self.tape.focal_loss(out, Rc::clone(t), g),
                },
                Labels::Num(t) => self.tape.mse_loss(out, Rc::clone(t)),
            };
            losses.push(loss);
        }
        if losses.is_empty() {
            self.tape.reset();
            return 0.0;
        }
        let total = self.tape.add_n(&losses);
        let value = self.tape.value(total).item();
        self.tape.backward(total);
        self.adam.step(&mut self.tape);
        self.tape.reset();
        value
    }

    /// Impute this shard's missing cells with the current (synced) model.
    fn impute_shard(&mut self, base: &GrimpConfig, normalizer: &Normalizer) -> Table {
        let mut result = self.shard.clone();
        let x = self.tape.input(self.feature_tensor.clone());
        let h0 = self.gnn.forward(&mut self.tape, x);
        let h = self.merge.forward(&mut self.tape, h0);
        for j in 0..self.shard.n_columns() {
            let missing: Vec<(usize, usize)> = (0..self.shard.n_rows())
                .filter(|&i| self.shard.is_missing(i, j))
                .map(|i| (i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let batch = VectorBatch::build(&self.graph, &self.shard, &missing, base.embed_dim);
            let out = self.tasks[j].forward(&mut self.tape, h, &batch);
            let out_t = self.tape.value(out).clone();
            match self.shard.schema().column(j).kind {
                ColumnKind::Categorical => {
                    if self.shard.dictionary(j).is_empty() {
                        continue;
                    }
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let best = out_t
                            .row_slice(s)
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(k, _)| k as u32)
                            .expect("non-empty logits");
                        result.set(i, j, Value::Cat(best));
                    }
                }
                ColumnKind::Numerical => {
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        // de-normalize: z in normalized space → raw
                        let z = f64::from(out_t.get(s, 0));
                        result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                    }
                }
            }
        }
        self.tape.reset();
        result
    }
}

/// FedAvg: elementwise mean of every parameter across parties, broadcast
/// back to every party.
fn average_parameters(parties: &mut [Party], n_params: usize) {
    for p in 0..n_params {
        let var = Var::from_index(p);
        let (rows, cols) = parties[0].tape.value(var).shape();
        let mut mean = Tensor::zeros(rows, cols);
        for party in parties.iter() {
            mean.add_scaled(party.tape.value(var), 1.0 / parties.len() as f32);
        }
        for party in parties.iter_mut() {
            *party.tape.value_mut(var) = mean.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, ColumnKind, Schema};

    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            t.push_str_row(&[Some(&a), Some(&b)]);
        }
        t
    }

    fn fed_config() -> FederatedConfig {
        FederatedConfig {
            parties: 3,
            rounds: 6,
            local_epochs: 4,
            base: GrimpConfig {
                feature_dim: 8,
                gnn: grimp_gnn::GnnConfig {
                    layers: 1,
                    hidden: 8,
                    ..Default::default()
                },
                merge_hidden: 16,
                embed_dim: 8,
                lr: 2e-2,
                seed: 0,
                ..GrimpConfig::fast()
            },
        }
    }

    #[test]
    fn federated_imputation_learns_the_shared_structure() {
        let clean = functional_table(90);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut fed = FederatedGrimp::new(fed_config());
        let imputed = fed.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let correct = log
            .cells
            .iter()
            .filter(|c| imputed.display(c.row, c.col) == clean.display(c.row, c.col))
            .count();
        let acc = correct as f64 / log.len().max(1) as f64;
        assert!(acc > 0.5, "federated accuracy {acc}");
        let report = fed.last_report().unwrap();
        assert_eq!(report.rounds_run, 6);
        assert!(report.params_per_round > 0);
        // losses trend downward over rounds
        assert!(
            report.round_losses.last().unwrap() < report.round_losses.first().unwrap(),
            "{:?}",
            report.round_losses
        );
    }

    #[test]
    fn shards_partition_all_rows() {
        let clean = functional_table(20);
        let cfg = fed_config();
        let mut seen = [false; 20];
        for p in 0..cfg.parties {
            for i in (p..20).step_by(cfg.parties) {
                assert!(!seen[i], "row {i} in two shards");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        drop(clean);
    }

    #[test]
    #[should_panic(expected = "at least two parties")]
    fn single_party_is_rejected() {
        FederatedGrimp::new(FederatedConfig {
            parties: 1,
            ..fed_config()
        });
    }

    #[test]
    fn dictionaries_are_shared_across_shards() {
        let clean = functional_table(30);
        let shard = empty_with_dictionaries(&clean);
        for j in 0..clean.n_columns() {
            assert_eq!(shard.dictionary(j), clean.dictionary(j));
        }
        assert_eq!(shard.n_rows(), 0);
    }
}

//! Hyperparameter selection (paper §7, future work #1: "we plan to
//! introduce hyperparameter tuning in the pipeline, so that GRIMP gets the
//! optimal configuration for each dataset").
//!
//! [`select_config`] runs a short *probe fit* for every candidate
//! configuration and picks the one with the lowest final validation loss —
//! the same self-supervised signal the training loop already early-stops
//! on, so no ground truth is needed. The probe uses a reduced epoch budget;
//! the winner is returned with its full budget restored.

use grimp_table::{FdSet, Table};

use crate::config::GrimpConfig;
use crate::model::Grimp;

/// One candidate's probe outcome.
#[derive(Clone, Debug)]
pub struct ProbeResult {
    /// Candidate label.
    pub name: String,
    /// Final validation loss of the probe fit (lower is better).
    pub val_loss: f32,
    /// Probe epochs actually run.
    pub epochs_run: usize,
    /// Probe wall-clock seconds.
    pub seconds: f64,
}

/// Tuning options.
#[derive(Clone, Copy, Debug)]
pub struct TunerConfig {
    /// Epoch cap of each probe fit.
    pub probe_epochs: usize,
    /// Patience of each probe fit.
    pub probe_patience: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            probe_epochs: 25,
            probe_patience: 6,
        }
    }
}

/// Probe every candidate on `dirty` and return the best configuration
/// (with its original epoch budget) plus the per-candidate report, sorted
/// best-first.
///
/// # Panics
/// Panics when `candidates` is empty.
pub fn select_config(
    dirty: &Table,
    fds: &FdSet,
    candidates: &[(String, GrimpConfig)],
    tuner: TunerConfig,
) -> (GrimpConfig, Vec<ProbeResult>) {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate configuration"
    );
    let mut results: Vec<(usize, ProbeResult)> = Vec::with_capacity(candidates.len());
    for (i, (name, config)) in candidates.iter().enumerate() {
        let probe_cfg = GrimpConfig {
            max_epochs: tuner.probe_epochs,
            patience: tuner.probe_patience,
            ..config.clone()
        };
        let mut model = Grimp::with_fds(probe_cfg, fds.clone());
        let _ = model.fit_impute(dirty);
        let report = model.last_report().expect("probe fit ran");
        let val_loss = report
            .val_losses()
            .into_iter()
            .fold(f32::INFINITY, f32::min);
        results.push((
            i,
            ProbeResult {
                name: name.clone(),
                val_loss,
                epochs_run: report.epochs_run,
                seconds: report.seconds,
            },
        ));
    }
    results.sort_by(|a, b| a.1.val_loss.total_cmp(&b.1.val_loss));
    let best = candidates[results[0].0].1.clone();
    (best, results.into_iter().map(|(_, r)| r).collect())
}

/// A reasonable default candidate grid around a base configuration:
/// attention vs linear heads and two learning rates.
pub fn default_candidates(base: &GrimpConfig) -> Vec<(String, GrimpConfig)> {
    vec![
        (
            "attention-lr1e2".into(),
            GrimpConfig {
                lr: 1e-2,
                ..base.clone()
            },
        ),
        (
            "attention-lr3e3".into(),
            GrimpConfig {
                lr: 3e-3,
                ..base.clone()
            },
        ),
        (
            "linear-lr1e2".into(),
            GrimpConfig {
                lr: 1e-2,
                ..base.clone()
            }
            .with_linear_tasks(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{inject_mcar, ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            t.push_str_row(&[Some(&a), Some(&b)]);
        }
        t
    }

    fn base() -> GrimpConfig {
        GrimpConfig {
            feature_dim: 8,
            gnn: grimp_gnn::GnnConfig {
                layers: 1,
                hidden: 8,
                ..Default::default()
            },
            merge_hidden: 16,
            embed_dim: 8,
            seed: 0,
            ..GrimpConfig::fast()
        }
    }

    #[test]
    fn selects_a_candidate_and_reports_all() {
        let mut dirty = table(60);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(0));
        let candidates = default_candidates(&base());
        let (best, results) = select_config(
            &dirty,
            &FdSet::empty(),
            &candidates,
            TunerConfig {
                probe_epochs: 8,
                probe_patience: 4,
            },
        );
        assert_eq!(results.len(), 3);
        // results sorted ascending by val loss
        assert!(results.windows(2).all(|w| w[0].val_loss <= w[1].val_loss));
        // best config keeps its own (non-probe) epoch budget
        assert_eq!(best.max_epochs, base().max_epochs);
        assert!(results
            .iter()
            .all(|r| r.epochs_run > 0 && r.epochs_run <= 8));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidate_list_is_rejected() {
        let dirty = table(10);
        select_config(&dirty, &FdSet::empty(), &[], TunerConfig::default());
    }
}

//! Parameter accounting using the paper's published formulas (§4.1).
//!
//! The paper reports, per dataset (Table 1):
//!
//! - `#P_s  = L_GNN · |C| · #P_GNN + L_Shared · #P_Lin` — shared parameters,
//! - `ΣP_l  = #P_s + |C| · #P_Lin · L_Lin` — totals with linear tasks,
//! - `ΣP_a  = #P_s + |C|³ + |C|² + 2 · #P_W` with `#P_W = #P_Lin · |C|` —
//!   totals with attention tasks,
//!
//! where `|C|` is the **number of columns** of the dataset (both kinds) and
//! the defaults are `L_GNN = L_Shared = L_Lin = 2`, `#P_GNN = 64`,
//! `#P_Lin = 128`. These are the paper's own accounting units (layer widths,
//! not raw weight counts); the actual number of allocated scalars is
//! reported separately by the model.

/// The published parameter-count formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamFormula {
    /// GNN layers (`L_GNN`).
    pub l_gnn: usize,
    /// Shared merge layers (`L_Shared`).
    pub l_shared: usize,
    /// Task-specific linear layers (`L_Lin`).
    pub l_lin: usize,
    /// Units per GNN layer (`#P_GNN`).
    pub p_gnn: usize,
    /// Units per linear layer (`#P_Lin`).
    pub p_lin: usize,
}

impl Default for ParamFormula {
    fn default() -> Self {
        ParamFormula {
            l_gnn: 2,
            l_shared: 2,
            l_lin: 2,
            p_gnn: 64,
            p_lin: 128,
        }
    }
}

/// The three published counts for one dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamCounts {
    /// Shared parameters `#P_s`.
    pub p_s: usize,
    /// Total with linear tasks `ΣP_l`.
    pub sigma_p_l: usize,
    /// Total with attention tasks `ΣP_a`.
    pub sigma_p_a: usize,
}

impl ParamFormula {
    /// Evaluate the formulas for a dataset with `n_cols` columns.
    pub fn counts(&self, n_cols: usize) -> ParamCounts {
        let c = n_cols;
        let p_s = self.l_gnn * c * self.p_gnn + self.l_shared * self.p_lin;
        let sigma_p_l = p_s + c * self.p_lin * self.l_lin;
        let p_w = self.p_lin * c;
        let sigma_p_a = p_s + c * c * c + c * c + 2 * p_w;
        ParamCounts {
            p_s,
            sigma_p_l,
            sigma_p_a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The (columns, #P_s, ΣP_l, ΣP_a) rows of the paper's Table 1.
    const TABLE_1: &[(&str, usize, usize, usize, usize)] = &[
        ("Adult", 14, 2048, 5632, 8572),
        ("Australian", 15, 2176, 6016, 9616),
        ("Contraceptive", 10, 1536, 4096, 5196),
        ("Credit", 16, 2304, 6400, 10752),
        ("Flare", 13, 1920, 5248, 7614),
        ("IMDB", 11, 1664, 4480, 5932),
        ("Mammogram", 6, 1024, 2560, 2812),
        ("Tax", 12, 1792, 4864, 6736),
        ("Thoracic", 17, 2432, 6784, 11986),
        ("Tic-Tac-Toe", 9, 1408, 3712, 4522),
    ];

    #[test]
    fn formulas_reproduce_every_row_of_table_1() {
        let f = ParamFormula::default();
        for &(name, cols, p_s, sigma_l, sigma_a) in TABLE_1 {
            let c = f.counts(cols);
            assert_eq!(c.p_s, p_s, "{name} #P_s");
            assert_eq!(c.sigma_p_l, sigma_l, "{name} ΣP_l");
            assert_eq!(c.sigma_p_a, sigma_a, "{name} ΣP_a");
        }
    }
}

//! The write-ahead append log (`grimp.wal`) behind crash-safe incremental
//! imputation.
//!
//! Appended rows are made durable *before* any model work starts: the rows
//! are encoded into a WAL segment — length-prefixed, CRC-32-per-record,
//! tagged with the checkpoint generation it was written against — and the
//! whole segment is published atomically (tmp + rename) through the
//! fault-injectable [`GrimpFs`] layer. A crash at any later point (during
//! fine-tuning, checkpoint rotation, or the final imputation) can then
//! replay the delta from the log and converge to the same state the
//! uninterrupted run would have reached.
//!
//! Recovery is torn-tail tolerant: a segment whose final record is
//! truncated or bit-flipped (e.g. written through a faulty disk) yields its
//! intact record prefix plus a `torn_tail` flag, and a segment whose header
//! is unreadable is reported as unusable rather than an error — the caller
//! falls back to the previous checkpoint generation cleanly. The segment is
//! rotated to `grimp.wal.applied` (another atomic rename) only after the
//! fine-tuned checkpoint generation is durable, which makes replay
//! idempotent: re-running recovery over an already-applied segment finds
//! the fine-tune target already reached and changes nothing.

use std::io;
use std::path::Path;

use grimp_obs::fs::atomic_write;
use grimp_obs::GrimpFs;

use crate::checkpoint::crc32;

/// File name of the pending append segment inside the checkpoint directory.
pub const WAL_FILE: &str = "grimp.wal";
/// File name a fully applied segment is rotated to (atomic rename), kept
/// for post-mortem inspection until the next append overwrites it.
pub const WAL_APPLIED_FILE: &str = "grimp.wal.applied";
/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"GRIMPWAL";
/// Format version of this module.
pub const WAL_VERSION: u32 = 1;

/// The checkpoint generation a WAL segment was written against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalBase {
    /// CRC-32 of the checkpoint file's bytes at append time (`0` when no
    /// checkpoint existed — the append then schedules a full fit).
    pub ckpt_crc: u32,
    /// Completed epochs of that checkpoint (`0` when none existed). The
    /// fine-tune target is `epoch + finetune.epochs`, so recovery after a
    /// mid-fine-tune crash knows how far to continue.
    pub epoch: u64,
}

/// One logged append row: per-column cells, `None` for `∅`.
pub type WalRow = Vec<Option<String>>;

/// A decoded WAL segment: the base generation plus every intact row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalSegment {
    /// Checkpoint generation the append targets.
    pub base: WalBase,
    /// Column count every row must match.
    pub n_columns: usize,
    /// The appended rows, in append order.
    pub rows: Vec<WalRow>,
}

/// Outcome of a torn-tolerant [`WalSegment::read`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRead {
    /// No segment file exists — nothing pending.
    Missing,
    /// The file exists but its header is unreadable (empty file, foreign
    /// magic, version from the future, or a corrupted header). The reason
    /// is carried for the report; the caller falls back to the current
    /// checkpoint generation and must not trust any of the file's content.
    Unusable(String),
    /// The header was intact; `segment` holds every record whose length and
    /// CRC checked out. `torn_tail` is set when trailing bytes had to be
    /// dropped (a torn final record from a crashed or faulted write).
    Segment {
        /// The decoded rows and base generation.
        segment: WalSegment,
        /// Whether a corrupt tail was discarded after the intact prefix.
        torn_tail: bool,
    },
}

/// Record-kind byte of an append row (the only kind in version 1).
const RECORD_ROW: u8 = 0;
/// Cell tag: `∅`.
const CELL_NULL: u8 = 0;
/// Cell tag: UTF-8 text follows.
const CELL_TEXT: u8 = 1;

impl WalSegment {
    /// A segment over `n_columns`-wide rows targeting `base`.
    pub fn new(base: WalBase, n_columns: usize) -> Self {
        WalSegment {
            base,
            n_columns,
            rows: Vec::new(),
        }
    }

    /// Serialize: header (magic, version, base generation, column count,
    /// header CRC) followed by one `[len][crc][payload]` record per row.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(WAL_MAGIC);
        let mut header = Vec::new();
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&self.base.ckpt_crc.to_le_bytes());
        header.extend_from_slice(&self.base.epoch.to_le_bytes());
        header.extend_from_slice(&(self.n_columns as u32).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&crc32(&header).to_le_bytes());
        for row in &self.rows {
            let payload = encode_row(row);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Publish the segment at `path` atomically (tmp + rename) through the
    /// run's IO layer: a crash or injected fault mid-write leaves either
    /// the previous segment or none, never a half-written one.
    ///
    /// # Errors
    /// Any IO error of the underlying write or rename.
    pub fn write(&self, fs: &mut dyn GrimpFs, path: &Path) -> io::Result<()> {
        atomic_write(fs, path, &self.to_bytes())
    }

    /// Read and decode the segment at `path`, torn-tail tolerant (see
    /// [`WalRead`]). Only a *read* IO error on an existing file is an
    /// `Err`; every corruption shape decodes to a usable-or-unusable
    /// verdict instead.
    ///
    /// # Errors
    /// The underlying read failure, when the file exists but cannot be
    /// read at all.
    pub fn read(fs: &mut dyn GrimpFs, path: &Path) -> io::Result<WalRead> {
        if !fs.exists(path) {
            return Ok(WalRead::Missing);
        }
        let bytes = fs.read(path)?;
        Ok(decode_segment(&bytes))
    }
}

/// Encode one row as a record payload.
fn encode_row(row: &WalRow) -> Vec<u8> {
    let mut payload = vec![RECORD_ROW];
    for cell in row {
        match cell {
            None => payload.push(CELL_NULL),
            Some(text) => {
                payload.push(CELL_TEXT);
                payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
                payload.extend_from_slice(text.as_bytes());
            }
        }
    }
    payload
}

/// Decode a record payload into a row of `n_columns` cells; `None` when
/// the payload is malformed (counts as a torn record).
fn decode_row(payload: &[u8], n_columns: usize) -> Option<WalRow> {
    let mut at = 0usize;
    if payload.get(at) != Some(&RECORD_ROW) {
        return None;
    }
    at += 1;
    let mut row = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        match *payload.get(at)? {
            CELL_NULL => {
                at += 1;
                row.push(None);
            }
            CELL_TEXT => {
                at += 1;
                let len = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let text = std::str::from_utf8(payload.get(at..at + len)?).ok()?;
                at += len;
                row.push(Some(text.to_string()));
            }
            _ => return None,
        }
    }
    (at == payload.len()).then_some(row)
}

/// Decode a whole segment file (header strictly, records torn-tolerant).
fn decode_segment(bytes: &[u8]) -> WalRead {
    if bytes.is_empty() {
        return WalRead::Unusable("empty append log".to_string());
    }
    let header_len = WAL_MAGIC.len() + 4 + 4 + 8 + 4 + 4;
    if bytes.len() < header_len {
        return WalRead::Unusable("truncated append-log header".to_string());
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalRead::Unusable("not an append log (bad magic)".to_string());
    }
    let header = &bytes[WAL_MAGIC.len()..header_len - 4];
    let stored_crc = u32::from_le_bytes(bytes[header_len - 4..header_len].try_into().expect("4"));
    if crc32(header) != stored_crc {
        return WalRead::Unusable("append-log header failed its CRC".to_string());
    }
    let version = u32::from_le_bytes(header[0..4].try_into().expect("4"));
    if version != WAL_VERSION {
        return WalRead::Unusable(format!("unsupported append-log version {version}"));
    }
    let base = WalBase {
        ckpt_crc: u32::from_le_bytes(header[4..8].try_into().expect("4")),
        epoch: u64::from_le_bytes(header[8..16].try_into().expect("8")),
    };
    let n_columns = u32::from_le_bytes(header[16..20].try_into().expect("4")) as usize;

    let mut segment = WalSegment::new(base, n_columns);
    let mut at = header_len;
    let mut torn_tail = false;
    while at < bytes.len() {
        let Some(frame) = bytes.get(at..at + 8) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4")) as usize;
        let rec_crc = u32::from_le_bytes(frame[4..8].try_into().expect("4"));
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            torn_tail = true;
            break;
        };
        if crc32(payload) != rec_crc {
            torn_tail = true;
            break;
        }
        let Some(row) = decode_row(payload, n_columns) else {
            torn_tail = true;
            break;
        };
        segment.rows.push(row);
        at += 8 + len;
    }
    WalRead::Segment { segment, torn_tail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_obs::RealFs;

    fn segment() -> WalSegment {
        let mut s = WalSegment::new(
            WalBase {
                ckpt_crc: 0xDEAD_BEEF,
                epoch: 7,
            },
            3,
        );
        s.rows.push(vec![
            Some("Paris".to_string()),
            None,
            Some("1.5".to_string()),
        ]);
        s.rows
            .push(vec![None, Some("".to_string()), Some("über".to_string())]);
        s
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("grimp-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn segment_round_trips_through_bytes() {
        let s = segment();
        match decode_segment(&s.to_bytes()) {
            WalRead::Segment {
                segment, torn_tail, ..
            } => {
                assert_eq!(segment, s);
                assert!(!torn_tail);
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn segment_round_trips_through_the_fs_layer() {
        let mut fs = RealFs;
        let path = tmp("roundtrip");
        let s = segment();
        s.write(&mut fs, &path).unwrap();
        match WalSegment::read(&mut fs, &path).unwrap() {
            WalRead::Segment { segment, torn_tail } => {
                assert_eq!(segment, s);
                assert!(!torn_tail);
            }
            other => panic!("unexpected read: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_reads_as_missing() {
        let mut fs = RealFs;
        assert_eq!(
            WalSegment::read(&mut fs, &tmp("missing")).unwrap(),
            WalRead::Missing
        );
    }

    #[test]
    fn empty_and_foreign_files_are_unusable_not_errors() {
        assert!(matches!(decode_segment(&[]), WalRead::Unusable(_)));
        assert!(matches!(
            decode_segment(b"GRIMPCKPxxxxxxxxxxxxxxxxxxxx"),
            WalRead::Unusable(_)
        ));
        // header CRC catches a bit flip in the base generation
        let mut bytes = segment().to_bytes();
        bytes[12] ^= 0x40;
        assert!(matches!(decode_segment(&bytes), WalRead::Unusable(_)));
    }

    #[test]
    fn torn_final_record_keeps_the_intact_prefix() {
        let s = segment();
        let whole = s.to_bytes();
        // Chop bytes off the final record: every truncation point must
        // yield exactly the first row plus a torn-tail flag.
        let first_row_end = {
            let header_len = WAL_MAGIC.len() + 20;
            let len = u32::from_le_bytes(whole[header_len..header_len + 4].try_into().unwrap());
            header_len + 8 + len as usize
        };
        for cut in first_row_end + 1..whole.len() {
            match decode_segment(&whole[..cut]) {
                WalRead::Segment { segment, torn_tail } => {
                    assert!(torn_tail, "cut at {cut}");
                    assert_eq!(segment.rows.len(), 1, "cut at {cut}");
                    assert_eq!(segment.rows[0], s.rows[0]);
                    assert_eq!(segment.base, s.base);
                }
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flipped_record_is_dropped_with_everything_after_it() {
        let s = segment();
        let mut bytes = s.to_bytes();
        let header_len = WAL_MAGIC.len() + 20;
        // flip a byte inside the first record's payload
        bytes[header_len + 9] ^= 0x01;
        match decode_segment(&bytes) {
            WalRead::Segment { segment, torn_tail } => {
                assert!(torn_tail);
                assert!(segment.rows.is_empty());
                assert_eq!(segment.base, s.base);
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn empty_segment_with_no_rows_is_valid() {
        let s = WalSegment::new(WalBase::default(), 2);
        match decode_segment(&s.to_bytes()) {
            WalRead::Segment { segment, torn_tail } => {
                assert!(segment.rows.is_empty());
                assert!(!torn_tail);
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }
}

//! Resource governance: cooperative shutdown, memory-footprint estimation
//! with admission-time downscaling, and the checkpoint-directory lock.
//!
//! Everything here is deterministic. The footprint estimate is pure
//! arithmetic over table statistics and config dims; the downscale ladder
//! walks three fixed rungs (cap distinct-value cell nodes per attribute,
//! then halve the hidden dims, then switch to neighbor-sampled mini-batch
//! training and halve its batch) until the estimate fits the budget or the
//! floors are reached — it never errors, because a model that is *smaller*
//! than requested still fills every cell, while an OOM kill fills none.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use grimp_obs::GrimpFs;
use grimp_table::{ColumnKind, Table};

use crate::config::{GrimpConfig, TaskKind};
use crate::report::{DownscaleDecision, DownscaleRung};

/// Cooperative shutdown flag, shared between a signal handler (or watcher
/// thread) and the training loop, which checks it at every epoch boundary.
/// The counter distinguishes a first request (stop cleanly: checkpoint,
/// impute from current state) from repeated ones (the CLI aborts).
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag(Arc<AtomicU32>);

impl ShutdownFlag {
    /// A fresh, unrequested flag.
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Record one shutdown request; returns the total so far (1-based).
    pub fn request(&self) -> u32 {
        self.0.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// How many shutdown requests have been recorded.
    pub fn requests(&self) -> u32 {
        self.0.load(Ordering::SeqCst)
    }

    /// Whether at least one shutdown request is pending.
    pub fn is_requested(&self) -> bool {
        self.requests() > 0
    }
}

/// Pre-allocation memory estimate of one `fit`, in bytes, split by
/// component. Derived from node/edge/parameter counts only — nothing is
/// allocated to compute it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FootprintEstimate {
    /// Graph structure: node labels, cell index, typed edge lists.
    pub graph_bytes: u64,
    /// Node feature matrix plus its persistent training copy.
    pub feature_bytes: u64,
    /// Trainable parameters × every live copy (gradients, Adam moments,
    /// rollback snapshot, best-epoch snapshot).
    pub param_bytes: u64,
    /// Tape activations: per-node GNN/merge/embedding intermediates and
    /// per-task training-vector batches, with gradient + workspace copies.
    pub activation_bytes: u64,
}

impl FootprintEstimate {
    /// Total estimated bytes.
    pub fn total_bytes(&self) -> u64 {
        self.graph_bytes + self.feature_bytes + self.param_bytes + self.activation_bytes
    }
}

/// Bytes per f32 scalar.
const F32: u64 = 4;
/// Copies of every trainable scalar that live simultaneously: value, grad,
/// two Adam moments, the last-good rollback snapshot (params + moments),
/// and the best-epoch parameter snapshot.
const PARAM_COPIES: u64 = 8;
/// Copies of every activation scalar: value, gradient, workspace slack.
const ACT_COPIES: u64 = 3;
/// Rough per-node bookkeeping (label enum, cell-index entry, adjacency).
const NODE_OVERHEAD: u64 = 96;
/// Rough per-edge bookkeeping (typed pair + CSR adjacency both ways).
const EDGE_OVERHEAD: u64 = 24;

/// Estimate the graph + tape footprint of fitting `cfg` on `table`,
/// honouring `cfg.graph.max_cells_per_column` so the downscale ladder can
/// re-estimate as it tightens the cap. Monotone in the cap and in the
/// hidden dims, which is what the ladder relies on.
pub fn estimate_footprint(table: &Table, cfg: &GrimpConfig) -> FootprintEstimate {
    let n_rows = table.n_rows() as u64;
    let n_cols = table.n_columns();
    let cap = cfg.graph.max_cells_per_column.unwrap_or(usize::MAX);

    let mut n_cells = 0u64; // distinct-value nodes across all columns
    let mut n_edges = 0u64;
    let mut task_samples = 0u64; // training samples across all tasks
    let mut task_out = 0u64; // Σ per-task output width
    for j in 0..n_cols {
        let col = table.column(j);
        let distinct = col.n_distinct() as u64;
        let observed = (table.n_rows() - col.n_missing()) as u64;
        let kept = distinct.min(cap as u64);
        n_cells += kept;
        // The frequency cutoff keeps the most frequent values, so at least
        // a proportional share of the observed cells keep their edges.
        n_edges += if distinct > kept && distinct > 0 {
            observed * kept / distinct
        } else {
            observed
        };
        let mut samples = match cfg.max_train_samples_per_task {
            Some(max) => observed.min(max as u64),
            None => observed,
        };
        // Under neighbor-sampled training only `batch_rows` samples per
        // task are materialized as training vectors at any moment (the
        // per-epoch mini-batch; validation batches are capped the same
        // way), so the dominant activation term scales with the batch.
        if let Some(sampler) = cfg.sampler {
            samples = samples.min(sampler.batch_rows as u64);
        }
        task_samples += samples;
        task_out += match table.schema().column(j).kind {
            ColumnKind::Categorical => distinct.max(1),
            ColumnKind::Numerical => 1,
        };
    }
    let n_nodes = n_rows + n_cells;

    let graph_bytes = n_nodes * NODE_OVERHEAD + n_edges * EDGE_OVERHEAD;
    // Feature tensor + the persistent per-epoch training copy.
    let feature_bytes = n_nodes * cfg.feature_dim as u64 * F32 * 2;

    // Trainable parameters. GNN: per layer one transform per edge type
    // plus the self path; merge MLP: hidden → merge → embed; task heads:
    // attention mixes plus the output projection.
    let (hidden, layers) = (cfg.gnn.hidden as u64, cfg.gnn.layers as u64);
    let (merge, embed) = (cfg.merge_hidden as u64, cfg.embed_dim as u64);
    let feat = cfg.feature_dim as u64;
    let mut params = 0u64;
    for l in 0..layers {
        let in_dim = if l == 0 { feat } else { hidden };
        params += (n_cols as u64 + 1) * (in_dim * hidden + hidden);
    }
    params += hidden * merge + merge + merge * embed + embed;
    let per_task_head = match cfg.task_kind {
        TaskKind::Attention => 3 * embed * embed + (n_cols as u64) * (n_cols as u64),
        TaskKind::Linear => 2 * embed * embed,
    };
    params += n_cols as u64 * per_task_head + embed * task_out;
    let param_bytes = params * F32 * PARAM_COPIES;

    // Activations: every node carries its per-layer GNN outputs, the merge
    // hidden layer, and the final embedding; every training sample gathers
    // a C-slot vector of embeddings and a task-output row.
    let per_node = layers * hidden + merge + embed;
    let per_sample = n_cols as u64 * embed + embed + task_out / (n_cols as u64).max(1);
    let activation_bytes = (n_nodes * per_node + task_samples * per_sample) * F32 * ACT_COPIES;

    FootprintEstimate {
        graph_bytes,
        feature_bytes,
        param_bytes,
        activation_bytes,
    }
}

/// Smallest value-node cap the ladder will try.
const CAP_FLOOR: usize = 16;
/// Smallest hidden width the ladder will shrink to.
const DIM_FLOOR: usize = 4;
/// `batch_rows` the sampling rung starts from (clamped to the table).
const SAMPLE_BATCH_DEFAULT: usize = 4096;
/// Smallest `batch_rows` the sampling rung will halve down to.
const SAMPLE_BATCH_FLOOR: usize = 256;
/// Neighbor fanout the sampling rung configures.
const SAMPLE_FANOUT: usize = 8;

/// Downscale `cfg` deterministically until [`estimate_footprint`] fits
/// `budget_mb`, recording every decision. Rung 1 halves the per-attribute
/// value-node cap (frequency cutoff, floor 16); rung 2 halves
/// `gnn.hidden` / `merge_hidden` / `embed_dim` together (floor 4); rung 3
/// switches training to deterministic neighbor-sampled mini-batches
/// (`batch_rows` 4096 clamped to the table, fanout 8) and keeps halving
/// `batch_rows` down to 256 — so tables the full-graph path cannot admit
/// degrade to sampling instead of being rejected. If the floors still
/// exceed the budget, the smallest shape proceeds anyway — degrading
/// further is the ladder's job, failing is not.
pub fn downscale_to_budget(
    cfg: &GrimpConfig,
    table: &Table,
    budget_mb: usize,
) -> (GrimpConfig, Vec<DownscaleDecision>) {
    let budget = budget_mb as u64 * 1024 * 1024;
    let mut eff = cfg.clone();
    let mut decisions = Vec::new();
    if estimate_footprint(table, &eff).total_bytes() <= budget {
        return (eff, decisions);
    }

    let max_distinct = (0..table.n_columns())
        .map(|j| table.column(j).n_distinct())
        .max()
        .unwrap_or(0);
    let mut cap = eff
        .graph
        .max_cells_per_column
        .unwrap_or(max_distinct)
        .max(CAP_FLOOR);
    while estimate_footprint(table, &eff).total_bytes() > budget && cap > CAP_FLOOR {
        cap = (cap / 2).max(CAP_FLOOR);
        eff.graph.max_cells_per_column = Some(cap);
        decisions.push(DownscaleDecision {
            rung: DownscaleRung::ValueNodeCap,
            value: cap as u64,
        });
    }

    while estimate_footprint(table, &eff).total_bytes() > budget
        && (eff.gnn.hidden > DIM_FLOOR || eff.merge_hidden > DIM_FLOOR || eff.embed_dim > DIM_FLOOR)
    {
        eff.gnn.hidden = (eff.gnn.hidden / 2).max(DIM_FLOOR);
        eff.merge_hidden = (eff.merge_hidden / 2).max(DIM_FLOOR);
        eff.embed_dim = (eff.embed_dim / 2).max(DIM_FLOOR);
        decisions.push(DownscaleDecision {
            rung: DownscaleRung::HiddenDims,
            value: eff.gnn.hidden as u64,
        });
    }

    if estimate_footprint(table, &eff).total_bytes() > budget && eff.sampler.is_none() {
        let batch = SAMPLE_BATCH_DEFAULT.min(table.n_rows().max(1));
        eff.sampler = Some(crate::config::SamplerConfig {
            batch_rows: batch,
            fanout: SAMPLE_FANOUT,
        });
        decisions.push(DownscaleDecision {
            rung: DownscaleRung::Sample,
            value: batch as u64,
        });
    }
    while estimate_footprint(table, &eff).total_bytes() > budget {
        let Some(sampler) = eff.sampler.as_mut() else {
            break;
        };
        if sampler.batch_rows <= SAMPLE_BATCH_FLOOR {
            break;
        }
        sampler.batch_rows = (sampler.batch_rows / 2).max(SAMPLE_BATCH_FLOOR);
        decisions.push(DownscaleDecision {
            rung: DownscaleRung::Sample,
            value: sampler.batch_rows as u64,
        });
    }
    (eff, decisions)
}

/// Name of the lock file inside a checkpoint directory.
pub const LOCK_FILE: &str = "grimp.lock";

/// Exclusive lock on a checkpoint directory, taken before any checkpoint
/// IO so two concurrent runs cannot corrupt each other's two-generation
/// rotation. The lock file holds the owner's PID for diagnostics; it is
/// removed on drop. A lock left behind by a killed process is reclaimed
/// automatically at the next acquire: when the recorded PID no longer
/// exists (or the file is unreadable — a torn write from a crashed run),
/// `fit` removes the stale file, emits a `lock_reclaimed` trace counter,
/// and retries once. A lock whose holder is alive stays a hard error.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Try to take the lock in `dir` via an exclusive create of
    /// [`LOCK_FILE`]. `Err(AlreadyExists)` means another run holds it;
    /// other errors are ordinary IO failures (degrade checkpoint-less).
    pub fn acquire(fs: &mut dyn GrimpFs, dir: &Path) -> std::io::Result<DirLock> {
        let path = dir.join(LOCK_FILE);
        let pid = std::process::id().to_string();
        fs.create_new(&path, pid.as_bytes())?;
        Ok(DirLock { path })
    }

    /// PID recorded in an existing lock file, when readable.
    pub fn owner_pid(fs: &mut dyn GrimpFs, dir: &Path) -> Option<u32> {
        let bytes = fs.read(&dir.join(LOCK_FILE)).ok()?;
        String::from_utf8(bytes).ok()?.trim().parse().ok()
    }

    /// Path of the lock file this guard owns.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Whether a process with this PID is currently alive. On Linux this is a
/// `/proc/<pid>` existence probe — no syscall wrapper crates, no signals
/// sent. On other platforms it conservatively answers `true`, so a stale
/// lock is never reclaimed automatically there (remove it manually; the
/// PID in the `LockHeld` error says whose it was).
#[cfg(target_os = "linux")]
pub fn pid_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

/// Non-Linux fallback: assume the holder is alive (never auto-reclaim).
#[cfg(not(target_os = "linux"))]
pub fn pid_alive(_pid: u32) -> bool {
    true
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Best-effort release through the real filesystem: an injected
        // fault must not leave a permanent lock behind.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_obs::RealFs;
    use grimp_table::{ColumnKind, Schema};

    fn wide_table(rows: usize, distinct: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("id", ColumnKind::Categorical),
            ("grp", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..rows {
            let id = format!("v{}", i % distinct);
            let grp = format!("g{}", i % 3);
            let x = format!("{}.5", i % 7);
            t.push_str_row(&[Some(&id), Some(&grp), Some(&x)]);
        }
        t
    }

    #[test]
    fn shutdown_flag_counts_requests_across_clones() {
        let flag = ShutdownFlag::new();
        assert!(!flag.is_requested());
        let other = flag.clone();
        assert_eq!(other.request(), 1);
        assert_eq!(flag.request(), 2);
        assert_eq!(flag.requests(), 2);
        assert!(flag.is_requested());
    }

    #[test]
    fn estimate_is_monotone_in_cap_and_dims() {
        let t = wide_table(500, 400);
        let base = GrimpConfig::paper();
        let free = estimate_footprint(&t, &base).total_bytes();

        let mut capped = base.clone();
        capped.graph.max_cells_per_column = Some(32);
        let capped_total = estimate_footprint(&t, &capped).total_bytes();
        assert!(capped_total < free, "{capped_total} !< {free}");

        let mut thin = capped.clone();
        thin.gnn.hidden /= 2;
        thin.merge_hidden /= 2;
        thin.embed_dim /= 2;
        let thin_total = estimate_footprint(&t, &thin).total_bytes();
        assert!(thin_total < capped_total, "{thin_total} !< {capped_total}");
    }

    #[test]
    fn estimate_is_deterministic_and_nonzero() {
        let t = wide_table(100, 50);
        let cfg = GrimpConfig::paper();
        let a = estimate_footprint(&t, &cfg);
        let b = estimate_footprint(&t, &cfg);
        assert_eq!(a, b);
        assert!(a.graph_bytes > 0);
        assert!(a.feature_bytes > 0);
        assert!(a.param_bytes > 0);
        assert!(a.activation_bytes > 0);
    }

    #[test]
    fn generous_budget_leaves_the_config_untouched() {
        let t = wide_table(100, 50);
        let cfg = GrimpConfig::paper();
        let (eff, decisions) = downscale_to_budget(&cfg, &t, 16_384);
        assert!(decisions.is_empty());
        assert_eq!(eff.gnn.hidden, cfg.gnn.hidden);
        assert!(eff.graph.max_cells_per_column.is_none());
    }

    #[test]
    fn tight_budget_walks_the_ladder_in_order() {
        let t = wide_table(2000, 1500);
        let cfg = GrimpConfig::paper();
        let (eff, decisions) = downscale_to_budget(&cfg, &t, 1);
        assert!(!decisions.is_empty());
        // Rung 1 decisions (value-node cap) come before rung 2 (dims).
        let first_dim = decisions
            .iter()
            .position(|d| d.rung == DownscaleRung::HiddenDims);
        if let Some(pos) = first_dim {
            assert!(decisions[..pos]
                .iter()
                .all(|d| d.rung == DownscaleRung::ValueNodeCap));
        }
        // Floors hold even under an absurd budget.
        assert!(eff.graph.max_cells_per_column.unwrap_or(usize::MAX) >= CAP_FLOOR);
        assert!(eff.gnn.hidden >= DIM_FLOOR);
        assert!(eff.embed_dim >= DIM_FLOOR);
        // The downscaled config still validates.
        eff.validate().expect("downscaled config is valid");
    }

    #[test]
    fn moderate_budget_stops_as_soon_as_it_fits() {
        let t = wide_table(2000, 1500);
        let cfg = GrimpConfig::paper();
        let free = estimate_footprint(&t, &cfg).total_bytes();
        // A budget halfway between the smallest shape the ladder can reach
        // and the unconstrained estimate is met by construction, and (being
        // below the unconstrained estimate) forces at least one decision.
        let floor = {
            let mut f = cfg.clone();
            f.graph.max_cells_per_column = Some(CAP_FLOOR);
            f.gnn.hidden = DIM_FLOOR;
            f.merge_hidden = DIM_FLOOR;
            f.embed_dim = DIM_FLOOR;
            estimate_footprint(&t, &f).total_bytes()
        };
        assert!(floor < free);
        let budget_mb = (((floor + free) / 2) / (1024 * 1024)).max(1) as usize;
        let (eff, decisions) = downscale_to_budget(&cfg, &t, budget_mb);
        assert!(!decisions.is_empty());
        assert!(
            estimate_footprint(&t, &eff).total_bytes() <= budget_mb as u64 * 1024 * 1024,
            "budget met"
        );
    }

    #[test]
    fn estimate_shrinks_with_sampler_batch_rows() {
        let t = wide_table(5000, 50);
        let full = GrimpConfig::paper();
        let free = estimate_footprint(&t, &full).total_bytes();
        let mut sampled = full.clone();
        sampled.sampler = Some(crate::config::SamplerConfig {
            batch_rows: 512,
            fanout: 8,
        });
        let with_sampler = estimate_footprint(&t, &sampled).total_bytes();
        assert!(with_sampler < free, "{with_sampler} !< {free}");
        let mut smaller = sampled.clone();
        smaller.sampler.as_mut().unwrap().batch_rows = 256;
        assert!(estimate_footprint(&t, &smaller).total_bytes() <= with_sampler);
    }

    #[test]
    fn impossible_budget_falls_through_to_the_sampling_rung() {
        let t = wide_table(20_000, 1500);
        let cfg = GrimpConfig::paper();
        // A budget below the dims floor but above the sampled floor: only
        // the third rung can admit this table.
        let dims_floor = {
            let mut f = cfg.clone();
            f.graph.max_cells_per_column = Some(CAP_FLOOR);
            f.gnn.hidden = DIM_FLOOR;
            f.merge_hidden = DIM_FLOOR;
            f.embed_dim = DIM_FLOOR;
            estimate_footprint(&t, &f).total_bytes()
        };
        let budget_mb = ((dims_floor / (1024 * 1024)) / 2).max(1) as usize;
        let (eff, decisions) = downscale_to_budget(&cfg, &t, budget_mb);
        let sampler = eff.sampler.expect("sampling rung must fire");
        assert_eq!(sampler.fanout, SAMPLE_FANOUT);
        assert!(sampler.batch_rows >= SAMPLE_BATCH_FLOOR);
        assert!(sampler.batch_rows <= SAMPLE_BATCH_DEFAULT);
        // Sample decisions come last, after every cap / dims decision.
        let first_sample = decisions
            .iter()
            .position(|d| d.rung == DownscaleRung::Sample)
            .expect("a sample decision is recorded");
        assert!(decisions[first_sample..]
            .iter()
            .all(|d| d.rung == DownscaleRung::Sample));
        assert!(decisions[..first_sample]
            .iter()
            .all(|d| d.rung != DownscaleRung::Sample));
        eff.validate().expect("sampled downscale is a valid config");
    }

    #[test]
    fn sampling_rung_respects_a_user_configured_sampler() {
        let t = wide_table(20_000, 1500);
        let mut cfg = GrimpConfig::paper();
        cfg.sampler = Some(crate::config::SamplerConfig {
            batch_rows: 2048,
            fanout: 4,
        });
        let (eff, _) = downscale_to_budget(&cfg, &t, 1);
        let sampler = eff.sampler.expect("sampler stays configured");
        // the ladder may halve the batch but never touches the fanout and
        // never grows the batch past what the user asked for
        assert_eq!(sampler.fanout, 4);
        assert!(sampler.batch_rows <= 2048);
        assert!(sampler.batch_rows >= SAMPLE_BATCH_FLOOR);
    }

    #[test]
    fn pid_alive_distinguishes_this_process_from_an_impossible_pid() {
        assert!(pid_alive(std::process::id()), "we are alive");
        #[cfg(target_os = "linux")]
        // u32::MAX far exceeds the kernel's pid_max (4194304), so no
        // process can ever hold it.
        assert!(!pid_alive(u32::MAX), "impossible pid must read as dead");
    }

    #[test]
    fn dir_lock_is_exclusive_and_released_on_drop() {
        let dir = std::env::temp_dir().join(format!("grimp-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut fs = RealFs;

        let lock = DirLock::acquire(&mut fs, &dir).expect("first lock");
        let err = DirLock::acquire(&mut fs, &dir).expect_err("second lock refused");
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert_eq!(
            DirLock::owner_pid(&mut fs, &dir),
            Some(std::process::id()),
            "lock file records the owner pid"
        );
        drop(lock);
        let relock = DirLock::acquire(&mut fs, &dir).expect("lock released on drop");
        drop(relock);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

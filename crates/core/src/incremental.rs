//! Crash-safe incremental imputation: append rows to an already-fitted
//! table without refitting from scratch.
//!
//! One append is a small state machine, every transition of which is
//! idempotent under replay:
//!
//! 1. **Log** — the appended rows are encoded into a [`WalSegment`] tagged
//!    with the current checkpoint generation (its CRC-32 and epoch) and
//!    published atomically as `grimp.wal` (see [`crate::wal`]). From this
//!    point the delta is durable: a crash anywhere later replays it.
//! 2. **Decide** — warm-start fine-tune when the appended rows introduce no
//!    new categorical dictionary values (the task-head shapes are dictated
//!    by dictionary widths, so the base checkpoint still fits the concat
//!    model bit-for-bit) *and* the checkpoint generation on disk is the one
//!    the WAL references — or one the fine-tune itself wrote mid-run.
//!    Anything else (new values, no checkpoint, a foreign or older
//!    generation) falls back to a **full refit** of the concatenated table;
//!    the WAL's base is then zeroed (another atomic publish) so a crashed
//!    refit re-decides the same way.
//! 3. **Train** — the fine-tune is a *resumed* fit of the concatenated
//!    table with `max_epochs = wal.epoch + finetune.epochs` and only the
//!    appended rows contributing training samples
//!    ([`crate::model::fit_model_delta`]); the refit is a resumed plain
//!    fit. Both paths reuse the checkpointed training loop, so a kill at
//!    any epoch resumes bit-identically, and replaying an already-applied
//!    segment finds the epoch target already reached and trains nothing.
//! 4. **Impute & rotate** — the concatenated table is imputed
//!    transductively (every missing cell filled, degradation ladder
//!    included), then `grimp.wal` is atomically renamed to
//!    `grimp.wal.applied`. A crash between training and rotation re-enters
//!    at step 1 with the pending segment and no-ops through step 3.
//!
//! The determinism argument: every decision above is a pure function of
//! (config, base table, WAL segment, checkpoint on disk), and the training
//! loop itself is bit-identical under resume, so *interrupted at any point*
//! and *uninterrupted* runs converge to the same imputed table and the same
//! final checkpoint.

use std::path::Path;
use std::time::Instant;

use grimp_obs::fs::{with_retry, IO_RETRY_ATTEMPTS};
use grimp_obs::{crashpoint, names, EventSink, FaultFs, GrimpFs, RealFs, Trace};
use grimp_table::{ColumnKind, FdSet, Table};

use crate::checkpoint::{crc32, TrainCheckpoint, CHECKPOINT_FILE};
use crate::config::{ConfigError, GrimpConfig};
use crate::error::GrimpError;
use crate::model::{fit_model, fit_model_delta, FittedModel};
use crate::report::TrainReport;
use crate::wal::{WalBase, WalRead, WalRow, WalSegment, WAL_APPLIED_FILE, WAL_FILE};

/// Which route an append took through the delta/refit state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendPath {
    /// Warm-start fine-tune: the base checkpoint was resumed and trained
    /// `finetune.epochs` further epochs on the appended rows only.
    Finetune,
    /// Full refit of the concatenated table (new dictionary values, no
    /// usable base checkpoint, or a foreign/older generation on disk).
    Refit,
    /// Replay of an already-applied segment: the fine-tune target epoch was
    /// already reached, so no training ran — only imputation and rotation.
    NoOp,
}

impl AppendPath {
    /// Lowercase label used in CLI output and traces.
    pub fn label(self) -> &'static str {
        match self {
            AppendPath::Finetune => "finetune",
            AppendPath::Refit => "refit",
            AppendPath::NoOp => "noop",
        }
    }
}

/// Everything an append produces: the grown table, its imputation, the
/// fitted model serving it, and the provenance of how it got there.
pub struct AppendOutcome {
    /// The concatenated dirty table (base rows plus appended rows).
    pub table: Table,
    /// The imputed concatenated table — every missing cell filled.
    pub imputed: Table,
    /// The fitted model over the concatenated table (checkpointed under
    /// the same directory, so `grimp serve` hot-reloads it).
    pub model: FittedModel,
    /// Report of the fine-tune/refit run (clone of `model.report()`),
    /// including the drift check's `drift`/`refit_scheduled` fields.
    pub report: TrainReport,
    /// Which route the state machine took.
    pub path: AppendPath,
    /// Rows actually applied (from the WAL segment, which is authoritative
    /// when a pending segment was replayed).
    pub appended_rows: usize,
    /// Whether a pending `grimp.wal` from an interrupted earlier append was
    /// replayed instead of writing a fresh segment.
    pub replayed: bool,
    /// Whether replay had to drop a torn tail from the pending segment.
    pub torn_tail: bool,
}

impl std::fmt::Debug for AppendOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendOutcome")
            .field("path", &self.path)
            .field("appended_rows", &self.appended_rows)
            .field("replayed", &self.replayed)
            .field("torn_tail", &self.torn_tail)
            .field("rows", &self.table.n_rows())
            .finish_non_exhaustive()
    }
}

/// Convert a table's rows into WAL rows (missing cells become `None`).
/// Numericals render via the shortest-round-trip `Display`, so pushing the
/// rows back through [`Table::try_push_str_row`] is lossless.
pub fn table_to_wal_rows(t: &Table) -> Vec<WalRow> {
    (0..t.n_rows())
        .map(|i| {
            (0..t.n_columns())
                .map(|j| (!t.is_missing(i, j)).then(|| t.display(i, j)))
                .collect()
        })
        .collect()
}

/// Read the current checkpoint, returning its whole-file CRC-32 and decoded
/// form. `None` for missing or undecodable files — both mean "no usable
/// base generation" and route the append to a full refit.
fn read_current_checkpoint(fs: &mut dyn GrimpFs, path: &Path) -> Option<(u32, TrainCheckpoint)> {
    if !fs.exists(path) {
        return None;
    }
    let bytes = fs.read(path).ok()?;
    let ck = TrainCheckpoint::from_bytes(&bytes).ok()?;
    Some((crc32(&bytes), ck))
}

/// The append engine behind [`crate::Pipeline::append`]. See the module
/// docs for the state machine.
pub(crate) fn append_model(
    config: &GrimpConfig,
    fds: &FdSet,
    base: &Table,
    rows: &[WalRow],
    sink: &mut dyn EventSink,
) -> Result<AppendOutcome, GrimpError> {
    let start = Instant::now();
    let Some(dir) = config.checkpoint_dir.clone() else {
        return Err(ConfigError::AppendWithoutCheckpointDir.into());
    };
    let mut ckfs: Box<dyn GrimpFs> = match config.io_fault {
        Some(plan) => Box::new(FaultFs::new(plan)),
        None => Box::new(RealFs),
    };
    with_retry(IO_RETRY_ATTEMPTS, || ckfs.create_dir_all(&dir)).map_err(|source| {
        GrimpError::Io {
            context: format!("creating checkpoint dir {}", dir.display()),
            source,
        }
    })?;
    let wal_path = dir.join(WAL_FILE);
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    let current = read_current_checkpoint(ckfs.as_mut(), &ckpt_path);

    // Step 1 — log. A pending segment from an interrupted append is
    // authoritative: matching rows resume it (keeping its original base
    // generation, which a mid-fine-tune checkpoint may since have moved
    // past), differing rows are a hard conflict the operator must resolve.
    let pending = WalSegment::read(ckfs.as_mut(), &wal_path).map_err(|source| GrimpError::Io {
        context: format!("reading pending append log {}", wal_path.display()),
        source,
    })?;
    let (mut segment, replayed, torn_tail, needs_write) = match pending {
        WalRead::Missing => {
            let gen = current
                .as_ref()
                .map(|(crc, ck)| WalBase {
                    ckpt_crc: *crc,
                    epoch: ck.epoch,
                })
                .unwrap_or_default();
            let mut s = WalSegment::new(gen, base.n_columns());
            s.rows = rows.to_vec();
            (s, false, false, true)
        }
        WalRead::Unusable(reason) => {
            return Err(GrimpError::PendingAppend {
                path: wal_path,
                detail: format!("unreadable ({reason})"),
            });
        }
        WalRead::Segment { segment, torn_tail } => {
            if segment.n_columns != base.n_columns() {
                return Err(GrimpError::PendingAppend {
                    path: wal_path,
                    detail: format!(
                        "was written for a {}-column table, this one has {}",
                        segment.n_columns,
                        base.n_columns()
                    ),
                });
            }
            if rows.is_empty() || segment.rows == rows {
                // Resume the interrupted append. Rewrite only when a torn
                // tail was dropped, so the file on disk is intact again.
                (segment, true, torn_tail, torn_tail)
            } else if torn_tail
                && rows.len() >= segment.rows.len()
                && segment.rows.as_slice() == &rows[..segment.rows.len()]
            {
                // The tear ate rows off the segment's tail; the request
                // carries the full set. Rewrite with the original base.
                let full = WalSegment {
                    rows: rows.to_vec(),
                    ..segment
                };
                (full, true, true, true)
            } else {
                return Err(GrimpError::PendingAppend {
                    path: wal_path,
                    detail: format!(
                        "holds {} row(s) from an interrupted append that differ \
                         from the {} requested",
                        segment.rows.len(),
                        rows.len()
                    ),
                });
            }
        }
    };
    if needs_write {
        let bytes = segment.to_bytes().len();
        segment
            .write(ckfs.as_mut(), &wal_path)
            .map_err(|source| GrimpError::Io {
                context: format!("writing append log {}", wal_path.display()),
                source,
            })?;
        // The rows just became durable; nothing has trained or been
        // acknowledged. A kill here must replay to the identical outcome.
        crashpoint::hit(crashpoint::WAL_PUBLISH);
        let mut trace = Trace::new(sink);
        trace.counter(names::WAL_WRITE, segment.rows.len() as u64, bytes as u64);
        let _ = trace.flush();
    }
    if replayed {
        let mut trace = Trace::new(sink);
        trace.counter(
            names::WAL_REPLAY,
            segment.rows.len() as u64,
            u64::from(!torn_tail),
        );
        let _ = trace.flush();
    }

    // The concatenated table. `try_push_str_row` re-validates every cell
    // (width, numeric parse), so a malformed request fails here as a typed
    // data error — before any training — with the WAL still pending.
    let mut concat = base.clone();
    for row in &segment.rows {
        let r: Vec<Option<&str>> = row.iter().map(|c| c.as_deref()).collect();
        concat.try_push_str_row(&r)?;
    }
    let base_rows = base.n_rows();

    // Step 2 — decide. Fine-tune iff the shapes carry over (no categorical
    // column grew its dictionary) and the checkpoint on disk belongs to
    // this WAL's lineage: at least the referenced generation's epoch, at
    // most the fine-tune target (a mid-fine-tune checkpoint of this very
    // append). An older or future generation means the directory serves
    // some other table state — refit from the data.
    let new_values = (0..base.n_columns()).any(|j| {
        base.schema().column(j).kind == ColumnKind::Categorical
            && concat.dictionary(j).len() != base.dictionary(j).len()
    });
    let target_epoch = segment.base.epoch + config.finetune.epochs as u64;
    let finetune = !new_values
        && segment.base.ckpt_crc != 0
        && current
            .as_ref()
            .is_some_and(|(_, ck)| ck.epoch >= segment.base.epoch && ck.epoch <= target_epoch);
    if !finetune && segment.base != WalBase::default() {
        // Zero the WAL's base so a crashed refit re-decides identically
        // (its mid-refit checkpoints would otherwise masquerade as a
        // fine-tune lineage on replay).
        segment.base = WalBase::default();
        segment
            .write(ckfs.as_mut(), &wal_path)
            .map_err(|source| GrimpError::Io {
                context: format!("rewriting append log {}", wal_path.display()),
                source,
            })?;
    }

    // Step 3 — train. Both paths resume, so kills at any epoch replay.
    let mut effective = config.clone();
    effective.resume = true;
    let (model, path) = if finetune {
        effective.max_epochs = target_epoch as usize;
        {
            let mut trace = Trace::new(sink);
            trace.counter(names::FINETUNE, segment.base.epoch, target_epoch);
            let _ = trace.flush();
        }
        let fitted = fit_model_delta(&effective, fds, &concat, Some(base_rows), sink)?;
        let replay_noop = fitted.report().epochs_run == 0
            && fitted
                .report()
                .resumed_from_epoch
                .is_some_and(|e| e as u64 >= target_epoch);
        let path = if replay_noop {
            AppendPath::NoOp
        } else {
            AppendPath::Finetune
        };
        (fitted, path)
    } else {
        (
            fit_model(&effective, fds, &concat, sink)?,
            AppendPath::Refit,
        )
    };
    let mut model = model;
    let report = model.report().clone();

    // Step 4 — impute (transductive: the fit ran on this very table, so
    // every missing cell fills, degradation ladder included) and rotate.
    // A training run cut short by a shutdown request or the wall-clock
    // deadline still imputes (the contract: never an unfilled cell), but
    // the WAL stays pending: re-running the append resumes the fine-tune
    // from the checkpointed epoch and converges to the uninterrupted
    // outcome before rotating.
    let imputed = model.impute_traced(&concat, sink)?;
    let finished = !(report.interrupted || report.deadline_hit);
    if finished {
        let applied_path = dir.join(WAL_APPLIED_FILE);
        with_retry(IO_RETRY_ATTEMPTS, || ckfs.rename(&wal_path, &applied_path)).map_err(
            |source| GrimpError::Io {
                context: format!("rotating applied append log to {}", applied_path.display()),
                source,
            },
        )?;
        // The log is gone; only the idempotency journal (when the caller
        // keeps one) now guards a retry of these rows from re-appending.
        crashpoint::hit(crashpoint::APPLIED_ROTATE);
    }
    {
        let mut trace = Trace::new(sink);
        if finished {
            trace.counter(names::WAL_ROTATE, segment.rows.len() as u64, 1);
        }
        let n = segment.rows.len() as u64;
        let span = trace.enter(names::APPEND, n);
        trace.exit_with(names::APPEND, n, span, start.elapsed().as_secs_f64());
        let _ = trace.flush();
    }

    Ok(AppendOutcome {
        table: concat,
        imputed,
        appended_rows: segment.rows.len(),
        replayed,
        torn_tail,
        report,
        path,
        model,
    })
}

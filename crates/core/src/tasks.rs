//! Task-specific heads of the multi-task layer (paper §3.5, Figs. 6–7).
//!
//! Each attribute gets a *task*: a multi-class classifier for categorical
//! attributes, a single-output regressor for numerical ones. Tasks are
//! either stacks of fully connected layers ([`TaskKind::Linear`]) or the
//! attention structure of Fig. 6 ([`TaskKind::Attention`]): matrices `Q`
//! (trainable, initialized from pre-trained attribute vectors) and `K`
//! (fixed selection weights, four strategies) pooled by `m`, scoring the
//! training-vector slots, whose softmax-weighted sum feeds the output layer.

use std::rc::Rc;

use rand::Rng;

use grimp_table::FdSet;
use grimp_tensor::{init, Dense, Mlp, Tape, Tensor, Var};

use crate::config::KStrategy;
use crate::vectors::VectorBatch;

pub use crate::config::TaskKind;

/// Build the diagonal selection matrix `K` (`C × C`) for one task
/// (paper Fig. 7).
pub fn build_k_matrix(strategy: KStrategy, n_cols: usize, target: usize, fds: &FdSet) -> Tensor {
    let mut k = Tensor::zeros(n_cols, n_cols);
    match strategy {
        KStrategy::Diagonal => {
            for c in 0..n_cols {
                k.set(c, c, 1.0);
            }
        }
        KStrategy::TargetColumn => {
            k.set(target, target, 1.0);
        }
        KStrategy::WeakDiagonal => {
            for c in 0..n_cols {
                k.set(c, c, if c == target { 1.0 } else { 0.5 });
            }
        }
        KStrategy::WeakDiagonalFd => {
            let related = fds.related_attributes(target);
            for c in 0..n_cols {
                let w = if c == target {
                    1.0
                } else if related.contains(&c) {
                    0.75
                } else {
                    0.4
                };
                k.set(c, c, w);
            }
        }
    }
    k
}

/// One task head.
pub enum Task {
    /// Fully connected head over the flattened training vector.
    Linear {
        /// `[C·D, hidden, out]` MLP.
        mlp: Mlp,
    },
    /// Attention head (Fig. 6).
    Attention {
        /// Trainable `C × D` attribute matrix `Q_A`.
        q: Var,
        /// Fixed `C × C` selection matrix `K_A`.
        k: Tensor,
        /// Output layer `D → out`.
        out: Dense,
    },
}

impl Task {
    /// Register a task head's parameters on `tape`.
    ///
    /// `q_init` is the `C × D` matrix of pre-trained attribute vectors used
    /// to initialize `Q_A` for attention tasks (`None` for linear tasks).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        tape: &mut Tape,
        kind: TaskKind,
        n_cols: usize,
        dim: usize,
        hidden: usize,
        out_dim: usize,
        target: usize,
        strategy: KStrategy,
        fds: &FdSet,
        q_init: Option<Tensor>,
        rng: &mut impl Rng,
    ) -> Self {
        match kind {
            TaskKind::Linear => Task::Linear {
                mlp: Mlp::new(tape, &[n_cols * dim, hidden, out_dim], rng),
            },
            TaskKind::Attention => {
                let q = match q_init {
                    Some(t) => {
                        assert_eq!(t.shape(), (n_cols, dim), "q_init must be C x D");
                        tape.param(t)
                    }
                    None => tape.param(init::xavier_uniform(n_cols, dim, rng)),
                };
                Task::Attention {
                    q,
                    k: build_k_matrix(strategy, n_cols, target, fds),
                    out: Dense::new(tape, dim, out_dim, rng),
                }
            }
        }
    }

    /// The attention distribution over columns for a batch (`N × C`), or
    /// `None` for linear tasks. Used for introspection: high weight on a
    /// column means the task relies on it (e.g., an FD premise).
    pub fn attention_alpha(&self, tape: &mut Tape, h: Var, batch: &VectorBatch) -> Option<Var> {
        let Task::Attention { q, k, .. } = self else {
            return None;
        };
        let v = tape.gather_rows(h, Rc::clone(&batch.idx));
        let mask = tape.input(batch.mask.clone());
        let v = tape.mul_elem(v, mask);
        let k_in = tape.input(k.clone());
        let kq = tape.matmul(k_in, *q);
        let m = tape.input(Tensor::full(1, batch.n_cols, 1.0 / batch.n_cols as f32));
        let s = tape.matmul(m, kq);
        let st = tape.reshape(s, batch.dim, 1);
        let scores = tape.matmul(v, st);
        let scores = tape.reshape(scores, batch.n, batch.n_cols);
        let scores = tape.scale(scores, 1.0 / (batch.dim as f32).sqrt());
        let bias = tape.input(batch.score_bias.clone());
        let scores = tape.add(scores, bias);
        Some(tape.row_softmax(scores))
    }

    /// Forward pass: from the node-embedding matrix `h` (shared-layer
    /// output, `n_nodes × D`) and a batch, produce `N × out` logits (or
    /// `N × 1` regression outputs).
    pub fn forward(&self, tape: &mut Tape, h: Var, batch: &VectorBatch) -> Var {
        let v = tape.gather_rows(h, Rc::clone(&batch.idx));
        let mask = tape.input(batch.mask.clone());
        let v = tape.mul_elem(v, mask);
        match self {
            Task::Linear { mlp } => {
                let flat = tape.reshape(v, batch.n, batch.n_cols * batch.dim);
                mlp.forward(tape, flat)
            }
            Task::Attention { q, k, out } => {
                // s_A = m · (K_A Q_A); m pools with weight 1/C for scale.
                let k_in = tape.input(k.clone());
                let kq = tape.matmul(k_in, *q);
                let m = tape.input(Tensor::full(1, batch.n_cols, 1.0 / batch.n_cols as f32));
                let s = tape.matmul(m, kq); // 1 × D
                let st = tape.reshape(s, batch.dim, 1);
                let scores = tape.matmul(v, st); // (N·C) × 1
                let scores = tape.reshape(scores, batch.n, batch.n_cols);
                let scores = tape.scale(scores, 1.0 / (batch.dim as f32).sqrt());
                let bias = tape.input(batch.score_bias.clone());
                let scores = tape.add(scores, bias);
                let alpha = tape.row_softmax(scores);
                let ctx = tape.block_weighted_sum(v, alpha);
                out.forward(tape, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_graph::{GraphConfig, TableGraph};
    use grimp_table::{ColumnKind, Schema, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_diagonal_is_identity() {
        let k = build_k_matrix(KStrategy::Diagonal, 3, 1, &FdSet::empty());
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(k.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn k_target_column_keeps_only_target() {
        let k = build_k_matrix(KStrategy::TargetColumn, 3, 2, &FdSet::empty());
        assert_eq!(k.get(2, 2), 1.0);
        assert_eq!(k.get(0, 0), 0.0);
        assert_eq!(k.get(1, 1), 0.0);
    }

    #[test]
    fn k_weak_diagonal_prefers_target() {
        let k = build_k_matrix(KStrategy::WeakDiagonal, 3, 0, &FdSet::empty());
        assert_eq!(k.get(0, 0), 1.0);
        assert_eq!(k.get(1, 1), 0.5);
        assert_eq!(k.get(2, 2), 0.5);
    }

    #[test]
    fn k_fd_strategy_boosts_related_columns() {
        let fds = FdSet::from_pairs(&[(&[1], 0)]);
        let k = build_k_matrix(KStrategy::WeakDiagonalFd, 3, 0, &fds);
        assert_eq!(k.get(0, 0), 1.0);
        assert_eq!(k.get(1, 1), 0.75); // in an FD with column 0
        assert_eq!(k.get(2, 2), 0.4); // unrelated
    }

    fn tiny_setup() -> (Table, TableGraph) {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(
            schema,
            &[vec![Some("x"), Some("p")], vec![Some("y"), Some("q")]],
        );
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        (t, g)
    }

    #[test]
    fn both_task_kinds_produce_logits_of_domain_size() {
        let (t, g) = tiny_setup();
        let dim = 8;
        for kind in [TaskKind::Linear, TaskKind::Attention] {
            let mut rng = StdRng::seed_from_u64(0);
            let mut tape = Tape::new();
            let task = Task::new(
                &mut tape,
                kind,
                2,
                dim,
                16,
                2, // |Dom(a)| = 2
                0,
                KStrategy::WeakDiagonal,
                &FdSet::empty(),
                None,
                &mut rng,
            );
            tape.freeze();
            let h = tape.input(Tensor::full(g.n_nodes(), dim, 0.3));
            let batch = VectorBatch::build(&g, &t, &[(0, 0), (1, 0)], dim);
            let logits = task.forward(&mut tape, h, &batch);
            assert_eq!(tape.value(logits).shape(), (2, 2));
            assert!(tape.value(logits).all_finite());
        }
    }

    #[test]
    fn attention_task_trains_to_separate_classes() {
        // Column a is perfectly determined by column b: the attention task
        // for a must learn the mapping from b's cell embeddings.
        let (t, g) = tiny_setup();
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        // distinguishable fixed node embeddings
        let mut h_data = Tensor::zeros(g.n_nodes(), dim);
        for node in 0..g.n_nodes() {
            h_data.set(node, node % dim, 1.0);
        }
        let task = Task::new(
            &mut tape,
            TaskKind::Attention,
            2,
            dim,
            16,
            2,
            0,
            KStrategy::WeakDiagonal,
            &FdSet::empty(),
            None,
            &mut rng,
        );
        tape.freeze();
        let mut adam = grimp_tensor::Adam::new(0.05);
        let batch = VectorBatch::build(&g, &t, &[(0, 0), (1, 0)], dim);
        let labels = Rc::new(vec![0u32, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let h = tape.input(h_data.clone());
            let logits = task.forward(&mut tape, h, &batch);
            let loss = tape.softmax_cross_entropy(logits, labels.clone());
            last = tape.value(loss).item();
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }
        assert!(last < 0.1, "attention task failed to fit: {last}");
    }
}

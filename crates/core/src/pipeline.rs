//! The high-level imputation pipeline: validated configuration in, fitted
//! model out.
//!
//! [`Pipeline`] is the front door of the crate for fit-once/impute-many
//! use. It validates the configuration up front (returning a
//! [`ConfigError`] instead of panicking mid-training), and
//! [`Pipeline::fit`] returns a [`FittedModel`] that can impute the
//! training table (transductive, paper §3.7) or — with FastText features —
//! schema-compatible unseen tables (inductive). Every fallible step
//! surfaces as a typed [`GrimpError`] — the pipeline never panics on
//! adversarial input.
//!
//! The kernel backend is part of the validated configuration:
//! `GrimpConfig::builder().backend(BackendKind::Parallel { threads })`
//! runs the hot kernels on the fixed-partition thread pool, with results
//! bit-identical to the default serial backend (see
//! [`grimp_tensor::TensorBackend`]), so checkpoints, traces, and reports
//! carry across backends unchanged.
//!
//! ```
//! use grimp::{GrimpConfig, Pipeline};
//! use grimp_table::{ColumnKind, Schema, Table};
//!
//! let schema = Schema::from_pairs(&[("a", ColumnKind::Categorical)]);
//! let dirty = Table::from_rows(
//!     schema,
//!     &[vec![Some("x")], vec![Some("x")], vec![None]],
//! );
//! let config = GrimpConfig::builder()
//!     .max_epochs(3)
//!     .seed(1)
//!     .build()
//!     .expect("valid config");
//! let mut fitted = Pipeline::new(config)
//!     .expect("validated")
//!     .fit(&dirty)
//!     .expect("non-empty schema");
//! let imputed = fitted.impute(&dirty).expect("training table");
//! assert_eq!(imputed.n_missing(), 0);
//! ```

use grimp_obs::{EventSink, NullSink};
use grimp_table::{FdSet, Table};

use crate::checkpoint::TrainCheckpoint;
use crate::config::{ConfigError, GrimpConfig};
use crate::error::GrimpError;
use crate::model::{fit_model, restore_model, variant_name, FittedModel};

/// A validated, ready-to-fit GRIMP pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    config: GrimpConfig,
    fds: FdSet,
}

impl Pipeline {
    /// Build a pipeline after validating `config` (see
    /// [`GrimpConfig::validate`] for the checks).
    pub fn new(config: GrimpConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Pipeline {
            config,
            fds: FdSet::empty(),
        })
    }

    /// Attach functional dependencies, exploited by the attention `K`
    /// matrices under
    /// [`KStrategy::WeakDiagonalFd`](crate::config::KStrategy::WeakDiagonalFd).
    pub fn with_fds(mut self, fds: FdSet) -> Self {
        self.fds = fds;
        self
    }

    /// The validated configuration.
    pub fn config(&self) -> &GrimpConfig {
        &self.config
    }

    /// The GRIMP variant name this pipeline trains (paper §4.3 naming).
    pub fn name(&self) -> &'static str {
        variant_name(&self.config)
    }

    /// Train on the dirty table (self-supervised) and return the fitted
    /// inference handle.
    ///
    /// # Errors
    /// [`GrimpError::EmptySchema`] when the table has no columns. All other
    /// degenerate inputs fit successfully, with pathological columns
    /// stepped down the degradation ladder
    /// (see [`FittedModel::column_tiers`]).
    pub fn fit(&self, dirty: &Table) -> Result<FittedModel, GrimpError> {
        let mut sink = NullSink;
        self.fit_traced(dirty, &mut sink)
    }

    /// [`Pipeline::fit`] with structured events streamed into `sink` (see
    /// [`grimp_obs::names`] for the vocabulary).
    ///
    /// # Errors
    /// Same contract as [`Pipeline::fit`].
    pub fn fit_traced(
        &self,
        dirty: &Table,
        sink: &mut dyn EventSink,
    ) -> Result<FittedModel, GrimpError> {
        fit_model(&self.config, &self.fds, dirty, sink)
    }

    /// Rebuild a [`FittedModel`] from a saved [`TrainCheckpoint`] without
    /// training — the load path of `grimp serve` and the hot-reload hook
    /// behind its checkpoint-generation rotation.
    ///
    /// The model structure is reconstructed deterministically from `dirty`
    /// and this pipeline's configuration (which must match the fit that
    /// wrote the checkpoint), then the checkpoint's weights are restored
    /// onto it. Unlike [`Pipeline::fit`] with `resume`, no
    /// checkpoint-directory lock is taken and nothing is written, so a
    /// server can restore from a directory a trainer is actively rotating.
    ///
    /// # Errors
    /// [`GrimpError::EmptySchema`] for a zero-column table;
    /// [`GrimpError::Checkpoint`] when the checkpoint's parameter shapes
    /// do not match (it was written by a different table or config).
    pub fn restore(&self, dirty: &Table, ck: &TrainCheckpoint) -> Result<FittedModel, GrimpError> {
        let mut sink = NullSink;
        self.restore_traced(dirty, ck, &mut sink)
    }

    /// [`Pipeline::restore`] with structured events streamed into `sink`.
    ///
    /// # Errors
    /// Same contract as [`Pipeline::restore`].
    pub fn restore_traced(
        &self,
        dirty: &Table,
        ck: &TrainCheckpoint,
        sink: &mut dyn EventSink,
    ) -> Result<FittedModel, GrimpError> {
        restore_model(&self.config, &self.fds, dirty, ck, sink)
    }

    /// Append `rows` to an already-fitted `base` table crash-safely: the
    /// rows are made durable in a write-ahead log (`grimp.wal` inside the
    /// checkpoint directory) before any model work, then applied by a
    /// warm-start fine-tune of the base checkpoint (or a full refit when
    /// the rows introduce new dictionary values), the grown table is
    /// imputed, and the log is rotated to `grimp.wal.applied`. Killed at
    /// any point, re-running the same append replays the log and converges
    /// to the bit-identical outcome (see [`crate::incremental`]).
    ///
    /// Calling with empty `rows` replays a pending log, if any — the
    /// recovery entry point after a crash.
    ///
    /// # Errors
    /// [`crate::ConfigError::AppendWithoutCheckpointDir`] (as a config
    /// error) when the pipeline has no checkpoint directory;
    /// [`GrimpError::PendingAppend`] when a pending log holds different
    /// rows than requested; [`GrimpError::Table`] for malformed rows;
    /// [`GrimpError::Io`] when the log cannot be written or rotated.
    pub fn append(
        &self,
        base: &Table,
        rows: &[crate::WalRow],
    ) -> Result<crate::AppendOutcome, GrimpError> {
        let mut sink = NullSink;
        self.append_traced(base, rows, &mut sink)
    }

    /// [`Pipeline::append`] with structured events streamed into `sink`.
    ///
    /// # Errors
    /// Same contract as [`Pipeline::append`].
    pub fn append_traced(
        &self,
        base: &Table,
        rows: &[crate::WalRow],
        sink: &mut dyn EventSink,
    ) -> Result<crate::AppendOutcome, GrimpError> {
        crate::incremental::append_model(&self.config, &self.fds, base, rows, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 3);
            let b = format!("b{}", i % 3);
            t.push_str_row(&[Some(&a), Some(&b)]);
        }
        t
    }

    fn quick_config() -> GrimpConfig {
        GrimpConfig::builder()
            .feature_dim(8)
            .gnn(grimp_gnn::GnnConfig {
                layers: 2,
                hidden: 8,
                ..Default::default()
            })
            .merge_hidden(16)
            .embed_dim(8)
            .max_epochs(15)
            .patience(15)
            .learning_rate(2e-2)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_rejects_invalid_configs_up_front() {
        let bad = GrimpConfig {
            resume: true,
            ..GrimpConfig::fast()
        };
        assert_eq!(
            Pipeline::new(bad).unwrap_err(),
            ConfigError::ResumeWithoutCheckpointDir
        );
    }

    #[test]
    fn pipeline_names_the_variant() {
        let p = Pipeline::new(GrimpConfig::fast()).unwrap();
        assert_eq!(p.name(), "GRIMP-FT");
        let p = Pipeline::new(GrimpConfig::fast().with_linear_tasks()).unwrap();
        assert_eq!(p.name(), "GRIMP-linear");
    }

    #[test]
    fn fit_then_impute_fills_every_missing_cell() {
        let mut dirty = small_table(45);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let pipeline = Pipeline::new(quick_config()).unwrap();
        let mut fitted = pipeline.fit(&dirty).unwrap();
        assert!(!fitted.is_degraded());
        assert!(fitted.report().epochs_run > 0);
        let imputed = fitted.impute(&dirty).unwrap();
        check_imputation_contract(&dirty, &imputed).unwrap();
        assert_eq!(imputed.n_missing(), 0);
    }

    #[test]
    fn parallel_backend_pipeline_validates_fits_and_reports_its_threads() {
        let mut dirty = small_table(30);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(4));
        let cfg = GrimpConfig::builder()
            .feature_dim(8)
            .merge_hidden(16)
            .embed_dim(8)
            .max_epochs(3)
            .seed(5)
            .backend(grimp_tensor::BackendKind::Parallel { threads: 2 })
            .build()
            .unwrap();
        let mut fitted = Pipeline::new(cfg).unwrap().fit(&dirty).unwrap();
        assert_eq!(fitted.report().backend_threads, 2);
        let imputed = fitted.impute(&dirty).unwrap();
        assert_eq!(imputed.n_missing(), 0);
    }

    #[test]
    fn report_seconds_accumulate_over_imputes() {
        let mut dirty = small_table(30);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(3));
        let mut fitted = Pipeline::new(quick_config()).unwrap().fit(&dirty).unwrap();
        let after_fit = fitted.report().seconds;
        let _ = fitted.impute(&dirty);
        assert!(fitted.report().seconds > after_fit);
    }

    #[test]
    fn restore_rebuilds_an_equivalent_model_from_a_checkpoint() {
        let mut dirty = small_table(45);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let dir = std::env::temp_dir().join(format!("grimp-restore-{}", std::process::id()));
        let cfg = GrimpConfig {
            checkpoint_dir: Some(dir.clone()),
            ..quick_config()
        };
        let pipeline = Pipeline::new(cfg).unwrap();
        let mut fitted = pipeline.fit(&dirty).unwrap();
        let want = fitted.impute(&dirty).unwrap();

        let ck = TrainCheckpoint::load(&dir.join(crate::checkpoint::CHECKPOINT_FILE))
            .expect("final checkpoint written");
        let mut restored = pipeline.restore(&dirty, &ck).expect("restores");
        assert_eq!(restored.report().epochs_run, 0, "restore never trains");
        let got = restored.impute(&dirty).unwrap();
        assert_eq!(got, want, "restored model must impute identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restoring_a_foreign_checkpoint_is_a_typed_error() {
        let mut dirty = small_table(45);
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let dir = std::env::temp_dir().join(format!("grimp-restore-alien-{}", std::process::id()));
        let cfg = GrimpConfig {
            checkpoint_dir: Some(dir.clone()),
            ..quick_config()
        };
        Pipeline::new(cfg).unwrap().fit(&dirty).unwrap();
        let ck = TrainCheckpoint::load(&dir.join(crate::checkpoint::CHECKPOINT_FILE)).unwrap();

        // A table with wider dictionaries produces different task-head
        // shapes: restore must reject the checkpoint instead of silently
        // misloading it.
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut other = Table::empty(schema);
        for i in 0..45 {
            let a = format!("a{}", i % 5);
            let b = format!("b{}", i % 5);
            other.push_str_row(&[Some(&a), Some(&b)]);
        }
        let narrow = Pipeline::new(quick_config()).unwrap();
        match narrow.restore(&other, &ck) {
            Err(GrimpError::Checkpoint { .. }) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("shape-mismatched checkpoint must not restore"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fitting_a_zero_column_table_is_a_typed_error() {
        let dirty = Table::empty(Schema::from_pairs(&[]));
        match Pipeline::new(quick_config()).unwrap().fit(&dirty) {
            Err(GrimpError::EmptySchema) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("a zero-column table must not fit"),
        }
    }
}

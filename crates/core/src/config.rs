//! GRIMP hyperparameters.

use grimp_gnn::GnnConfig;
use grimp_graph::{EmbdiConfig, FeatureSource, GraphConfig};

/// Which task-specific head to use (paper §3.5, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Fully connected layers only — faster, slightly less accurate.
    Linear,
    /// The attention structure of Fig. 6 — the paper's default.
    Attention,
}

/// How the attention selection matrix `K` is built (paper Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KStrategy {
    /// All columns weighted equally.
    Diagonal,
    /// Only the task's own column is attended.
    TargetColumn,
    /// Target column weighted highest, others still considered
    /// (the paper's default).
    WeakDiagonal,
    /// Weak diagonal plus extra weight on columns sharing an FD with the
    /// task's column (GRIMP-A in §4.3).
    WeakDiagonalFd,
}

/// Loss used for categorical tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CategoricalLoss {
    /// Standard softmax cross-entropy.
    CrossEntropy,
    /// Focal loss with the given `γ`.
    Focal(f32),
}

/// Full configuration of a GRIMP model.
#[derive(Clone, Debug)]
pub struct GrimpConfig {
    /// Pre-trained feature strategy (GRIMP-FT / GRIMP-E / random).
    pub features: FeatureSource,
    /// Pre-trained feature dimensionality.
    pub feature_dim: usize,
    /// Graph construction options.
    pub graph: GraphConfig,
    /// EMBDI stage options (used when `features == Embdi`).
    pub embdi: EmbdiConfig,
    /// GNN shape (`L_GNN` layers × `#P_GNN` units).
    pub gnn: GnnConfig,
    /// Hidden width of the shared merge step (`#P_Lin`).
    pub merge_hidden: usize,
    /// Output width of the shared layer = per-column slot width `D` of the
    /// training vectors.
    pub embed_dim: usize,
    /// Task head kind.
    pub task_kind: TaskKind,
    /// Attention `K` strategy.
    pub k_strategy: KStrategy,
    /// Categorical loss.
    pub categorical_loss: CategoricalLoss,
    /// Maximum training epochs (paper: 300 with early termination).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs on validation loss.
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of training samples held out for validation (paper: 20 %).
    pub validation_fraction: f64,
    /// Optional cap on training samples per task per epoch, to bound
    /// runtime on large tables. `None` uses everything.
    pub max_train_samples_per_task: Option<usize>,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Run the pre-optimization training hot path (reference GEMM kernels,
    /// fresh allocation per ephemeral tensor, per-epoch feature clone).
    /// Only useful as a benchmarking baseline; results are numerically
    /// equivalent.
    pub legacy_hot_path: bool,
    /// Global gradient-norm clip threshold. When the L2 norm over all
    /// parameter gradients exceeds it, every gradient is scaled by
    /// `max / norm` before the optimizer step. `None` disables clipping
    /// (the finiteness guard still runs). The default is high enough that a
    /// healthy run is numerically unchanged.
    pub max_grad_norm: Option<f32>,
    /// Divergence-recovery budget: how many times a detected anomaly may
    /// roll training back to the last good epoch (halving the learning rate
    /// each time) before the run degrades to the mode/mean baseline.
    pub max_recoveries: usize,
    /// Write a disk checkpoint every this many completed epochs (only when
    /// [`GrimpConfig::checkpoint_dir`] is set). Values below 1 behave as 1.
    pub checkpoint_every: usize,
    /// Directory for the training checkpoint file. `None` keeps
    /// checkpointing purely in memory (rollback still works; resume does
    /// not).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from the checkpoint in [`GrimpConfig::checkpoint_dir`] when
    /// one exists. An unreadable or corrupt checkpoint is reported in the
    /// [`crate::TrainReport`] and training restarts from scratch.
    pub resume: bool,
    /// Deterministic fault injection for robustness tests: corrupt a chosen
    /// gradient or parameter at a chosen epoch. Compiled only for unit tests
    /// and behind the `fault-injection` cargo feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fault_injection: Option<crate::fault::FaultPlan>,
}

impl Default for GrimpConfig {
    fn default() -> Self {
        GrimpConfig::paper()
    }
}

impl GrimpConfig {
    /// The paper's default configuration: attention tasks with a weak
    /// diagonal `K`, 2×64 GNN, 128-wide merge, 300 epochs with early
    /// termination.
    pub fn paper() -> Self {
        GrimpConfig {
            features: FeatureSource::FastText,
            feature_dim: 32,
            graph: GraphConfig::default(),
            embdi: EmbdiConfig::default(),
            gnn: GnnConfig {
                layers: 2,
                hidden: 64,
                ..Default::default()
            },
            merge_hidden: 128,
            embed_dim: 64,
            task_kind: TaskKind::Attention,
            k_strategy: KStrategy::WeakDiagonal,
            categorical_loss: CategoricalLoss::CrossEntropy,
            max_epochs: 300,
            patience: 10,
            lr: 5e-3,
            validation_fraction: 0.2,
            max_train_samples_per_task: None,
            seed: 0,
            legacy_hot_path: false,
            max_grad_norm: Some(1e4),
            max_recoveries: 2,
            checkpoint_every: 1,
            checkpoint_dir: None,
            resume: false,
            #[cfg(any(test, feature = "fault-injection"))]
            fault_injection: None,
        }
    }

    /// A reduced configuration used by the experiment harness so the full
    /// 10-dataset × 3-missingness × many-algorithms grid finishes on one
    /// machine. Shapes shrink but the architecture is unchanged.
    pub fn fast() -> Self {
        GrimpConfig {
            feature_dim: 32,
            gnn: GnnConfig {
                layers: 2,
                hidden: 48,
                ..Default::default()
            },
            merge_hidden: 96,
            embed_dim: 48,
            max_epochs: 100,
            patience: 10,
            lr: 1e-2,
            max_train_samples_per_task: Some(1200),
            ..GrimpConfig::paper()
        }
    }

    /// Switch to linear task heads.
    pub fn with_linear_tasks(mut self) -> Self {
        self.task_kind = TaskKind::Linear;
        self
    }

    /// Switch the feature source.
    pub fn with_features(mut self, source: FeatureSource) -> Self {
        self.features = source;
        self
    }

    /// Switch the `K` strategy.
    pub fn with_k_strategy(mut self, k: KStrategy) -> Self {
        self.k_strategy = k;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable disk checkpointing into `dir` (written every
    /// [`GrimpConfig::checkpoint_every`] epochs).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from an existing checkpoint in the checkpoint dir.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_shapes() {
        let c = GrimpConfig::paper();
        assert_eq!(c.gnn.layers, 2);
        assert_eq!(c.gnn.hidden, 64);
        assert_eq!(c.merge_hidden, 128);
        assert_eq!(c.max_epochs, 300);
        assert_eq!(c.task_kind, TaskKind::Attention);
        assert_eq!(c.k_strategy, KStrategy::WeakDiagonal);
        assert!((c.validation_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn robustness_defaults_leave_healthy_runs_unchanged() {
        let c = GrimpConfig::paper();
        assert_eq!(c.max_recoveries, 2);
        assert_eq!(c.checkpoint_every, 1);
        assert!(c.checkpoint_dir.is_none());
        assert!(!c.resume);
        // the default clip threshold must sit far above healthy grad norms
        assert!(c.max_grad_norm.unwrap() >= 1e3);
        assert!(c.fault_injection.is_none());
    }

    #[test]
    fn checkpoint_builders_compose() {
        let c = GrimpConfig::fast()
            .with_checkpoint_dir("/tmp/ck")
            .with_resume(true);
        assert_eq!(
            c.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ck"))
        );
        assert!(c.resume);
    }

    #[test]
    fn builders_compose() {
        let c = GrimpConfig::fast()
            .with_linear_tasks()
            .with_k_strategy(KStrategy::Diagonal)
            .with_seed(9);
        assert_eq!(c.task_kind, TaskKind::Linear);
        assert_eq!(c.k_strategy, KStrategy::Diagonal);
        assert_eq!(c.seed, 9);
    }
}

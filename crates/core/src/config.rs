//! GRIMP hyperparameters.

use grimp_gnn::GnnConfig;
use grimp_graph::{EmbdiConfig, FeatureSource, GraphConfig};
use grimp_tensor::BackendKind;

/// Which task-specific head to use (paper §3.5, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Fully connected layers only — faster, slightly less accurate.
    Linear,
    /// The attention structure of Fig. 6 — the paper's default.
    Attention,
}

/// How the attention selection matrix `K` is built (paper Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KStrategy {
    /// All columns weighted equally.
    Diagonal,
    /// Only the task's own column is attended.
    TargetColumn,
    /// Target column weighted highest, others still considered
    /// (the paper's default).
    WeakDiagonal,
    /// Weak diagonal plus extra weight on columns sharing an FD with the
    /// task's column (GRIMP-A in §4.3).
    WeakDiagonalFd,
}

/// Loss used for categorical tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CategoricalLoss {
    /// Standard softmax cross-entropy.
    CrossEntropy,
    /// Focal loss with the given `γ`.
    Focal(f32),
}

/// Neighbor-sampled mini-batch training (the scale path for 100k+-row
/// tables). When set, each epoch trains on one deterministic mini-batch —
/// `batch_rows` samples per task, drawn epoch-indexed from the seed — over
/// a graph whose per-node neighbor lists are capped at `fanout`, so peak
/// task-activation memory scales with the batch instead of the table.
/// `None` (the default) keeps full-batch training, bit-identical to
/// earlier releases.
///
/// The first grouped sub-config of the builder redesign:
/// `GrimpConfig::builder().sampler(SamplerConfig { batch_rows, fanout })`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Training samples drawn per task per epoch (CLI `--batch-rows`).
    /// Tasks with fewer samples use all of them.
    pub batch_rows: usize,
    /// Neighbors kept per node per edge type in the sampled adjacency
    /// (CLI `--fanout`). Nodes with degree at or below the fanout keep
    /// every neighbor.
    pub fanout: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            batch_rows: 4096,
            fanout: 8,
        }
    }
}

impl SamplerConfig {
    /// Field-range checks owned by this sub-config (cross-field checks
    /// against the rest of the configuration live in
    /// [`GrimpConfig::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_rows == 0 {
            return Err(ConfigError::ZeroBatchRows);
        }
        if self.fanout == 0 {
            return Err(ConfigError::ZeroFanout);
        }
        Ok(())
    }
}

/// Warm-start fine-tuning policy for appended rows, grouped for the
/// builder: `GrimpConfig::builder().finetune(FinetuneConfig { .. })`.
///
/// An append replays the WAL delta onto the existing checkpoint and trains
/// at most `epochs` additional epochs (training batches restricted to the
/// appended rows; LR, optimizer moments, and RNG resume from the
/// checkpoint, with the divergence guard and rollback-retry machinery
/// armed exactly as in a full fit). After the fine-tune, a validation-loss
/// regression beyond `drift_band` (relative to the best validation loss)
/// schedules a full refit, recorded in
/// [`crate::TrainReport::refit_scheduled`] and the event trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FinetuneConfig {
    /// Maximum extra epochs a fine-tune may train past the checkpoint it
    /// warm-starts from (CLI `--finetune-epochs`).
    pub epochs: usize,
    /// Relative validation-loss regression band that triggers a scheduled
    /// full refit: drift is flagged when the post-fine-tune validation
    /// loss exceeds `best_val * (1 + drift_band)` (CLI `--drift-band`).
    pub drift_band: f32,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            epochs: 8,
            drift_band: 0.25,
        }
    }
}

impl FinetuneConfig {
    /// Field-range checks owned by this sub-config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.epochs == 0 {
            return Err(ConfigError::ZeroFinetuneEpochs);
        }
        if !(self.drift_band.is_finite() && self.drift_band >= 0.0) {
            return Err(ConfigError::InvalidDriftBand(self.drift_band));
        }
        Ok(())
    }
}

/// Resource-governance bounds, grouped for the builder:
/// `GrimpConfig::builder().limits(ResourceLimits { .. })`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceLimits {
    /// Wall-clock training budget in seconds (`None` disables it); see
    /// [`GrimpConfig::deadline_secs`].
    pub deadline_secs: Option<f64>,
    /// Memory budget in MiB for admission-time downscaling (`None`
    /// disables it); see [`GrimpConfig::memory_budget_mb`].
    pub memory_budget_mb: Option<usize>,
}

impl ResourceLimits {
    /// Field-range checks owned by this sub-config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(deadline) = self.deadline_secs {
            if !(deadline.is_finite() && deadline > 0.0) {
                return Err(ConfigError::InvalidDeadline(deadline));
            }
        }
        if self.memory_budget_mb == Some(0) {
            return Err(ConfigError::ZeroMemoryBudget);
        }
        Ok(())
    }
}

/// Checkpointing and recovery policy, grouped for the builder:
/// `GrimpConfig::builder().checkpointing(CheckpointPolicy { .. })`.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointPolicy {
    /// Directory for the training checkpoint file; see
    /// [`GrimpConfig::checkpoint_dir`].
    pub dir: Option<std::path::PathBuf>,
    /// Write a checkpoint every this many completed epochs; see
    /// [`GrimpConfig::checkpoint_every`].
    pub every: usize,
    /// Resume from an existing checkpoint in `dir`; see
    /// [`GrimpConfig::resume`].
    pub resume: bool,
    /// Divergence-recovery budget; see [`GrimpConfig::max_recoveries`].
    pub max_recoveries: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            dir: None,
            every: 1,
            resume: false,
            max_recoveries: 2,
        }
    }
}

impl CheckpointPolicy {
    /// Cross-field checks owned by this sub-config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.resume && self.dir.is_none() {
            return Err(ConfigError::ResumeWithoutCheckpointDir);
        }
        Ok(())
    }
}

/// Full configuration of a GRIMP model.
#[derive(Clone, Debug)]
pub struct GrimpConfig {
    /// Pre-trained feature strategy (GRIMP-FT / GRIMP-E / random).
    pub features: FeatureSource,
    /// Pre-trained feature dimensionality.
    pub feature_dim: usize,
    /// Graph construction options.
    pub graph: GraphConfig,
    /// EMBDI stage options (used when `features == Embdi`).
    pub embdi: EmbdiConfig,
    /// GNN shape (`L_GNN` layers × `#P_GNN` units).
    pub gnn: GnnConfig,
    /// Hidden width of the shared merge step (`#P_Lin`).
    pub merge_hidden: usize,
    /// Output width of the shared layer = per-column slot width `D` of the
    /// training vectors.
    pub embed_dim: usize,
    /// Task head kind.
    pub task_kind: TaskKind,
    /// Attention `K` strategy.
    pub k_strategy: KStrategy,
    /// Categorical loss.
    pub categorical_loss: CategoricalLoss,
    /// Maximum training epochs (paper: 300 with early termination).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs on validation loss.
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of training samples held out for validation (paper: 20 %).
    pub validation_fraction: f64,
    /// Optional cap on training samples per task per epoch, to bound
    /// runtime on large tables. `None` uses everything.
    pub max_train_samples_per_task: Option<usize>,
    /// Neighbor-sampled mini-batch training. `None` (the default) keeps
    /// the full-batch path, bit-identical to earlier releases; `Some`
    /// trains each epoch on one deterministic mini-batch with
    /// fanout-capped adjacencies, bounding peak memory by the batch shape.
    /// The governor's third downscale rung sets this automatically when a
    /// memory budget cannot be met by capping value nodes or shrinking
    /// dims. Incompatible with [`GrimpConfig::resume`] (a sampled run
    /// cannot continue a full-batch checkpoint without silent divergence;
    /// [`GrimpConfig::validate`] rejects the combination).
    pub sampler: Option<SamplerConfig>,
    /// Warm-start fine-tuning policy for appended rows (extra-epoch bound
    /// and the drift band that schedules a full refit). Only consulted by
    /// the append/incremental path; plain fits ignore it.
    pub finetune: FinetuneConfig,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Run the pre-optimization training hot path (reference GEMM kernels,
    /// fresh allocation per ephemeral tensor, per-epoch feature clone).
    /// Only useful as a benchmarking baseline; results are numerically
    /// equivalent.
    pub legacy_hot_path: bool,
    /// Kernel execution backend for the training hot path. The parallel
    /// backend is bit-identical to the serial one for any thread count, so
    /// this only changes wall-clock time. Ignored by the legacy hot path,
    /// which always runs the reference kernels.
    pub backend: BackendKind,
    /// Global gradient-norm clip threshold. When the L2 norm over all
    /// parameter gradients exceeds it, every gradient is scaled by
    /// `max / norm` before the optimizer step. `None` disables clipping
    /// (the finiteness guard still runs). The default is high enough that a
    /// healthy run is numerically unchanged.
    pub max_grad_norm: Option<f32>,
    /// Divergence-recovery budget: how many times a detected anomaly may
    /// roll training back to the last good epoch (halving the learning rate
    /// each time) before the run degrades to the mode/mean baseline.
    pub max_recoveries: usize,
    /// Write a disk checkpoint every this many completed epochs (only when
    /// [`GrimpConfig::checkpoint_dir`] is set). Values below 1 behave as 1.
    pub checkpoint_every: usize,
    /// Directory for the training checkpoint file. `None` keeps
    /// checkpointing purely in memory (rollback still works; resume does
    /// not).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from the checkpoint in [`GrimpConfig::checkpoint_dir`] when
    /// one exists. An unreadable or corrupt checkpoint is reported in the
    /// [`crate::TrainReport`] and training restarts from scratch.
    pub resume: bool,
    /// Wall-clock training budget in seconds, measured from the start of
    /// `fit`. Checked at every epoch boundary: when it expires, training
    /// checkpoints, stops cleanly, and imputes with whatever epochs
    /// completed ([`crate::TrainReport::deadline_hit`] records the stop).
    /// `None` disables the deadline.
    pub deadline_secs: Option<f64>,
    /// Memory budget in MiB for the graph + tape footprint, enforced at
    /// admission time: the estimated footprint is computed from node /
    /// edge / parameter counts before anything is allocated, and the model
    /// is downscaled deterministically (value-node cap per attribute, then
    /// hidden-dim halving) until it fits. Every decision is recorded in
    /// [`crate::TrainReport::downscales`] and the event trace. `None`
    /// disables the budget.
    pub memory_budget_mb: Option<usize>,
    /// Cooperative shutdown flag, checked at every epoch boundary. When
    /// requested (e.g. from a SIGINT handler), training checkpoints, stops
    /// cleanly, and imputes from the current state
    /// ([`crate::TrainReport::interrupted`] records the stop). `None`
    /// ignores shutdown requests.
    pub shutdown: Option<crate::ShutdownFlag>,
    /// Deterministic IO fault injection for the durable-write path
    /// (checkpoint save/rotate, lock file). Intended for tests and the
    /// chaos harness; also reachable through the `GRIMP_FAULT_FS`
    /// environment variable in the CLI. `None` uses the real filesystem.
    pub io_fault: Option<grimp_obs::IoFaultPlan>,
    /// Deterministic fault injection for robustness tests: corrupt a chosen
    /// gradient or parameter at a chosen epoch. Compiled only for unit tests
    /// and behind the `fault-injection` cargo feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fault_injection: Option<crate::fault::FaultPlan>,
}

impl Default for GrimpConfig {
    fn default() -> Self {
        GrimpConfig::paper()
    }
}

impl GrimpConfig {
    /// The paper's default configuration: attention tasks with a weak
    /// diagonal `K`, 2×64 GNN, 128-wide merge, 300 epochs with early
    /// termination.
    pub fn paper() -> Self {
        GrimpConfig {
            features: FeatureSource::FastText,
            feature_dim: 32,
            graph: GraphConfig::default(),
            embdi: EmbdiConfig::default(),
            gnn: GnnConfig {
                layers: 2,
                hidden: 64,
                ..Default::default()
            },
            merge_hidden: 128,
            embed_dim: 64,
            task_kind: TaskKind::Attention,
            k_strategy: KStrategy::WeakDiagonal,
            categorical_loss: CategoricalLoss::CrossEntropy,
            max_epochs: 300,
            patience: 10,
            lr: 5e-3,
            validation_fraction: 0.2,
            max_train_samples_per_task: None,
            sampler: None,
            finetune: FinetuneConfig::default(),
            seed: 0,
            legacy_hot_path: false,
            backend: BackendKind::Serial,
            max_grad_norm: Some(1e4),
            max_recoveries: 2,
            checkpoint_every: 1,
            checkpoint_dir: None,
            resume: false,
            deadline_secs: None,
            memory_budget_mb: None,
            shutdown: None,
            io_fault: None,
            #[cfg(any(test, feature = "fault-injection"))]
            fault_injection: None,
        }
    }

    /// A reduced configuration used by the experiment harness so the full
    /// 10-dataset × 3-missingness × many-algorithms grid finishes on one
    /// machine. Shapes shrink but the architecture is unchanged.
    pub fn fast() -> Self {
        GrimpConfig {
            feature_dim: 32,
            gnn: GnnConfig {
                layers: 2,
                hidden: 48,
                ..Default::default()
            },
            merge_hidden: 96,
            embed_dim: 48,
            max_epochs: 100,
            patience: 10,
            lr: 1e-2,
            max_train_samples_per_task: Some(1200),
            ..GrimpConfig::paper()
        }
    }

    /// Switch to linear task heads.
    pub fn with_linear_tasks(mut self) -> Self {
        self.task_kind = TaskKind::Linear;
        self
    }

    /// Switch the feature source.
    pub fn with_features(mut self, source: FeatureSource) -> Self {
        self.features = source;
        self
    }

    /// Switch the `K` strategy.
    pub fn with_k_strategy(mut self, k: KStrategy) -> Self {
        self.k_strategy = k;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable disk checkpointing into `dir` (written every
    /// [`GrimpConfig::checkpoint_every`] epochs).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from an existing checkpoint in the checkpoint dir.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// A checked builder seeded from [`GrimpConfig::paper`]. Unlike the
    /// `with_*` shortcuts, [`GrimpConfigBuilder::build`] validates field
    /// ranges *and* cross-field consistency (e.g. resume without a
    /// checkpoint dir), returning a [`ConfigError`] instead of failing
    /// deep inside training.
    pub fn builder() -> GrimpConfigBuilder {
        GrimpConfigBuilder {
            config: GrimpConfig::paper(),
        }
    }

    /// The grouped view of this configuration's resource bounds (the
    /// fields `.limits(..)` writes).
    pub fn limits(&self) -> ResourceLimits {
        ResourceLimits {
            deadline_secs: self.deadline_secs,
            memory_budget_mb: self.memory_budget_mb,
        }
    }

    /// The grouped view of this configuration's checkpointing policy (the
    /// fields `.checkpointing(..)` writes).
    pub fn checkpointing(&self) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: self.checkpoint_dir.clone(),
            every: self.checkpoint_every,
            resume: self.resume,
            max_recoveries: self.max_recoveries,
        }
    }

    /// Check the configuration for values that would make training panic,
    /// loop forever, or silently do nothing. [`crate::Pipeline::new`] and
    /// [`GrimpConfigBuilder::build`] run this for you. Sub-config checks
    /// live on the sub-configs themselves ([`SamplerConfig::validate`],
    /// [`ResourceLimits::validate`], [`CheckpointPolicy::validate`]); this
    /// method runs them all plus the cross-section checks.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.checkpointing().validate()?;
        for (name, dim) in [
            ("feature_dim", self.feature_dim),
            ("gnn.hidden", self.gnn.hidden),
            ("gnn.layers", self.gnn.layers),
            ("merge_hidden", self.merge_hidden),
            ("embed_dim", self.embed_dim),
        ] {
            if dim == 0 {
                return Err(ConfigError::ZeroDim(name));
            }
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(ConfigError::NonPositiveLearningRate(self.lr));
        }
        if !(self.validation_fraction.is_finite() && (0.0..1.0).contains(&self.validation_fraction))
        {
            return Err(ConfigError::InvalidValidationFraction(
                self.validation_fraction,
            ));
        }
        if self.max_epochs == 0 {
            return Err(ConfigError::ZeroEpochs);
        }
        if self.patience == 0 {
            return Err(ConfigError::ZeroPatience);
        }
        if let Some(max) = self.max_grad_norm {
            if !(max.is_finite() && max > 0.0) {
                return Err(ConfigError::InvalidGradClip(max));
            }
        }
        if self.max_train_samples_per_task == Some(0) {
            return Err(ConfigError::ZeroSampleCap);
        }
        self.limits().validate()?;
        self.finetune.validate()?;
        if self.backend.threads() == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if let Some(sampler) = self.sampler {
            sampler.validate()?;
            // Cross-section: a sampled run draws different batches and a
            // different validation layout than a full-batch run, so
            // resuming a full-batch checkpoint under sampling would
            // silently diverge. Reject the combination up front.
            if self.resume {
                return Err(ConfigError::SamplerWithResume);
            }
        }
        Ok(())
    }
}

/// Why a [`GrimpConfigBuilder`] (or [`GrimpConfig::validate`]) rejected a
/// configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `resume` is set but there is no `checkpoint_dir` to resume from.
    ResumeWithoutCheckpointDir,
    /// A layer dimension is zero (the field name says which).
    ZeroDim(&'static str),
    /// The learning rate is zero, negative, or non-finite.
    NonPositiveLearningRate(f32),
    /// The validation fraction is outside `[0, 1)` or non-finite.
    InvalidValidationFraction(f64),
    /// `max_epochs` is zero — training would never run.
    ZeroEpochs,
    /// `patience` is zero — training would stop before the first epoch.
    ZeroPatience,
    /// The gradient-clip threshold is zero, negative, or non-finite.
    InvalidGradClip(f32),
    /// The per-task sample cap is zero — every task batch would be empty.
    ZeroSampleCap,
    /// The wall-clock deadline is zero, negative, or non-finite.
    InvalidDeadline(f64),
    /// The memory budget is zero MiB — nothing could ever be admitted.
    ZeroMemoryBudget,
    /// The parallel backend was requested with zero threads.
    ZeroThreads,
    /// The sampler's per-task mini-batch size is zero — every batch would
    /// be empty.
    ZeroBatchRows,
    /// The sampler's neighbor fanout is zero — every sampled adjacency
    /// would be edgeless.
    ZeroFanout,
    /// Sampling was combined with `resume`: a sampled run cannot continue
    /// a full-batch checkpoint without silently diverging from it.
    SamplerWithResume,
    /// The fine-tune epoch bound is zero — an append could never train.
    ZeroFinetuneEpochs,
    /// The drift band is negative or non-finite.
    InvalidDriftBand(f32),
    /// An append path needs a checkpoint directory to log the WAL into and
    /// resume the fine-tune from.
    AppendWithoutCheckpointDir,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ResumeWithoutCheckpointDir => {
                write!(f, "--resume requires --checkpoint-dir DIR")
            }
            ConfigError::ZeroDim(name) => write!(f, "{name} must be at least 1"),
            ConfigError::NonPositiveLearningRate(lr) => {
                write!(f, "learning rate must be finite and positive, got {lr}")
            }
            ConfigError::InvalidValidationFraction(v) => {
                write!(f, "validation fraction must be in [0, 1), got {v}")
            }
            ConfigError::ZeroEpochs => write!(f, "max_epochs must be at least 1"),
            ConfigError::ZeroPatience => write!(f, "patience must be at least 1"),
            ConfigError::InvalidGradClip(v) => {
                write!(f, "max_grad_norm must be finite and positive, got {v}")
            }
            ConfigError::ZeroSampleCap => {
                write!(f, "max_train_samples_per_task must be at least 1")
            }
            ConfigError::InvalidDeadline(v) => {
                write!(f, "--deadline must be finite and positive, got {v}")
            }
            ConfigError::ZeroMemoryBudget => {
                write!(f, "--memory-budget-mb must be at least 1")
            }
            ConfigError::ZeroThreads => {
                write!(f, "--threads must be at least 1")
            }
            ConfigError::ZeroBatchRows => {
                write!(f, "--batch-rows must be at least 1")
            }
            ConfigError::ZeroFanout => {
                write!(f, "--fanout must be at least 1")
            }
            ConfigError::SamplerWithResume => {
                write!(
                    f,
                    "--batch-rows/--fanout cannot be combined with --resume: \
                     a sampled run cannot continue a full-batch checkpoint"
                )
            }
            ConfigError::ZeroFinetuneEpochs => {
                write!(f, "--finetune-epochs must be at least 1")
            }
            ConfigError::InvalidDriftBand(v) => {
                write!(f, "--drift-band must be finite and non-negative, got {v}")
            }
            ConfigError::AppendWithoutCheckpointDir => {
                write!(f, "appending rows requires --checkpoint-dir DIR")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed, validating builder for [`GrimpConfig`] (start from
/// [`GrimpConfig::builder`]).
///
/// Governance and persistence options are set through grouped
/// sub-configs — [`SamplerConfig`], [`ResourceLimits`],
/// [`CheckpointPolicy`] — rather than one flat setter per field. The old
/// flat setters remain as deprecated delegating shims.
///
/// ```
/// use grimp::{GrimpConfig, ResourceLimits, SamplerConfig};
/// let config = GrimpConfig::builder()
///     .seed(7)
///     .max_epochs(50)
///     .learning_rate(1e-2)
///     .sampler(SamplerConfig {
///         batch_rows: 2048,
///         fanout: 8,
///     })
///     .limits(ResourceLimits {
///         memory_budget_mb: Some(512),
///         ..Default::default()
///     })
///     .build()
///     .expect("valid config");
/// assert_eq!(config.seed, 7);
/// assert_eq!(config.sampler.unwrap().batch_rows, 2048);
/// ```
#[derive(Clone, Debug)]
pub struct GrimpConfigBuilder {
    config: GrimpConfig,
}

impl GrimpConfigBuilder {
    /// Start from an existing configuration instead of the paper defaults.
    pub fn from_config(config: GrimpConfig) -> Self {
        GrimpConfigBuilder { config }
    }

    /// Pre-trained feature strategy.
    pub fn features(mut self, source: FeatureSource) -> Self {
        self.config.features = source;
        self
    }

    /// Pre-trained feature dimensionality.
    pub fn feature_dim(mut self, dim: usize) -> Self {
        self.config.feature_dim = dim;
        self
    }

    /// GNN shape.
    pub fn gnn(mut self, gnn: GnnConfig) -> Self {
        self.config.gnn = gnn;
        self
    }

    /// Hidden width of the shared merge step.
    pub fn merge_hidden(mut self, width: usize) -> Self {
        self.config.merge_hidden = width;
        self
    }

    /// Per-column slot width `D` of the training vectors.
    pub fn embed_dim(mut self, dim: usize) -> Self {
        self.config.embed_dim = dim;
        self
    }

    /// Task head kind.
    pub fn task_kind(mut self, kind: TaskKind) -> Self {
        self.config.task_kind = kind;
        self
    }

    /// Attention `K` strategy.
    pub fn k_strategy(mut self, k: KStrategy) -> Self {
        self.config.k_strategy = k;
        self
    }

    /// Categorical loss.
    pub fn categorical_loss(mut self, loss: CategoricalLoss) -> Self {
        self.config.categorical_loss = loss;
        self
    }

    /// Maximum training epochs.
    pub fn max_epochs(mut self, epochs: usize) -> Self {
        self.config.max_epochs = epochs;
        self
    }

    /// Early-stopping patience in epochs.
    pub fn patience(mut self, patience: usize) -> Self {
        self.config.patience = patience;
        self
    }

    /// Adam learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.config.lr = lr;
        self
    }

    /// Validation holdout fraction.
    pub fn validation_fraction(mut self, fraction: f64) -> Self {
        self.config.validation_fraction = fraction;
        self
    }

    /// Cap on training samples per task per epoch.
    pub fn max_train_samples_per_task(mut self, cap: Option<usize>) -> Self {
        self.config.max_train_samples_per_task = cap;
        self
    }

    /// Neighbor-sampled mini-batch training (grouped sub-config). The
    /// default configuration trains full-batch; setting a sampler bounds
    /// peak memory by `batch_rows`/`fanout` instead of the table size.
    pub fn sampler(mut self, sampler: SamplerConfig) -> Self {
        self.config.sampler = Some(sampler);
        self
    }

    /// Warm-start fine-tuning policy for appended rows (grouped
    /// sub-config): extra-epoch bound and drift band.
    pub fn finetune(mut self, finetune: FinetuneConfig) -> Self {
        self.config.finetune = finetune;
        self
    }

    /// Resource-governance bounds (grouped sub-config): wall-clock
    /// deadline and admission-time memory budget.
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.config.deadline_secs = limits.deadline_secs;
        self.config.memory_budget_mb = limits.memory_budget_mb;
        self
    }

    /// Checkpointing and recovery policy (grouped sub-config): directory,
    /// cadence, resume, and the divergence-recovery budget.
    pub fn checkpointing(mut self, policy: CheckpointPolicy) -> Self {
        self.config.checkpoint_dir = policy.dir;
        self.config.checkpoint_every = policy.every;
        self.config.resume = policy.resume;
        self.config.max_recoveries = policy.max_recoveries;
        self
    }

    /// Seed for every stochastic component.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Run the pre-optimization (benchmark-baseline) training hot path.
    pub fn legacy_hot_path(mut self, legacy: bool) -> Self {
        self.config.legacy_hot_path = legacy;
        self
    }

    /// Kernel execution backend for the training hot path (bit-identical
    /// across backends; only wall-clock time changes).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Global gradient-norm clip threshold (`None` disables clipping).
    pub fn max_grad_norm(mut self, max: Option<f32>) -> Self {
        self.config.max_grad_norm = max;
        self
    }

    /// Divergence-recovery budget.
    #[deprecated(note = "use .checkpointing(CheckpointPolicy { max_recoveries, .. })")]
    pub fn max_recoveries(mut self, budget: usize) -> Self {
        self.config.max_recoveries = budget;
        self
    }

    /// Disk-checkpoint cadence in completed epochs.
    #[deprecated(note = "use .checkpointing(CheckpointPolicy { every, .. })")]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.config.checkpoint_every = every;
        self
    }

    /// Directory for the training checkpoint file.
    #[deprecated(note = "use .checkpointing(CheckpointPolicy { dir, .. })")]
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from an existing checkpoint in the checkpoint dir.
    #[deprecated(note = "use .checkpointing(CheckpointPolicy { resume, .. })")]
    pub fn resume(mut self, resume: bool) -> Self {
        self.config.resume = resume;
        self
    }

    /// Wall-clock training budget in seconds (`None` disables it).
    #[deprecated(note = "use .limits(ResourceLimits { deadline_secs, .. })")]
    pub fn deadline_secs(mut self, deadline: Option<f64>) -> Self {
        self.config.deadline_secs = deadline;
        self
    }

    /// Memory budget in MiB for admission-time downscaling (`None`
    /// disables it).
    #[deprecated(note = "use .limits(ResourceLimits { memory_budget_mb, .. })")]
    pub fn memory_budget_mb(mut self, budget: Option<usize>) -> Self {
        self.config.memory_budget_mb = budget;
        self
    }

    /// Cooperative shutdown flag checked at epoch boundaries.
    pub fn shutdown(mut self, flag: crate::ShutdownFlag) -> Self {
        self.config.shutdown = Some(flag);
        self
    }

    /// Deterministic IO fault plan for the durable-write path.
    pub fn io_fault(mut self, plan: Option<grimp_obs::IoFaultPlan>) -> Self {
        self.config.io_fault = plan;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<GrimpConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_shapes() {
        let c = GrimpConfig::paper();
        assert_eq!(c.gnn.layers, 2);
        assert_eq!(c.gnn.hidden, 64);
        assert_eq!(c.merge_hidden, 128);
        assert_eq!(c.max_epochs, 300);
        assert_eq!(c.task_kind, TaskKind::Attention);
        assert_eq!(c.k_strategy, KStrategy::WeakDiagonal);
        assert!((c.validation_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn robustness_defaults_leave_healthy_runs_unchanged() {
        let c = GrimpConfig::paper();
        assert_eq!(c.max_recoveries, 2);
        assert_eq!(c.checkpoint_every, 1);
        assert!(c.checkpoint_dir.is_none());
        assert!(!c.resume);
        // the default clip threshold must sit far above healthy grad norms
        assert!(c.max_grad_norm.unwrap() >= 1e3);
        assert!(c.fault_injection.is_none());
    }

    #[test]
    fn checkpoint_builders_compose() {
        let c = GrimpConfig::fast()
            .with_checkpoint_dir("/tmp/ck")
            .with_resume(true);
        assert_eq!(
            c.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ck"))
        );
        assert!(c.resume);
    }

    #[test]
    fn builder_accepts_a_sane_config_and_applies_setters() {
        let c = GrimpConfig::builder()
            .seed(9)
            .task_kind(TaskKind::Linear)
            .k_strategy(KStrategy::Diagonal)
            .max_epochs(40)
            .learning_rate(1e-2)
            .checkpointing(CheckpointPolicy {
                dir: Some("/tmp/ck".into()),
                resume: true,
                ..Default::default()
            })
            .build()
            .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.task_kind, TaskKind::Linear);
        assert_eq!(c.k_strategy, KStrategy::Diagonal);
        assert_eq!(c.max_epochs, 40);
        assert!(c.resume);
    }

    #[test]
    fn builder_rejects_resume_without_checkpoint_dir() {
        let err = GrimpConfig::builder()
            .checkpointing(CheckpointPolicy {
                resume: true,
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ResumeWithoutCheckpointDir);
        assert!(err.to_string().contains("--checkpoint-dir"));
    }

    #[test]
    fn builder_rejects_degenerate_values() {
        assert_eq!(
            GrimpConfig::builder().embed_dim(0).build().unwrap_err(),
            ConfigError::ZeroDim("embed_dim")
        );
        assert!(matches!(
            GrimpConfig::builder().learning_rate(0.0).build(),
            Err(ConfigError::NonPositiveLearningRate(_))
        ));
        assert!(matches!(
            GrimpConfig::builder().learning_rate(f32::NAN).build(),
            Err(ConfigError::NonPositiveLearningRate(_))
        ));
        assert!(matches!(
            GrimpConfig::builder().validation_fraction(1.0).build(),
            Err(ConfigError::InvalidValidationFraction(_))
        ));
        assert_eq!(
            GrimpConfig::builder().max_epochs(0).build().unwrap_err(),
            ConfigError::ZeroEpochs
        );
        assert_eq!(
            GrimpConfig::builder().patience(0).build().unwrap_err(),
            ConfigError::ZeroPatience
        );
        assert!(matches!(
            GrimpConfig::builder()
                .max_grad_norm(Some(-1.0))
                .build()
                .unwrap_err(),
            ConfigError::InvalidGradClip(_)
        ));
        assert_eq!(
            GrimpConfig::builder()
                .backend(BackendKind::Parallel { threads: 0 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroThreads
        );
        assert!(GrimpConfig::builder()
            .backend(BackendKind::Parallel { threads: 2 })
            .build()
            .is_ok());
        assert_eq!(
            GrimpConfig::builder()
                .max_train_samples_per_task(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroSampleCap
        );
        assert!(matches!(
            GrimpConfig::builder()
                .limits(ResourceLimits {
                    deadline_secs: Some(0.0),
                    ..Default::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::InvalidDeadline(_)
        ));
        assert!(matches!(
            GrimpConfig::builder()
                .limits(ResourceLimits {
                    deadline_secs: Some(f64::NAN),
                    ..Default::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::InvalidDeadline(_)
        ));
        assert_eq!(
            GrimpConfig::builder()
                .limits(ResourceLimits {
                    memory_budget_mb: Some(0),
                    ..Default::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroMemoryBudget
        );
    }

    #[test]
    fn governance_fields_default_off_and_compose() {
        let c = GrimpConfig::paper();
        assert!(c.deadline_secs.is_none());
        assert!(c.memory_budget_mb.is_none());
        assert!(c.shutdown.is_none());
        assert!(c.io_fault.is_none());

        let flag = crate::ShutdownFlag::new();
        let c = GrimpConfig::builder()
            .limits(ResourceLimits {
                deadline_secs: Some(12.5),
                memory_budget_mb: Some(256),
            })
            .shutdown(flag.clone())
            .build()
            .unwrap();
        assert_eq!(c.deadline_secs, Some(12.5));
        assert_eq!(c.memory_budget_mb, Some(256));
        flag.request();
        assert!(c.shutdown.as_ref().unwrap().is_requested());
    }

    #[test]
    fn sampler_defaults_off_and_validates() {
        assert!(GrimpConfig::paper().sampler.is_none());
        assert!(GrimpConfig::fast().sampler.is_none());

        let d = SamplerConfig::default();
        assert_eq!(d.batch_rows, 4096);
        assert_eq!(d.fanout, 8);
        d.validate().unwrap();

        let c = GrimpConfig::builder()
            .sampler(SamplerConfig {
                batch_rows: 512,
                fanout: 4,
            })
            .build()
            .unwrap();
        assert_eq!(
            c.sampler,
            Some(SamplerConfig {
                batch_rows: 512,
                fanout: 4
            })
        );
    }

    #[test]
    fn sampler_rejects_zero_batch_rows_and_fanout() {
        assert_eq!(
            GrimpConfig::builder()
                .sampler(SamplerConfig {
                    batch_rows: 0,
                    fanout: 8
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroBatchRows
        );
        assert_eq!(
            GrimpConfig::builder()
                .sampler(SamplerConfig {
                    batch_rows: 64,
                    fanout: 0
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroFanout
        );
    }

    #[test]
    fn sampler_combined_with_resume_is_a_typed_error() {
        let err = GrimpConfig::builder()
            .sampler(SamplerConfig::default())
            .checkpointing(CheckpointPolicy {
                dir: Some("/tmp/ck".into()),
                resume: true,
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::SamplerWithResume);
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    #[test]
    fn grouped_views_round_trip_the_flat_fields() {
        let c = GrimpConfig::builder()
            .limits(ResourceLimits {
                deadline_secs: Some(2.0),
                memory_budget_mb: Some(128),
            })
            .checkpointing(CheckpointPolicy {
                dir: Some("/tmp/rt".into()),
                every: 3,
                resume: false,
                max_recoveries: 5,
            })
            .build()
            .unwrap();
        assert_eq!(
            c.limits(),
            ResourceLimits {
                deadline_secs: Some(2.0),
                memory_budget_mb: Some(128),
            }
        );
        assert_eq!(
            c.checkpointing(),
            CheckpointPolicy {
                dir: Some("/tmp/rt".into()),
                every: 3,
                resume: false,
                max_recoveries: 5,
            }
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_flat_setters_still_delegate() {
        let c = GrimpConfig::builder()
            .checkpoint_dir("/tmp/shim")
            .resume(true)
            .checkpoint_every(2)
            .max_recoveries(4)
            .deadline_secs(Some(9.0))
            .memory_budget_mb(Some(64))
            .build()
            .unwrap();
        assert_eq!(
            c.checkpointing(),
            CheckpointPolicy {
                dir: Some("/tmp/shim".into()),
                every: 2,
                resume: true,
                max_recoveries: 4,
            }
        );
        assert_eq!(
            c.limits(),
            ResourceLimits {
                deadline_secs: Some(9.0),
                memory_budget_mb: Some(64),
            }
        );
    }

    #[test]
    fn from_config_builder_keeps_the_seed_config() {
        let c = GrimpConfigBuilder::from_config(GrimpConfig::fast())
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(c.max_epochs, GrimpConfig::fast().max_epochs);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn default_configs_validate() {
        GrimpConfig::paper().validate().unwrap();
        GrimpConfig::fast().validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = GrimpConfig::fast()
            .with_linear_tasks()
            .with_k_strategy(KStrategy::Diagonal)
            .with_seed(9);
        assert_eq!(c.task_kind, TaskKind::Linear);
        assert_eq!(c.k_strategy, KStrategy::Diagonal);
        assert_eq!(c.seed, 9);
    }
}

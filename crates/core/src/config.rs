//! GRIMP hyperparameters.

use grimp_gnn::GnnConfig;
use grimp_graph::{EmbdiConfig, FeatureSource, GraphConfig};
use grimp_tensor::BackendKind;

/// Which task-specific head to use (paper §3.5, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Fully connected layers only — faster, slightly less accurate.
    Linear,
    /// The attention structure of Fig. 6 — the paper's default.
    Attention,
}

/// How the attention selection matrix `K` is built (paper Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KStrategy {
    /// All columns weighted equally.
    Diagonal,
    /// Only the task's own column is attended.
    TargetColumn,
    /// Target column weighted highest, others still considered
    /// (the paper's default).
    WeakDiagonal,
    /// Weak diagonal plus extra weight on columns sharing an FD with the
    /// task's column (GRIMP-A in §4.3).
    WeakDiagonalFd,
}

/// Loss used for categorical tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CategoricalLoss {
    /// Standard softmax cross-entropy.
    CrossEntropy,
    /// Focal loss with the given `γ`.
    Focal(f32),
}

/// Full configuration of a GRIMP model.
#[derive(Clone, Debug)]
pub struct GrimpConfig {
    /// Pre-trained feature strategy (GRIMP-FT / GRIMP-E / random).
    pub features: FeatureSource,
    /// Pre-trained feature dimensionality.
    pub feature_dim: usize,
    /// Graph construction options.
    pub graph: GraphConfig,
    /// EMBDI stage options (used when `features == Embdi`).
    pub embdi: EmbdiConfig,
    /// GNN shape (`L_GNN` layers × `#P_GNN` units).
    pub gnn: GnnConfig,
    /// Hidden width of the shared merge step (`#P_Lin`).
    pub merge_hidden: usize,
    /// Output width of the shared layer = per-column slot width `D` of the
    /// training vectors.
    pub embed_dim: usize,
    /// Task head kind.
    pub task_kind: TaskKind,
    /// Attention `K` strategy.
    pub k_strategy: KStrategy,
    /// Categorical loss.
    pub categorical_loss: CategoricalLoss,
    /// Maximum training epochs (paper: 300 with early termination).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs on validation loss.
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of training samples held out for validation (paper: 20 %).
    pub validation_fraction: f64,
    /// Optional cap on training samples per task per epoch, to bound
    /// runtime on large tables. `None` uses everything.
    pub max_train_samples_per_task: Option<usize>,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Run the pre-optimization training hot path (reference GEMM kernels,
    /// fresh allocation per ephemeral tensor, per-epoch feature clone).
    /// Only useful as a benchmarking baseline; results are numerically
    /// equivalent.
    pub legacy_hot_path: bool,
    /// Kernel execution backend for the training hot path. The parallel
    /// backend is bit-identical to the serial one for any thread count, so
    /// this only changes wall-clock time. Ignored by the legacy hot path,
    /// which always runs the reference kernels.
    pub backend: BackendKind,
    /// Global gradient-norm clip threshold. When the L2 norm over all
    /// parameter gradients exceeds it, every gradient is scaled by
    /// `max / norm` before the optimizer step. `None` disables clipping
    /// (the finiteness guard still runs). The default is high enough that a
    /// healthy run is numerically unchanged.
    pub max_grad_norm: Option<f32>,
    /// Divergence-recovery budget: how many times a detected anomaly may
    /// roll training back to the last good epoch (halving the learning rate
    /// each time) before the run degrades to the mode/mean baseline.
    pub max_recoveries: usize,
    /// Write a disk checkpoint every this many completed epochs (only when
    /// [`GrimpConfig::checkpoint_dir`] is set). Values below 1 behave as 1.
    pub checkpoint_every: usize,
    /// Directory for the training checkpoint file. `None` keeps
    /// checkpointing purely in memory (rollback still works; resume does
    /// not).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from the checkpoint in [`GrimpConfig::checkpoint_dir`] when
    /// one exists. An unreadable or corrupt checkpoint is reported in the
    /// [`crate::TrainReport`] and training restarts from scratch.
    pub resume: bool,
    /// Wall-clock training budget in seconds, measured from the start of
    /// `fit`. Checked at every epoch boundary: when it expires, training
    /// checkpoints, stops cleanly, and imputes with whatever epochs
    /// completed ([`crate::TrainReport::deadline_hit`] records the stop).
    /// `None` disables the deadline.
    pub deadline_secs: Option<f64>,
    /// Memory budget in MiB for the graph + tape footprint, enforced at
    /// admission time: the estimated footprint is computed from node /
    /// edge / parameter counts before anything is allocated, and the model
    /// is downscaled deterministically (value-node cap per attribute, then
    /// hidden-dim halving) until it fits. Every decision is recorded in
    /// [`crate::TrainReport::downscales`] and the event trace. `None`
    /// disables the budget.
    pub memory_budget_mb: Option<usize>,
    /// Cooperative shutdown flag, checked at every epoch boundary. When
    /// requested (e.g. from a SIGINT handler), training checkpoints, stops
    /// cleanly, and imputes from the current state
    /// ([`crate::TrainReport::interrupted`] records the stop). `None`
    /// ignores shutdown requests.
    pub shutdown: Option<crate::ShutdownFlag>,
    /// Deterministic IO fault injection for the durable-write path
    /// (checkpoint save/rotate, lock file). Intended for tests and the
    /// chaos harness; also reachable through the `GRIMP_FAULT_FS`
    /// environment variable in the CLI. `None` uses the real filesystem.
    pub io_fault: Option<grimp_obs::IoFaultPlan>,
    /// Deterministic fault injection for robustness tests: corrupt a chosen
    /// gradient or parameter at a chosen epoch. Compiled only for unit tests
    /// and behind the `fault-injection` cargo feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fault_injection: Option<crate::fault::FaultPlan>,
}

impl Default for GrimpConfig {
    fn default() -> Self {
        GrimpConfig::paper()
    }
}

impl GrimpConfig {
    /// The paper's default configuration: attention tasks with a weak
    /// diagonal `K`, 2×64 GNN, 128-wide merge, 300 epochs with early
    /// termination.
    pub fn paper() -> Self {
        GrimpConfig {
            features: FeatureSource::FastText,
            feature_dim: 32,
            graph: GraphConfig::default(),
            embdi: EmbdiConfig::default(),
            gnn: GnnConfig {
                layers: 2,
                hidden: 64,
                ..Default::default()
            },
            merge_hidden: 128,
            embed_dim: 64,
            task_kind: TaskKind::Attention,
            k_strategy: KStrategy::WeakDiagonal,
            categorical_loss: CategoricalLoss::CrossEntropy,
            max_epochs: 300,
            patience: 10,
            lr: 5e-3,
            validation_fraction: 0.2,
            max_train_samples_per_task: None,
            seed: 0,
            legacy_hot_path: false,
            backend: BackendKind::Serial,
            max_grad_norm: Some(1e4),
            max_recoveries: 2,
            checkpoint_every: 1,
            checkpoint_dir: None,
            resume: false,
            deadline_secs: None,
            memory_budget_mb: None,
            shutdown: None,
            io_fault: None,
            #[cfg(any(test, feature = "fault-injection"))]
            fault_injection: None,
        }
    }

    /// A reduced configuration used by the experiment harness so the full
    /// 10-dataset × 3-missingness × many-algorithms grid finishes on one
    /// machine. Shapes shrink but the architecture is unchanged.
    pub fn fast() -> Self {
        GrimpConfig {
            feature_dim: 32,
            gnn: GnnConfig {
                layers: 2,
                hidden: 48,
                ..Default::default()
            },
            merge_hidden: 96,
            embed_dim: 48,
            max_epochs: 100,
            patience: 10,
            lr: 1e-2,
            max_train_samples_per_task: Some(1200),
            ..GrimpConfig::paper()
        }
    }

    /// Switch to linear task heads.
    pub fn with_linear_tasks(mut self) -> Self {
        self.task_kind = TaskKind::Linear;
        self
    }

    /// Switch the feature source.
    pub fn with_features(mut self, source: FeatureSource) -> Self {
        self.features = source;
        self
    }

    /// Switch the `K` strategy.
    pub fn with_k_strategy(mut self, k: KStrategy) -> Self {
        self.k_strategy = k;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable disk checkpointing into `dir` (written every
    /// [`GrimpConfig::checkpoint_every`] epochs).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from an existing checkpoint in the checkpoint dir.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// A checked builder seeded from [`GrimpConfig::paper`]. Unlike the
    /// `with_*` shortcuts, [`GrimpConfigBuilder::build`] validates field
    /// ranges *and* cross-field consistency (e.g. resume without a
    /// checkpoint dir), returning a [`ConfigError`] instead of failing
    /// deep inside training.
    pub fn builder() -> GrimpConfigBuilder {
        GrimpConfigBuilder {
            config: GrimpConfig::paper(),
        }
    }

    /// Check the configuration for values that would make training panic,
    /// loop forever, or silently do nothing. [`crate::Pipeline::new`] and
    /// [`GrimpConfigBuilder::build`] run this for you.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.resume && self.checkpoint_dir.is_none() {
            return Err(ConfigError::ResumeWithoutCheckpointDir);
        }
        for (name, dim) in [
            ("feature_dim", self.feature_dim),
            ("gnn.hidden", self.gnn.hidden),
            ("gnn.layers", self.gnn.layers),
            ("merge_hidden", self.merge_hidden),
            ("embed_dim", self.embed_dim),
        ] {
            if dim == 0 {
                return Err(ConfigError::ZeroDim(name));
            }
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(ConfigError::NonPositiveLearningRate(self.lr));
        }
        if !(self.validation_fraction.is_finite() && (0.0..1.0).contains(&self.validation_fraction))
        {
            return Err(ConfigError::InvalidValidationFraction(
                self.validation_fraction,
            ));
        }
        if self.max_epochs == 0 {
            return Err(ConfigError::ZeroEpochs);
        }
        if self.patience == 0 {
            return Err(ConfigError::ZeroPatience);
        }
        if let Some(max) = self.max_grad_norm {
            if !(max.is_finite() && max > 0.0) {
                return Err(ConfigError::InvalidGradClip(max));
            }
        }
        if self.max_train_samples_per_task == Some(0) {
            return Err(ConfigError::ZeroSampleCap);
        }
        if let Some(deadline) = self.deadline_secs {
            if !(deadline.is_finite() && deadline > 0.0) {
                return Err(ConfigError::InvalidDeadline(deadline));
            }
        }
        if self.memory_budget_mb == Some(0) {
            return Err(ConfigError::ZeroMemoryBudget);
        }
        if self.backend.threads() == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(())
    }
}

/// Why a [`GrimpConfigBuilder`] (or [`GrimpConfig::validate`]) rejected a
/// configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `resume` is set but there is no `checkpoint_dir` to resume from.
    ResumeWithoutCheckpointDir,
    /// A layer dimension is zero (the field name says which).
    ZeroDim(&'static str),
    /// The learning rate is zero, negative, or non-finite.
    NonPositiveLearningRate(f32),
    /// The validation fraction is outside `[0, 1)` or non-finite.
    InvalidValidationFraction(f64),
    /// `max_epochs` is zero — training would never run.
    ZeroEpochs,
    /// `patience` is zero — training would stop before the first epoch.
    ZeroPatience,
    /// The gradient-clip threshold is zero, negative, or non-finite.
    InvalidGradClip(f32),
    /// The per-task sample cap is zero — every task batch would be empty.
    ZeroSampleCap,
    /// The wall-clock deadline is zero, negative, or non-finite.
    InvalidDeadline(f64),
    /// The memory budget is zero MiB — nothing could ever be admitted.
    ZeroMemoryBudget,
    /// The parallel backend was requested with zero threads.
    ZeroThreads,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ResumeWithoutCheckpointDir => {
                write!(f, "--resume requires --checkpoint-dir DIR")
            }
            ConfigError::ZeroDim(name) => write!(f, "{name} must be at least 1"),
            ConfigError::NonPositiveLearningRate(lr) => {
                write!(f, "learning rate must be finite and positive, got {lr}")
            }
            ConfigError::InvalidValidationFraction(v) => {
                write!(f, "validation fraction must be in [0, 1), got {v}")
            }
            ConfigError::ZeroEpochs => write!(f, "max_epochs must be at least 1"),
            ConfigError::ZeroPatience => write!(f, "patience must be at least 1"),
            ConfigError::InvalidGradClip(v) => {
                write!(f, "max_grad_norm must be finite and positive, got {v}")
            }
            ConfigError::ZeroSampleCap => {
                write!(f, "max_train_samples_per_task must be at least 1")
            }
            ConfigError::InvalidDeadline(v) => {
                write!(f, "--deadline must be finite and positive, got {v}")
            }
            ConfigError::ZeroMemoryBudget => {
                write!(f, "--memory-budget-mb must be at least 1")
            }
            ConfigError::ZeroThreads => {
                write!(f, "--threads must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed, validating builder for [`GrimpConfig`] (start from
/// [`GrimpConfig::builder`]).
///
/// ```
/// use grimp::GrimpConfig;
/// let config = GrimpConfig::builder()
///     .seed(7)
///     .max_epochs(50)
///     .learning_rate(1e-2)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Clone, Debug)]
pub struct GrimpConfigBuilder {
    config: GrimpConfig,
}

impl GrimpConfigBuilder {
    /// Start from an existing configuration instead of the paper defaults.
    pub fn from_config(config: GrimpConfig) -> Self {
        GrimpConfigBuilder { config }
    }

    /// Pre-trained feature strategy.
    pub fn features(mut self, source: FeatureSource) -> Self {
        self.config.features = source;
        self
    }

    /// Pre-trained feature dimensionality.
    pub fn feature_dim(mut self, dim: usize) -> Self {
        self.config.feature_dim = dim;
        self
    }

    /// GNN shape.
    pub fn gnn(mut self, gnn: GnnConfig) -> Self {
        self.config.gnn = gnn;
        self
    }

    /// Hidden width of the shared merge step.
    pub fn merge_hidden(mut self, width: usize) -> Self {
        self.config.merge_hidden = width;
        self
    }

    /// Per-column slot width `D` of the training vectors.
    pub fn embed_dim(mut self, dim: usize) -> Self {
        self.config.embed_dim = dim;
        self
    }

    /// Task head kind.
    pub fn task_kind(mut self, kind: TaskKind) -> Self {
        self.config.task_kind = kind;
        self
    }

    /// Attention `K` strategy.
    pub fn k_strategy(mut self, k: KStrategy) -> Self {
        self.config.k_strategy = k;
        self
    }

    /// Categorical loss.
    pub fn categorical_loss(mut self, loss: CategoricalLoss) -> Self {
        self.config.categorical_loss = loss;
        self
    }

    /// Maximum training epochs.
    pub fn max_epochs(mut self, epochs: usize) -> Self {
        self.config.max_epochs = epochs;
        self
    }

    /// Early-stopping patience in epochs.
    pub fn patience(mut self, patience: usize) -> Self {
        self.config.patience = patience;
        self
    }

    /// Adam learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.config.lr = lr;
        self
    }

    /// Validation holdout fraction.
    pub fn validation_fraction(mut self, fraction: f64) -> Self {
        self.config.validation_fraction = fraction;
        self
    }

    /// Cap on training samples per task per epoch.
    pub fn max_train_samples_per_task(mut self, cap: Option<usize>) -> Self {
        self.config.max_train_samples_per_task = cap;
        self
    }

    /// Seed for every stochastic component.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Run the pre-optimization (benchmark-baseline) training hot path.
    pub fn legacy_hot_path(mut self, legacy: bool) -> Self {
        self.config.legacy_hot_path = legacy;
        self
    }

    /// Kernel execution backend for the training hot path (bit-identical
    /// across backends; only wall-clock time changes).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Global gradient-norm clip threshold (`None` disables clipping).
    pub fn max_grad_norm(mut self, max: Option<f32>) -> Self {
        self.config.max_grad_norm = max;
        self
    }

    /// Divergence-recovery budget.
    pub fn max_recoveries(mut self, budget: usize) -> Self {
        self.config.max_recoveries = budget;
        self
    }

    /// Disk-checkpoint cadence in completed epochs.
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.config.checkpoint_every = every;
        self
    }

    /// Directory for the training checkpoint file.
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from an existing checkpoint in the checkpoint dir.
    pub fn resume(mut self, resume: bool) -> Self {
        self.config.resume = resume;
        self
    }

    /// Wall-clock training budget in seconds (`None` disables it).
    pub fn deadline_secs(mut self, deadline: Option<f64>) -> Self {
        self.config.deadline_secs = deadline;
        self
    }

    /// Memory budget in MiB for admission-time downscaling (`None`
    /// disables it).
    pub fn memory_budget_mb(mut self, budget: Option<usize>) -> Self {
        self.config.memory_budget_mb = budget;
        self
    }

    /// Cooperative shutdown flag checked at epoch boundaries.
    pub fn shutdown(mut self, flag: crate::ShutdownFlag) -> Self {
        self.config.shutdown = Some(flag);
        self
    }

    /// Deterministic IO fault plan for the durable-write path.
    pub fn io_fault(mut self, plan: Option<grimp_obs::IoFaultPlan>) -> Self {
        self.config.io_fault = plan;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<GrimpConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_shapes() {
        let c = GrimpConfig::paper();
        assert_eq!(c.gnn.layers, 2);
        assert_eq!(c.gnn.hidden, 64);
        assert_eq!(c.merge_hidden, 128);
        assert_eq!(c.max_epochs, 300);
        assert_eq!(c.task_kind, TaskKind::Attention);
        assert_eq!(c.k_strategy, KStrategy::WeakDiagonal);
        assert!((c.validation_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn robustness_defaults_leave_healthy_runs_unchanged() {
        let c = GrimpConfig::paper();
        assert_eq!(c.max_recoveries, 2);
        assert_eq!(c.checkpoint_every, 1);
        assert!(c.checkpoint_dir.is_none());
        assert!(!c.resume);
        // the default clip threshold must sit far above healthy grad norms
        assert!(c.max_grad_norm.unwrap() >= 1e3);
        assert!(c.fault_injection.is_none());
    }

    #[test]
    fn checkpoint_builders_compose() {
        let c = GrimpConfig::fast()
            .with_checkpoint_dir("/tmp/ck")
            .with_resume(true);
        assert_eq!(
            c.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ck"))
        );
        assert!(c.resume);
    }

    #[test]
    fn builder_accepts_a_sane_config_and_applies_setters() {
        let c = GrimpConfig::builder()
            .seed(9)
            .task_kind(TaskKind::Linear)
            .k_strategy(KStrategy::Diagonal)
            .max_epochs(40)
            .learning_rate(1e-2)
            .checkpoint_dir("/tmp/ck")
            .resume(true)
            .build()
            .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.task_kind, TaskKind::Linear);
        assert_eq!(c.k_strategy, KStrategy::Diagonal);
        assert_eq!(c.max_epochs, 40);
        assert!(c.resume);
    }

    #[test]
    fn builder_rejects_resume_without_checkpoint_dir() {
        let err = GrimpConfig::builder().resume(true).build().unwrap_err();
        assert_eq!(err, ConfigError::ResumeWithoutCheckpointDir);
        assert!(err.to_string().contains("--checkpoint-dir"));
    }

    #[test]
    fn builder_rejects_degenerate_values() {
        assert_eq!(
            GrimpConfig::builder().embed_dim(0).build().unwrap_err(),
            ConfigError::ZeroDim("embed_dim")
        );
        assert!(matches!(
            GrimpConfig::builder().learning_rate(0.0).build(),
            Err(ConfigError::NonPositiveLearningRate(_))
        ));
        assert!(matches!(
            GrimpConfig::builder().learning_rate(f32::NAN).build(),
            Err(ConfigError::NonPositiveLearningRate(_))
        ));
        assert!(matches!(
            GrimpConfig::builder().validation_fraction(1.0).build(),
            Err(ConfigError::InvalidValidationFraction(_))
        ));
        assert_eq!(
            GrimpConfig::builder().max_epochs(0).build().unwrap_err(),
            ConfigError::ZeroEpochs
        );
        assert_eq!(
            GrimpConfig::builder().patience(0).build().unwrap_err(),
            ConfigError::ZeroPatience
        );
        assert!(matches!(
            GrimpConfig::builder()
                .max_grad_norm(Some(-1.0))
                .build()
                .unwrap_err(),
            ConfigError::InvalidGradClip(_)
        ));
        assert_eq!(
            GrimpConfig::builder()
                .backend(BackendKind::Parallel { threads: 0 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroThreads
        );
        assert!(GrimpConfig::builder()
            .backend(BackendKind::Parallel { threads: 2 })
            .build()
            .is_ok());
        assert_eq!(
            GrimpConfig::builder()
                .max_train_samples_per_task(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroSampleCap
        );
        assert!(matches!(
            GrimpConfig::builder()
                .deadline_secs(Some(0.0))
                .build()
                .unwrap_err(),
            ConfigError::InvalidDeadline(_)
        ));
        assert!(matches!(
            GrimpConfig::builder()
                .deadline_secs(Some(f64::NAN))
                .build()
                .unwrap_err(),
            ConfigError::InvalidDeadline(_)
        ));
        assert_eq!(
            GrimpConfig::builder()
                .memory_budget_mb(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroMemoryBudget
        );
    }

    #[test]
    fn governance_fields_default_off_and_compose() {
        let c = GrimpConfig::paper();
        assert!(c.deadline_secs.is_none());
        assert!(c.memory_budget_mb.is_none());
        assert!(c.shutdown.is_none());
        assert!(c.io_fault.is_none());

        let flag = crate::ShutdownFlag::new();
        let c = GrimpConfig::builder()
            .deadline_secs(Some(12.5))
            .memory_budget_mb(Some(256))
            .shutdown(flag.clone())
            .build()
            .unwrap();
        assert_eq!(c.deadline_secs, Some(12.5));
        assert_eq!(c.memory_budget_mb, Some(256));
        flag.request();
        assert!(c.shutdown.as_ref().unwrap().is_requested());
    }

    #[test]
    fn from_config_builder_keeps_the_seed_config() {
        let c = GrimpConfigBuilder::from_config(GrimpConfig::fast())
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(c.max_epochs, GrimpConfig::fast().max_epochs);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn default_configs_validate() {
        GrimpConfig::paper().validate().unwrap();
        GrimpConfig::fast().validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = GrimpConfig::fast()
            .with_linear_tasks()
            .with_k_strategy(KStrategy::Diagonal)
            .with_seed(9);
        assert_eq!(c.task_kind, TaskKind::Linear);
        assert_eq!(c.k_strategy, KStrategy::Diagonal);
        assert_eq!(c.seed, 9);
    }
}

//! Inductive reuse of a trained GRIMP model (paper §7, future work #4:
//! "as GRIMP is inductive, we plan to study how, once it is trained on one
//! dataset, it can be reused on other datasets").
//!
//! [`TrainedGrimp::fit`] trains exactly like [`crate::Grimp::fit_impute`]
//! but keeps the model — GNN weights, merge layers, task heads, the
//! normalizer and the training dictionaries. [`TrainedGrimp::impute_table`]
//! then imputes *any* schema-compatible table, including tuples never seen
//! during training: the graph is rebuilt over the new table, the GNN is
//! rebound to it (message passing is inductive), and the pre-trained
//! features come from the seeded hashed-n-gram embedder, which maps equal
//! value texts to equal vectors on any table.
//!
//! Restrictions inherent to the approach (and asserted at run time):
//! the new table must have the same schema, categorical predictions are
//! limited to the training dictionaries (a classifier cannot emit labels it
//! never saw), and the feature source is the inductive FastText substitute
//! (EMBDI embeddings are transductive).

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grimp_gnn::HeteroSage;
use grimp_graph::{fasttext_features, TableGraph};
use grimp_table::{ColumnKind, Corpus, FdSet, Normalizer, Schema, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor};

use crate::config::{CategoricalLoss, GrimpConfig};
use crate::report::TrainReport;
use crate::tasks::Task;
use crate::vectors::VectorBatch;

/// A trained, reusable GRIMP model.
pub struct TrainedGrimp {
    config: GrimpConfig,
    tape: Tape,
    gnn: HeteroSage,
    merge: Mlp,
    tasks: Vec<Task>,
    normalizer: Normalizer,
    schema: Schema,
    /// Training dictionaries per categorical column (prediction label
    /// space).
    dictionaries: Vec<Vec<String>>,
    ft_seed: u64,
    report: TrainReport,
}

impl TrainedGrimp {
    /// Train on a dirty table and keep the model.
    ///
    /// # Panics
    /// Panics when `config.features` is not the (inductive) FastText
    /// substitute.
    pub fn fit(config: GrimpConfig, fds: &FdSet, dirty: &Table) -> Self {
        assert_eq!(
            config.features,
            grimp_graph::FeatureSource::FastText,
            "inductive reuse requires the FastText feature source (EMBDI is transductive)"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let ft_seed: u64 = rng.gen();

        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        let corpus = Corpus::build(&norm, config.validation_fraction, &mut rng);
        let excluded: Vec<(usize, usize)> = corpus
            .validation_flat()
            .map(|s| (s.row, s.target_col))
            .collect();
        let graph = TableGraph::build(&norm, config.graph, &excluded);
        let features = fasttext_features(&graph, config.feature_dim, ft_seed);
        let feature_tensor = Tensor::from_vec(
            graph.n_nodes(),
            config.feature_dim,
            features.node_matrix.clone(),
        );

        let n_cols = norm.n_columns();
        let mut tape = Tape::new();
        let gnn = HeteroSage::new(&mut tape, &graph, config.feature_dim, config.gnn, &mut rng);
        let merge = Mlp::new(
            &mut tape,
            &[config.gnn.hidden, config.merge_hidden, config.embed_dim],
            &mut rng,
        );
        let tasks: Vec<Task> = (0..n_cols)
            .map(|j| {
                let out_dim = match norm.schema().column(j).kind {
                    ColumnKind::Categorical => norm.dictionary(j).len().max(1),
                    ColumnKind::Numerical => 1,
                };
                Task::new(
                    &mut tape,
                    config.task_kind,
                    n_cols,
                    config.embed_dim,
                    config.merge_hidden,
                    out_dim,
                    j,
                    config.k_strategy,
                    fds,
                    None,
                    &mut rng,
                )
            })
            .collect();
        tape.freeze();
        let n_weights = tape.total_param_elems();
        let mut adam = Adam::new(config.lr);

        // Training batches (same construction as Grimp::fit_impute).
        enum L {
            Cat(Rc<Vec<u32>>),
            Num(Rc<Vec<f32>>),
        }
        let build = |buckets: &[Vec<grimp_table::TrainingSample>],
                     cap: Option<usize>,
                     rng: &mut StdRng|
         -> Vec<Option<(VectorBatch, L)>> {
            use rand::seq::SliceRandom;
            buckets
                .iter()
                .enumerate()
                .map(|(j, samples)| {
                    if samples.is_empty() {
                        return None;
                    }
                    let mut samples: Vec<&grimp_table::TrainingSample> = samples.iter().collect();
                    if let Some(cap) = cap {
                        if samples.len() > cap {
                            samples.shuffle(rng);
                            samples.truncate(cap);
                        }
                    }
                    let positions: Vec<(usize, usize)> =
                        samples.iter().map(|s| (s.row, s.target_col)).collect();
                    let batch = VectorBatch::build(&graph, &norm, &positions, config.embed_dim);
                    let labels = match norm.schema().column(j).kind {
                        ColumnKind::Categorical => L::Cat(Rc::new(
                            samples
                                .iter()
                                .map(|s| s.label.as_cat().expect("cat"))
                                .collect(),
                        )),
                        ColumnKind::Numerical => L::Num(Rc::new(
                            samples
                                .iter()
                                .map(|s| s.label.as_num().expect("num") as f32)
                                .collect(),
                        )),
                    };
                    Some((batch, labels))
                })
                .collect()
        };
        let train_batches = build(&corpus.train, config.max_train_samples_per_task, &mut rng);
        let val_batches = build(&corpus.validation, None, &mut rng);

        let mut report = TrainReport {
            n_weights,
            ..Default::default()
        };
        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;
        for _epoch in 0..config.max_epochs {
            let x = tape.input(feature_tensor.clone());
            let h0 = gnn.forward(&mut tape, x);
            let h = merge.forward(&mut tape, h0);
            let mut losses = Vec::new();
            for (task, entry) in tasks.iter().zip(&train_batches) {
                let Some((batch, labels)) = entry else {
                    continue;
                };
                let out = task.forward(&mut tape, h, batch);
                let loss = match labels {
                    L::Cat(t) => match config.categorical_loss {
                        CategoricalLoss::CrossEntropy => {
                            tape.softmax_cross_entropy(out, Rc::clone(t))
                        }
                        CategoricalLoss::Focal(g) => tape.focal_loss(out, Rc::clone(t), g),
                    },
                    L::Num(t) => tape.mse_loss(out, Rc::clone(t)),
                };
                losses.push(loss);
            }
            let mut val_total = 0.0f32;
            for (task, entry) in tasks.iter().zip(&val_batches) {
                let Some((batch, labels)) = entry else {
                    continue;
                };
                let out = task.forward(&mut tape, h, batch);
                let loss = match labels {
                    L::Cat(t) => tape.softmax_cross_entropy(out, Rc::clone(t)),
                    L::Num(t) => tape.mse_loss(out, Rc::clone(t)),
                };
                val_total += tape.value(loss).item();
            }
            if losses.is_empty() {
                tape.reset();
                break;
            }
            let total = tape.add_n(&losses);
            let train_total = tape.value(total).item();
            tape.backward(total);
            adam.step(&mut tape);
            tape.reset();
            report.push_epoch(crate::report::EpochStats {
                epoch: report.epochs.len(),
                train_loss: train_total,
                val_loss: val_total,
                ..Default::default()
            });
            if val_total + 1e-5 < best_val {
                best_val = val_total;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= config.patience {
                    report.early_stopped = true;
                    break;
                }
            }
        }

        let dictionaries = (0..n_cols)
            .map(|j| match norm.schema().column(j).kind {
                ColumnKind::Categorical => norm.dictionary(j).to_vec(),
                ColumnKind::Numerical => Vec::new(),
            })
            .collect();
        TrainedGrimp {
            config,
            tape,
            gnn,
            merge,
            tasks,
            normalizer,
            schema: dirty.schema().clone(),
            dictionaries,
            ft_seed,
            report,
        }
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The prediction label space of a categorical column.
    pub fn dictionary(&self, j: usize) -> &[String] {
        &self.dictionaries[j]
    }

    /// Average attention weight each task places on each column, measured
    /// over up to `max_samples` observed cells per task of `table`
    /// (`None` entries for linear tasks).
    ///
    /// High weight of task `j` on column `c` means the model imputes `A_j`
    /// mostly from `A_c` — learned functional dependencies show up here.
    pub fn attention_profile(
        &mut self,
        table: &Table,
        max_samples: usize,
    ) -> Vec<Option<Vec<f32>>> {
        assert_eq!(
            table.schema(),
            &self.schema,
            "schema must match the training schema"
        );
        let mut norm = table.clone();
        self.normalizer.apply(&mut norm);
        let graph = TableGraph::build(&norm, self.config.graph, &[]);
        self.gnn.rebind(&graph);
        let features = fasttext_features(&graph, self.config.feature_dim, self.ft_seed);
        let feature_tensor = Tensor::from_vec(
            graph.n_nodes(),
            self.config.feature_dim,
            features.node_matrix,
        );
        let x = self.tape.input(feature_tensor);
        let h0 = self.gnn.forward(&mut self.tape, x);
        let h = self.merge.forward(&mut self.tape, h0);
        let n_cols = norm.n_columns();
        let mut profiles = Vec::with_capacity(n_cols);
        for (j, task) in self.tasks.iter().enumerate() {
            let samples: Vec<(usize, usize)> = (0..norm.n_rows())
                .filter(|&i| !norm.is_missing(i, j))
                .take(max_samples)
                .map(|i| (i, j))
                .collect();
            if samples.is_empty() {
                profiles.push(None);
                continue;
            }
            let batch = VectorBatch::build(&graph, &norm, &samples, self.config.embed_dim);
            match task.attention_alpha(&mut self.tape, h, &batch) {
                Some(alpha) => {
                    let a = self.tape.value(alpha);
                    let mut mean = vec![0.0f32; n_cols];
                    for s in 0..batch.n {
                        for (m, &v) in mean.iter_mut().zip(a.row_slice(s)) {
                            *m += v;
                        }
                    }
                    mean.iter_mut().for_each(|m| *m /= batch.n as f32);
                    profiles.push(Some(mean));
                }
                None => profiles.push(None),
            }
        }
        self.tape.reset();
        profiles
    }

    /// Impute all missing values of a schema-compatible table — possibly
    /// one the model has never seen — reusing the trained weights.
    ///
    /// # Panics
    /// Panics when the table's schema differs from the training schema.
    pub fn impute_table(&mut self, table: &Table) -> Table {
        assert_eq!(
            table.schema(),
            &self.schema,
            "schema must match the training schema"
        );
        let mut norm = table.clone();
        self.normalizer.apply(&mut norm);
        let graph = TableGraph::build(&norm, self.config.graph, &[]);
        self.gnn.rebind(&graph);
        let features = fasttext_features(&graph, self.config.feature_dim, self.ft_seed);
        let feature_tensor = Tensor::from_vec(
            graph.n_nodes(),
            self.config.feature_dim,
            features.node_matrix,
        );

        let mut result = table.clone();
        let x = self.tape.input(feature_tensor);
        let h0 = self.gnn.forward(&mut self.tape, x);
        let h = self.merge.forward(&mut self.tape, h0);
        for j in 0..norm.n_columns() {
            let missing: Vec<(usize, usize)> = (0..norm.n_rows())
                .filter(|&i| norm.is_missing(i, j))
                .map(|i| (i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let batch = VectorBatch::build(&graph, &norm, &missing, self.config.embed_dim);
            let out = self.tasks[j].forward(&mut self.tape, h, &batch);
            let out_t = self.tape.value(out).clone();
            match norm.schema().column(j).kind {
                ColumnKind::Categorical => {
                    if self.dictionaries[j].is_empty() {
                        continue;
                    }
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let best = out_t
                            .row_slice(s)
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(k, _)| k)
                            .expect("non-empty logits");
                        // map the training-dictionary label into the new
                        // table's dictionary
                        let label = &self.dictionaries[j][best];
                        let code = result.intern(j, label);
                        result.set(i, j, Value::Cat(code));
                    }
                }
                ColumnKind::Numerical => {
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let z = f64::from(out_t.get(s, 0));
                        result.set(i, j, Value::Num(self.normalizer.inverse(j, z)));
                    }
                }
            }
        }
        self.tape.reset();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{check_imputation_contract, inject_mcar, Schema};

    fn functional_table(n: usize, offset: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        // Pre-intern values in a fixed order so train/test tables share
        // dictionaries (schema compatibility).
        for k in 0..4 {
            t.intern(0, &format!("a{k}"));
            t.intern(1, &format!("b{k}"));
        }
        for i in 0..n {
            let k = (i + offset) % 4;
            let a = format!("a{k}");
            let b = format!("b{k}");
            let x = format!("{}", k as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    fn cfg() -> GrimpConfig {
        GrimpConfig {
            feature_dim: 16,
            gnn: grimp_gnn::GnnConfig {
                layers: 2,
                hidden: 16,
                ..Default::default()
            },
            merge_hidden: 32,
            embed_dim: 16,
            max_epochs: 60,
            patience: 12,
            lr: 2e-2,
            seed: 1,
            ..GrimpConfig::fast()
        }
    }

    #[test]
    fn trained_model_imputes_the_training_table() {
        let clean = functional_table(80, 0);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut model = TrainedGrimp::fit(cfg(), &FdSet::empty(), &dirty);
        assert!(model.report().epochs_run > 0);
        let imputed = model.impute_table(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        assert!(correct as f64 / cat.len().max(1) as f64 > 0.5);
    }

    #[test]
    fn trained_model_transfers_to_unseen_tuples() {
        // train on one sample of the distribution, impute a fresh one
        let train_clean = functional_table(80, 0);
        let mut train_dirty = train_clean.clone();
        inject_mcar(&mut train_dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut model = TrainedGrimp::fit(cfg(), &FdSet::empty(), &train_dirty);

        let test_clean = functional_table(60, 1); // different rows, same schema
        let mut test_dirty = test_clean.clone();
        let log = inject_mcar(&mut test_dirty, 0.15, &mut StdRng::seed_from_u64(3));
        let imputed = model.impute_table(&test_dirty);
        check_imputation_contract(&test_dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.display(c.row, c.col) == test_clean.display(c.row, c.col))
            .count();
        let acc = correct as f64 / cat.len().max(1) as f64;
        assert!(acc > 0.5, "inductive transfer accuracy {acc}");
    }

    #[test]
    fn repeated_imputation_calls_are_stable() {
        let clean = functional_table(50, 0);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(4));
        let mut model = TrainedGrimp::fit(cfg(), &FdSet::empty(), &dirty);
        let a = model.impute_table(&dirty);
        let b = model.impute_table(&dirty);
        assert_eq!(a, b, "imputation must not mutate the trained model");
    }

    #[test]
    fn attention_profile_reveals_the_informative_column() {
        // b is a deterministic function of a (and vice versa): each task's
        // attention must be a valid distribution, and mass on the target's
        // own (masked) slot must be ~0.
        let clean = functional_table(80, 0);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.05, &mut StdRng::seed_from_u64(7));
        let mut model = TrainedGrimp::fit(cfg(), &FdSet::empty(), &dirty);
        let profiles = model.attention_profile(&dirty, 50);
        assert_eq!(profiles.len(), 3);
        for (j, profile) in profiles.iter().enumerate() {
            let p = profile.as_ref().expect("attention tasks");
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "task {j} attention sums to {sum}");
            assert!(
                p[j] < 0.05,
                "task {j} attends to its own masked slot: {}",
                p[j]
            );
        }
    }

    #[test]
    #[should_panic(expected = "schema must match")]
    fn schema_mismatch_is_rejected() {
        let clean = functional_table(30, 0);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(5));
        let mut model = TrainedGrimp::fit(cfg(), &FdSet::empty(), &dirty);
        let other = Table::empty(Schema::from_pairs(&[("z", ColumnKind::Numerical)]));
        model.impute_table(&other);
    }

    #[test]
    #[should_panic(expected = "FastText feature source")]
    fn embdi_features_are_rejected_for_inductive_use() {
        let clean = functional_table(30, 0);
        let cfg = cfg().with_features(grimp_graph::FeatureSource::Embdi);
        TrainedGrimp::fit(cfg, &FdSet::empty(), &clean);
    }
}

//! Training-vector batches (paper §3.3 and §3.5).
//!
//! A *training vector* is a tuple's row of cell embeddings with the target
//! attribute (and every `∅` cell) masked to the zero vector. For efficiency
//! the `N × C × D` collection `V_A` of one task is laid out as an
//! `(N·C) × D` gather from the node-embedding matrix plus a 0/1 mask, and a
//! `N × C` additive bias of `-1e9` keeps masked slots out of the attention
//! softmax.

use std::rc::Rc;

use grimp_graph::TableGraph;
use grimp_table::Table;
use grimp_tensor::Tensor;

/// Score bias used to exclude masked slots from attention.
pub const MASKED_SCORE_BIAS: f32 = -1e9;

/// A batch of training (or imputation) vectors for one task.
#[derive(Clone, Debug)]
pub struct VectorBatch {
    /// Number of samples `N`.
    pub n: usize,
    /// Columns per sample `C`.
    pub n_cols: usize,
    /// Slot width `D`.
    pub dim: usize,
    /// `N·C` gather indices into the node-embedding matrix (masked slots
    /// point at node 0 and are zeroed by `mask`).
    pub idx: Rc<Vec<u32>>,
    /// `(N·C) × D` multiplicative 0/1 mask.
    pub mask: Tensor,
    /// `N × C` additive attention-score bias (0 for live slots,
    /// [`MASKED_SCORE_BIAS`] for masked ones).
    pub score_bias: Tensor,
}

impl VectorBatch {
    /// Build the batch for `samples`, each a `(row, target_col)` pair. The
    /// slot of `target_col` is always masked; other slots are masked when
    /// the cell is `∅` (or its value has no node, which cannot happen for
    /// values of the same table the graph was built from).
    pub fn build(
        graph: &TableGraph,
        table: &Table,
        samples: &[(usize, usize)],
        dim: usize,
    ) -> Self {
        let n = samples.len();
        let n_cols = table.n_columns();
        let mut idx = Vec::with_capacity(n * n_cols);
        let mut mask = Tensor::zeros(n * n_cols, dim);
        let mut score_bias = Tensor::zeros(n, n_cols);
        for (s, &(row, target_col)) in samples.iter().enumerate() {
            for c in 0..n_cols {
                let slot = s * n_cols + c;
                let node = if c == target_col {
                    None
                } else {
                    graph.cell_node_of(table, row, c)
                };
                match node {
                    Some(node) => {
                        idx.push(node);
                        mask.row_slice_mut(slot).fill(1.0);
                    }
                    None => {
                        idx.push(0);
                        score_bias.set(s, c, MASKED_SCORE_BIAS);
                    }
                }
            }
        }
        VectorBatch {
            n,
            n_cols,
            dim,
            idx: Rc::new(idx),
            mask,
            score_bias,
        }
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rewrite the batch in place for a new sample set of the **same size**
    /// — the sampled training path refills each task's fixed-shape batch
    /// every epoch so tensor shapes (and the tape workspace keyed on them)
    /// never change. No allocation happens: the gather indices are mutated
    /// through [`Rc::get_mut`], which requires that every tape-held clone of
    /// the previous epoch's `idx` has been dropped (`tape.reset()` does
    /// that). Panics if the batch is still aliased or `samples.len() != n`.
    pub fn refill(&mut self, graph: &TableGraph, table: &Table, samples: &[(usize, usize)]) {
        assert_eq!(
            samples.len(),
            self.n,
            "refill must keep the batch size fixed"
        );
        let idx = Rc::get_mut(&mut self.idx)
            .expect("refill requires the previous epoch's gather indices to be released");
        let n_cols = self.n_cols;
        for (s, &(row, target_col)) in samples.iter().enumerate() {
            for c in 0..n_cols {
                let slot = s * n_cols + c;
                let node = if c == target_col {
                    None
                } else {
                    graph.cell_node_of(table, row, c)
                };
                match node {
                    Some(node) => {
                        idx[slot] = node;
                        self.mask.row_slice_mut(slot).fill(1.0);
                        self.score_bias.set(s, c, 0.0);
                    }
                    None => {
                        idx[slot] = 0;
                        self.mask.row_slice_mut(slot).fill(0.0);
                        self.score_bias.set(s, c, MASKED_SCORE_BIAS);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_graph::GraphConfig;
    use grimp_table::{ColumnKind, Schema};

    fn setup() -> (Table, TableGraph) {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("c", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(
            schema,
            &[
                vec![Some("x"), Some("p"), Some("m")],
                vec![Some("y"), None, Some("m")],
            ],
        );
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        (t, g)
    }

    #[test]
    fn target_column_is_always_masked() {
        let (t, g) = setup();
        let b = VectorBatch::build(&g, &t, &[(0, 1)], 4);
        assert_eq!(b.n, 1);
        // slot of column 1 masked, others live
        assert_eq!(b.mask.row_slice(0), &[1.0; 4]);
        assert_eq!(b.mask.row_slice(1), &[0.0; 4]);
        assert_eq!(b.mask.row_slice(2), &[1.0; 4]);
        assert_eq!(b.score_bias.get(0, 1), MASKED_SCORE_BIAS);
        assert_eq!(b.score_bias.get(0, 0), 0.0);
    }

    #[test]
    fn null_cells_are_masked_too() {
        let (t, g) = setup();
        // row 1 has ∅ in column 1; target column 0
        let b = VectorBatch::build(&g, &t, &[(1, 0)], 4);
        assert_eq!(b.mask.row_slice(0), &[0.0; 4]); // target
        assert_eq!(b.mask.row_slice(1), &[0.0; 4]); // null
        assert_eq!(b.mask.row_slice(2), &[1.0; 4]); // live
    }

    #[test]
    fn live_slots_point_at_the_right_nodes() {
        let (t, g) = setup();
        let b = VectorBatch::build(&g, &t, &[(0, 0)], 4);
        let p_node = g.cell_node(1, "p").unwrap();
        let m_node = g.cell_node(2, "m").unwrap();
        assert_eq!(b.idx[1], p_node);
        assert_eq!(b.idx[2], m_node);
    }

    #[test]
    fn refill_matches_a_fresh_build_bit_for_bit() {
        let (t, g) = setup();
        let mut b = VectorBatch::build(&g, &t, &[(0, 1), (1, 0)], 4);
        b.refill(&g, &t, &[(1, 2), (0, 0)]);
        let fresh = VectorBatch::build(&g, &t, &[(1, 2), (0, 0)], 4);
        assert_eq!(*b.idx, *fresh.idx);
        assert_eq!(b.mask.as_slice(), fresh.mask.as_slice());
        assert_eq!(b.score_bias.as_slice(), fresh.score_bias.as_slice());
        // and back again: stale mask/bias state must not leak across refills
        b.refill(&g, &t, &[(0, 1), (1, 0)]);
        let original = VectorBatch::build(&g, &t, &[(0, 1), (1, 0)], 4);
        assert_eq!(*b.idx, *original.idx);
        assert_eq!(b.mask.as_slice(), original.mask.as_slice());
        assert_eq!(b.score_bias.as_slice(), original.score_bias.as_slice());
    }

    #[test]
    #[should_panic(expected = "fixed")]
    fn refill_rejects_a_different_batch_size() {
        let (t, g) = setup();
        let mut b = VectorBatch::build(&g, &t, &[(0, 1)], 4);
        b.refill(&g, &t, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn same_vector_for_different_targets_differs_only_in_mask() {
        // the Fig. 5 scenario: one row, two different target columns
        let (t, g) = setup();
        let b0 = VectorBatch::build(&g, &t, &[(0, 0)], 4);
        let b1 = VectorBatch::build(&g, &t, &[(0, 1)], 4);
        // slot 2 (column c) identical in both
        assert_eq!(b0.idx[2], b1.idx[2]);
        assert_eq!(b0.mask.row_slice(2), b1.mask.row_slice(2));
        // masks of the target slots differ
        assert_ne!(b0.mask.row_slice(0), b1.mask.row_slice(0));
    }
}

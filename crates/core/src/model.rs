//! The GRIMP model: shared layer (HeteroGNN + merge) and multi-task heads,
//! trained end-to-end with the dual loss and early stopping (paper §3,
//! Algorithm 1).
//!
//! The training loop is fault-tolerant: a per-epoch divergence guard checks
//! loss, gradient, and parameter finiteness (plus global gradient-norm
//! clipping), every good epoch is snapshotted in memory (and optionally to
//! disk as a versioned [`TrainCheckpoint`]), and a detected anomaly rolls
//! back to the last good epoch with a halved learning rate. When the
//! recovery budget is exhausted the run degrades to the mode/mean baseline
//! so the imputation contract still holds.
//!
//! Every phase of a run — graph build, feature init, each epoch's
//! forward/backward/optim sub-phases, per-task losses, checkpoints,
//! recovery, imputation — emits structured events into a
//! [`grimp_obs::EventSink`] (see [`grimp_obs::names`] for the vocabulary).
//! With the default [`NullSink`] the instrumentation compiles down to a
//! branch on a `None`: no clock reads, no allocations. The
//! [`crate::report::TrainReport`] aggregates are the *same* measured
//! numbers that go into the trace, so
//! [`TrainReport::from_events`](crate::report::TrainReport::from_events)
//! on a recorded stream reproduces them bit-for-bit.

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use grimp_gnn::HeteroSage;
use grimp_graph::{build_features, fasttext_features, FeatureSource, NeighborSampler, TableGraph};
use grimp_obs::{names, EventSink, FaultFs, GrimpFs, NullSink, RealFs, Trace};
use grimp_table::{ColumnKind, Corpus, FdSet, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, AdamState, Mlp, Tape, Tensor, Var};

use crate::checkpoint::{TrainCheckpoint, CHECKPOINT_FILE, CHECKPOINT_PREV_FILE};
use crate::config::{CategoricalLoss, GrimpConfig};
use crate::error::GrimpError;
use crate::fault::TrainAnomaly;
#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::{FaultKind, FaultPlan};
use crate::governor::{downscale_to_budget, estimate_footprint, DirLock};
use crate::report::{ColumnTier, EpochStats, TrainReport};
use crate::tasks::Task;
use crate::vectors::VectorBatch;

/// Categorical fill value of the [`ColumnTier::Constant`] ladder rung —
/// deliberately non-empty, since the CSV layer treats `""` as null.
pub const CONSTANT_FILL_CATEGORICAL: &str = "(unknown)";
/// Numerical fill value of the [`ColumnTier::Constant`] ladder rung.
pub const CONSTANT_FILL_NUMERICAL: f64 = 0.0;

/// Resumable cursor of the training loop: everything a checkpoint must
/// capture, beyond tensors, to continue bit-exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainState {
    /// Completed epochs.
    pub epoch: usize,
    /// Learning rate in effect (halved by each divergence recovery).
    pub lr: f32,
    /// Best validation loss seen so far (`+inf` before the first epoch).
    pub best_val: f32,
    /// Epochs since `best_val` last improved (early-stopping counter).
    pub since_best: usize,
    /// Divergence recoveries consumed so far.
    pub recoveries: usize,
}

impl TrainState {
    /// Fresh state at epoch 0 with the configured learning rate.
    pub fn new(lr: f32) -> Self {
        TrainState {
            epoch: 0,
            lr,
            best_val: f32::INFINITY,
            since_best: 0,
            recoveries: 0,
        }
    }
}

/// In-memory rollback point: the training state plus parameter and
/// optimizer tensors as of the last good epoch. Buffers are reused across
/// epochs, so re-capturing allocates nothing in steady state.
struct Snapshot {
    state: TrainState,
    params: Vec<Tensor>,
    adam: AdamState,
}

/// The GRIMP imputer (paper §3). Construct with a config, call
/// [`Grimp::fit_impute`] (or the [`Imputer`] trait) on a dirty table.
///
/// For a fit-once/impute-many handle (including imputing *unseen* tables
/// with the inductive FastText features), use [`crate::Pipeline`], which
/// returns a [`FittedModel`].
pub struct Grimp {
    config: GrimpConfig,
    fds: FdSet,
    last_report: Option<TrainReport>,
}

/// Per-task label storage.
enum Labels {
    Cat(Rc<Vec<u32>>),
    Num(Rc<Vec<f32>>),
}

struct TaskBatch {
    batch: VectorBatch,
    labels: Labels,
}

impl Grimp {
    /// A GRIMP model with no FDs.
    pub fn new(config: GrimpConfig) -> Self {
        Grimp {
            config,
            fds: FdSet::empty(),
            last_report: None,
        }
    }

    /// A GRIMP model that exploits the given FDs in its attention `K`
    /// matrices (GRIMP-A of §4.3; pair with
    /// [`crate::config::KStrategy::WeakDiagonalFd`]).
    pub fn with_fds(config: GrimpConfig, fds: FdSet) -> Self {
        Grimp {
            config,
            fds,
            last_report: None,
        }
    }

    /// The report of the most recent [`Grimp::fit_impute`] call.
    pub fn last_report(&self) -> Option<&TrainReport> {
        self.last_report.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &GrimpConfig {
        &self.config
    }

    /// Train on the dirty table (self-supervised — no clean data needed) and
    /// impute all its missing values.
    pub fn fit_impute(&mut self, dirty: &Table) -> Table {
        let mut sink = NullSink;
        self.fit_impute_traced(dirty, &mut sink)
    }

    /// [`Grimp::fit_impute`] with structured events streamed into `sink`.
    ///
    /// This entry point is infallible by contract: the only fit-time error
    /// (a zero-column table) has nothing to impute, so the input comes back
    /// unchanged, and the training-table impute path cannot fail.
    pub fn fit_impute_traced(&mut self, dirty: &Table, sink: &mut dyn EventSink) -> Table {
        let mut fitted = match fit_model(&self.config, &self.fds, dirty, sink) {
            Ok(f) => f,
            Err(_) => return dirty.clone(),
        };
        let result = fitted
            .impute_traced(dirty, sink)
            // Unreachable for the training table; kept as a safety net so
            // the Imputer contract survives even a future logic error.
            .unwrap_or_else(|_| baseline_fill(dirty));
        self.last_report = Some(fitted.report().clone());
        result
    }
}

/// Variant name shown in experiment output (paper §4.3 naming).
pub(crate) fn variant_name(config: &GrimpConfig) -> &'static str {
    match (config.task_kind, config.features) {
        (crate::config::TaskKind::Linear, _) => "GRIMP-linear",
        (_, FeatureSource::Embdi) => "GRIMP-E",
        (_, FeatureSource::FastText) => "GRIMP-FT",
        (_, FeatureSource::Random) => "GRIMP-rand",
    }
}

/// A trained GRIMP model, ready to impute: the fitted graph/tape/heads plus
/// everything needed to run inference again — on the training table or
/// (with FastText features) on schema-compatible unseen tables.
///
/// Produced by [`crate::Pipeline::fit`]; [`Grimp::fit_impute`] is a thin
/// fit-then-impute wrapper over the same machinery.
pub struct FittedModel {
    config: GrimpConfig,
    normalizer: Normalizer,
    /// Normalized copy of the training table.
    norm: Table,
    /// The original dirty training table (detects transductive imputes).
    train_dirty: Table,
    graph: TableGraph,
    tape: Tape,
    gnn: HeteroSage,
    merge: Mlp,
    tasks: Vec<Task>,
    persistent_x: Option<Var>,
    /// Legacy hot path keeps the feature tensor to re-clone per pass.
    feature_tensor: Option<Tensor>,
    best_params: Option<Vec<Tensor>>,
    degraded: bool,
    /// Training-table dictionaries, for mapping predictions into unseen
    /// tables' dictionaries (empty vec for numerical columns).
    dictionaries: Vec<Vec<String>>,
    /// Seed of the inductive FastText features (None for other sources).
    ft_seed: Option<u64>,
    /// The GNN is currently bound to a foreign graph and must rebind
    /// before imputing the training table again.
    needs_rebind: bool,
    /// Degradation-ladder tier of every column, in schema order.
    tiers: Vec<ColumnTier>,
    report: TrainReport,
}

impl FittedModel {
    /// The training report. [`TrainReport::seconds`] accumulates the time
    /// of every [`FittedModel::impute`] call made through this model.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &GrimpConfig {
        &self.config
    }

    /// Whether training exhausted its recovery budget and imputation runs
    /// the mode/mean baseline instead of the GNN.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Degradation-ladder tier of every column, in schema order. Columns at
    /// [`ColumnTier::Gnn`] impute from their trained head; demoted columns
    /// impute from the mode/mean baseline or the global constant.
    pub fn column_tiers(&self) -> &[ColumnTier] {
        &self.tiers
    }

    /// Swap this model's weights for the ones in `ck` — the hot-reload
    /// primitive behind `grimp serve`'s checkpoint-generation rotation.
    ///
    /// The checkpoint's parameter tensors must line up shape-for-shape
    /// with this model's tape (i.e. it was written by a fit of the same
    /// table and configuration). On success the imputation weights become
    /// the checkpoint's best-validation parameters (falling back to its
    /// last-epoch parameters for checkpoints taken before the first
    /// validation improvement).
    ///
    /// # Errors
    /// [`grimp_tensor::CheckpointError::Corrupt`] when the shapes do not
    /// match; the model is left untouched.
    pub fn restore_checkpoint(
        &mut self,
        ck: &TrainCheckpoint,
    ) -> Result<(), grimp_tensor::CheckpointError> {
        if !snapshot_shapes_match(&self.tape, &ck.params) {
            return Err(grimp_tensor::CheckpointError::Corrupt(
                "parameter shapes do not match this model".to_string(),
            ));
        }
        self.tape.restore_param_values(&ck.params);
        self.best_params = Some(ck.best_params.clone().unwrap_or_else(|| ck.params.clone()));
        Ok(())
    }

    /// Impute all missing values of `table`.
    ///
    /// Passing the training table back runs the transductive path of the
    /// paper (one forward pass over the fitted graph). Any *other* table
    /// with the same schema takes the inductive path: its graph is rebuilt,
    /// the seed-deterministic FastText features are recomputed, and the
    /// trained weights are reused.
    ///
    /// Columns demoted down the degradation ladder (see
    /// [`FittedModel::column_tiers`]) fill from their mode/mean or the
    /// global constant instead of a task head; every missing cell is filled
    /// either way.
    ///
    /// # Errors
    /// On an unseen table, [`GrimpError::SchemaMismatch`] when the schema
    /// differs from the training schema. A model fitted without
    /// [`FeatureSource::FastText`] (EMBDI and random features are
    /// transductive — they cannot embed unseen values) does not error on an
    /// unseen table: its GNN-tier columns step down the degradation ladder
    /// to the mode/mean baseline of the new table, so every missing cell is
    /// still filled. Imputing the training table never fails.
    pub fn impute(&mut self, table: &Table) -> Result<Table, GrimpError> {
        let mut sink = NullSink;
        self.impute_traced(table, &mut sink)
    }

    /// [`FittedModel::impute`] with structured events streamed into `sink`.
    pub fn impute_traced(
        &mut self,
        table: &Table,
        sink: &mut dyn EventSink,
    ) -> Result<Table, GrimpError> {
        let mut trace = Trace::new(sink);
        let start = Instant::now();
        let span = trace.enter(names::IMPUTE, 0);
        let outcome = if *table == self.train_dirty {
            Ok(self.impute_training_table(&mut trace))
        } else {
            self.impute_unseen_table(table, &mut trace)
        };
        let dt = start.elapsed().as_secs_f64();
        self.report.seconds += dt;
        trace.exit_with(names::IMPUTE, 0, span, dt);
        let _ = trace.flush();
        outcome
    }

    /// Transductive imputation (§3.7): one forward pass from the
    /// best-validation parameters over the fitted graph, per-column
    /// argmax / de-normalized regression. Demoted columns skip the GNN and
    /// fill from their ladder tier; if no column is at the GNN tier the
    /// forward pass is skipped entirely.
    fn impute_training_table(&mut self, trace: &mut Trace<'_>) -> Table {
        let use_gnn = self.tiers.contains(&ColumnTier::Gnn);
        let mut result = self.train_dirty.clone();
        let h = if use_gnn {
            if self.needs_rebind {
                self.gnn.rebind(&self.graph);
                self.needs_rebind = false;
            }
            if let Some(best) = &self.best_params {
                self.tape.restore_param_values(best);
            }
            let x = match self.persistent_x {
                Some(x) => x,
                None => self.tape.input(
                    self.feature_tensor
                        .as_ref()
                        .expect("legacy path keeps features")
                        .clone(),
                ),
            };
            let h0 = self.gnn.forward(&mut self.tape, x);
            Some(self.merge.forward(&mut self.tape, h0))
        } else {
            None
        };
        for (j, task) in self.tasks.iter().enumerate() {
            let missing: Vec<(usize, usize)> = (0..self.norm.n_rows())
                .filter(|&i| self.norm.is_missing(i, j))
                .map(|i| (i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            match self.tiers[j] {
                ColumnTier::Gnn => {
                    let h = h.expect("invariant: forward pass ran for GNN-tier columns");
                    let batch = VectorBatch::build(
                        &self.graph,
                        &self.norm,
                        &missing,
                        self.config.embed_dim,
                    );
                    let out = task.forward(&mut self.tape, h, &batch);
                    let out_t = self.tape.value(out).clone();
                    match self.norm.schema().column(j).kind {
                        ColumnKind::Categorical => {
                            // GNN-tier categoricals have ≥ 2 dictionary
                            // entries (emptier columns were demoted).
                            for (s, &(i, _)) in missing.iter().enumerate() {
                                let row = out_t.row_slice(s);
                                let best = row
                                    .iter()
                                    .enumerate()
                                    .max_by(|a, b| a.1.total_cmp(b.1))
                                    .map(|(k, _)| k as u32)
                                    .expect("non-empty logits row");
                                result.set(i, j, Value::Cat(best));
                            }
                        }
                        ColumnKind::Numerical => {
                            let fallback = self.train_dirty.mean(j);
                            for (s, &(i, _)) in missing.iter().enumerate() {
                                let z = f64::from(out_t.get(s, 0));
                                let v = finite_or(self.normalizer.inverse(j, z), fallback);
                                result.set(i, j, Value::Num(v));
                            }
                        }
                    }
                }
                tier => fill_column_from_ladder(&mut result, &self.train_dirty, j, tier),
            }
            trace.counter(names::IMPUTED_CELLS, j as u64, missing.len() as u64);
        }
        if use_gnn {
            self.tape.reset();
        }
        result
    }

    /// Inductive imputation: rebuild the graph for the unseen table,
    /// recompute the seed-deterministic FastText features, rebind the GNN
    /// adjacency, and map categorical predictions through the training
    /// dictionaries into the new table's dictionaries. Demoted columns fill
    /// from their ladder tier using the unseen table's own statistics.
    fn impute_unseen_table(
        &mut self,
        table: &Table,
        trace: &mut Trace<'_>,
    ) -> Result<Table, GrimpError> {
        if table.schema() != self.train_dirty.schema() {
            return Err(GrimpError::SchemaMismatch {
                expected: format!("{:?}", self.train_dirty.schema()),
                got: format!("{:?}", table.schema()),
            });
        }
        let use_gnn = self.tiers.contains(&ColumnTier::Gnn);
        let mut result = table.clone();
        // Graph + features + shared forward pass, built only when at least
        // one column still imputes from its trained head AND the features
        // are inductive (FastText). A transductive-feature model cannot
        // embed unseen values — its GNN-tier columns fall down the ladder
        // to the new table's mode/mean baseline instead of erroring.
        let prepared = if let (true, Some(ft_seed)) = (use_gnn, self.ft_seed) {
            if let Some(best) = &self.best_params {
                self.tape.restore_param_values(best);
            }
            let mut norm = table.clone();
            self.normalizer.apply(&mut norm);
            let graph = TableGraph::build_traced(&norm, self.config.graph, &[], trace);
            self.gnn.rebind(&graph);
            self.needs_rebind = true;
            let features = fasttext_features(&graph, self.config.feature_dim, ft_seed);
            let feature_tensor = Tensor::from_vec(
                graph.n_nodes(),
                self.config.feature_dim,
                features.node_matrix,
            );
            let x = self.tape.input(feature_tensor);
            let h0 = self.gnn.forward(&mut self.tape, x);
            let h = self.merge.forward(&mut self.tape, h0);
            Some((norm, graph, h))
        } else {
            None
        };
        for (j, task) in self.tasks.iter().enumerate() {
            let missing: Vec<(usize, usize)> = (0..table.n_rows())
                .filter(|&i| table.is_missing(i, j))
                .map(|i| (i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            match self.tiers[j] {
                ColumnTier::Gnn => {
                    let Some((norm, graph, h)) = prepared.as_ref() else {
                        // Transductive features: GNN-tier columns degrade to
                        // the unseen table's own mode/mean baseline.
                        fill_column_from_ladder(&mut result, table, j, ColumnTier::Baseline);
                        trace.counter(names::IMPUTED_CELLS, j as u64, missing.len() as u64);
                        continue;
                    };
                    let batch = VectorBatch::build(graph, norm, &missing, self.config.embed_dim);
                    let out = task.forward(&mut self.tape, *h, &batch);
                    let out_t = self.tape.value(out).clone();
                    match norm.schema().column(j).kind {
                        ColumnKind::Categorical => {
                            for (s, &(i, _)) in missing.iter().enumerate() {
                                let best = out_t
                                    .row_slice(s)
                                    .iter()
                                    .enumerate()
                                    .max_by(|a, b| a.1.total_cmp(b.1))
                                    .map(|(k, _)| k)
                                    .expect("non-empty logits row");
                                let label = &self.dictionaries[j][best];
                                let code = result.intern(j, label);
                                result.set(i, j, Value::Cat(code));
                            }
                        }
                        ColumnKind::Numerical => {
                            let fallback = table.mean(j);
                            for (s, &(i, _)) in missing.iter().enumerate() {
                                let z = f64::from(out_t.get(s, 0));
                                let v = finite_or(self.normalizer.inverse(j, z), fallback);
                                result.set(i, j, Value::Num(v));
                            }
                        }
                    }
                }
                tier => fill_column_from_ladder(&mut result, table, j, tier),
            }
            trace.counter(names::IMPUTED_CELLS, j as u64, missing.len() as u64);
        }
        if prepared.is_some() {
            self.tape.reset();
        }
        Ok(result)
    }
}

/// Fill every missing cell of column `j` of `result` from the ladder tier,
/// with mode/mean statistics taken from `stats` (the table the missing
/// cells came from — `result` starts as its clone, so categorical codes
/// align). Falls through to the constant rung when the baseline statistic
/// does not exist (no observed value at all).
fn fill_column_from_ladder(result: &mut Table, stats: &Table, j: usize, tier: ColumnTier) {
    let missing: Vec<usize> = (0..stats.n_rows())
        .filter(|&i| stats.is_missing(i, j))
        .collect();
    match stats.schema().column(j).kind {
        ColumnKind::Categorical => {
            let code = match tier {
                ColumnTier::Baseline => stats.mode(j),
                _ => None,
            };
            let code = code.unwrap_or_else(|| result.intern(j, CONSTANT_FILL_CATEGORICAL));
            for i in missing {
                result.set(i, j, Value::Cat(code));
            }
        }
        ColumnKind::Numerical => {
            let v = match tier {
                ColumnTier::Baseline => stats.mean(j).unwrap_or(CONSTANT_FILL_NUMERICAL),
                _ => CONSTANT_FILL_NUMERICAL,
            };
            for i in missing {
                result.set(i, j, Value::Num(v));
            }
        }
    }
}

/// `v` when finite, otherwise the fallback statistic (or the global
/// constant when even that does not exist). Guards the de-normalization of
/// GNN regression outputs so an imputed cell is never `NaN`/`±inf`.
fn finite_or(v: f64, fallback: Option<f64>) -> f64 {
    if v.is_finite() {
        v
    } else {
        fallback.unwrap_or(CONSTANT_FILL_NUMERICAL)
    }
}

/// Initial ladder tier of a column, from its observed values alone: zero
/// observed (finite) values → [`ColumnTier::Constant`], exactly one
/// distinct value → the mode/mean [`ColumnTier::Baseline`] (a single-class
/// classifier or zero-variance regressor has nothing to learn), two or
/// more → [`ColumnTier::Gnn`].
fn detect_column_tier(table: &Table, j: usize) -> ColumnTier {
    let distinct = match table.schema().column(j).kind {
        ColumnKind::Categorical => table.column(j).n_distinct(),
        ColumnKind::Numerical => {
            let mut bits: Vec<u64> = (0..table.n_rows())
                .filter_map(|i| table.get(i, j).as_num())
                .filter(|v| v.is_finite())
                .map(f64::to_bits)
                .collect();
            bits.sort_unstable();
            bits.dedup();
            bits.len()
        }
    };
    match distinct {
        0 => ColumnTier::Constant,
        1 => ColumnTier::Baseline,
        _ => ColumnTier::Gnn,
    }
}

/// Stable code of an anomaly kind, used as the `anomaly` counter value.
fn anomaly_code(a: &TrainAnomaly) -> u64 {
    match a {
        TrainAnomaly::NonFiniteLoss { .. } => 0,
        TrainAnomaly::NonFiniteGradient { .. } => 1,
        TrainAnomaly::NonFiniteParameter { .. } => 2,
        TrainAnomaly::NonFiniteTaskLoss { column, .. } => 3 + *column as u64,
    }
}

/// Train a GRIMP model on the dirty table, emitting structured events into
/// `sink`, and return the fitted inference handle.
///
/// This is the engine behind both [`crate::Pipeline::fit`] and
/// [`Grimp::fit_impute`].
///
/// # Errors
/// [`GrimpError::EmptySchema`] when the table has no columns — there is
/// nothing to impute and no graph to build. Every other pathology (empty
/// columns, degenerate dictionaries, non-finite observations, diverging
/// heads) is absorbed by the per-column degradation ladder instead.
pub(crate) fn fit_model(
    config: &GrimpConfig,
    fds: &FdSet,
    dirty: &Table,
    sink: &mut dyn EventSink,
) -> Result<FittedModel, GrimpError> {
    fit_model_delta(config, fds, dirty, None, sink)
}

/// [`fit_model`] with an optional append-delta boundary: when `delta_from`
/// is `Some(base_rows)`, the first `base_rows` rows of `dirty` are the
/// already-trained base table and only the appended tail contributes
/// training samples — a warm-start fine-tune. The model structure (graph,
/// features, tape shapes) is still that of the whole concatenated table:
/// the graph is grown from the base build via
/// [`TableGraph::append_rows`] (bit-identical to a from-scratch build),
/// validation spans the whole table, and a post-loop drift check compares
/// the last validation loss against the run's best, scheduling a full
/// refit in the report when the regression exceeds
/// [`crate::FinetuneConfig::drift_band`].
pub(crate) fn fit_model_delta(
    config: &GrimpConfig,
    fds: &FdSet,
    dirty: &Table,
    delta_from: Option<usize>,
    sink: &mut dyn EventSink,
) -> Result<FittedModel, GrimpError> {
    if dirty.n_columns() == 0 {
        return Err(GrimpError::EmptySchema);
    }
    let fit_start = Instant::now();
    let mut trace = Trace::new(sink);
    let fit_span = trace.enter(names::FIT, 0);

    // Admission-time memory governor: estimate the graph + tape footprint
    // before anything is allocated, and when it exceeds the budget walk
    // the downscale ladder (value-node cap, then hidden dims) instead of
    // OOM-ing mid-fit. Every decision lands in the report and the trace.
    let mut effective = config.clone();
    let mut downscales = Vec::new();
    if let Some(budget_mb) = config.memory_budget_mb {
        let estimate = estimate_footprint(dirty, config);
        trace.counter(names::MEM_ESTIMATE, 0, estimate.total_bytes());
        let (downsized, decisions) = downscale_to_budget(config, dirty, budget_mb);
        for d in &decisions {
            trace.counter(names::DOWNSCALE, d.rung.code(), d.value);
        }
        effective = downsized;
        downscales = decisions;
    }
    let cfg = &effective;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // All checkpoint-path IO goes through this handle so faults can be
    // injected deterministically (`GrimpConfig::io_fault`).
    let mut ckfs: Box<dyn GrimpFs> = match cfg.io_fault {
        Some(plan) => Box::new(FaultFs::new(plan)),
        None => Box::new(RealFs),
    };

    // Normalize numericals (paper §3.2); labels and the graph use the
    // normalized copy, outputs are de-normalized at the end.
    let normalizer = Normalizer::fit(dirty);
    let mut norm = dirty.clone();
    normalizer.apply(&mut norm);

    // Per-column degradation ladder: columns that cannot possibly train a
    // task head (no observed value, or a single distinct one) start below
    // the GNN tier and never enter the shared objective.
    let mut tiers: Vec<ColumnTier> = (0..dirty.n_columns())
        .map(|j| detect_column_tier(dirty, j))
        .collect();

    // Training corpus and validation holdout (§3.3, §3.6). Demoted columns
    // contribute no samples: their observed cells stay in the graph as
    // context, but their (degenerate) loss is dropped from the objective.
    let mut corpus = Corpus::build(&norm, cfg.validation_fraction, &mut rng);
    for (j, tier) in tiers.iter().enumerate() {
        if *tier != ColumnTier::Gnn {
            corpus.train[j].clear();
            corpus.validation[j].clear();
        }
    }
    // Append-delta fine-tune: only the appended tail contributes training
    // samples (the base rows are already learned), but validation spans the
    // whole table so early stopping and the drift check measure quality on
    // everything the model serves.
    if let Some(base_rows) = delta_from {
        for samples in corpus.train.iter_mut() {
            samples.retain(|s| s.row >= base_rows);
        }
    }
    let excluded: Vec<(usize, usize)> = corpus
        .validation_flat()
        .map(|s| (s.row, s.target_col))
        .collect();

    // Graph without validation edges (§3.6) — test cells are already ∅.
    // Sampled mode builds it in row chunks of `batch_rows` so the peak
    // transient footprint scales with the batch, not the table; the result
    // is bit-identical to the monolithic build.
    let graph = match &cfg.sampler {
        Some(s) => {
            TableGraph::build_chunked_traced(&norm, cfg.graph, &excluded, s.batch_rows, &mut trace)
        }
        None => match delta_from {
            // Append-delta path: grow the base graph by the appended rows
            // (CSR segment append + value-node dictionary growth) instead
            // of rebuilding from scratch. `append_rows` is proptest-proven
            // bit-identical to the monolithic build, so a capped graph (or
            // any other rejection) can just fall back to scratch.
            Some(base_rows) if base_rows <= norm.n_rows() => {
                let base_excluded: Vec<(usize, usize)> = excluded
                    .iter()
                    .copied()
                    .filter(|&(i, _)| i < base_rows)
                    .collect();
                let base = norm.head(base_rows);
                let mut g = TableGraph::build_traced(&base, cfg.graph, &base_excluded, &mut trace);
                match g.append_rows(&norm, &excluded) {
                    Ok(()) => g,
                    Err(_) => TableGraph::build_traced(&norm, cfg.graph, &excluded, &mut trace),
                }
            }
            _ => TableGraph::build_traced(&norm, cfg.graph, &excluded, &mut trace),
        },
    };

    // Feature init. The FastText arm captures its seed so the fitted model
    // can recompute identical features on unseen tables; drawing exactly
    // one u64 keeps the RNG stream identical to `build_features`.
    let feat_span = trace.enter(names::FEATURE_INIT, 0);
    let (features, ft_seed) = match cfg.features {
        FeatureSource::FastText => {
            let seed: u64 = rng.gen();
            (fasttext_features(&graph, cfg.feature_dim, seed), Some(seed))
        }
        source => (
            build_features(&graph, &norm, source, cfg.feature_dim, &cfg.embdi, &mut rng),
            None,
        ),
    };
    trace.counter(names::FEATURE_DIM, 0, features.dim as u64);
    trace.exit(names::FEATURE_INIT, 0, feat_span);
    let feature_tensor = Tensor::from_vec(graph.n_nodes(), cfg.feature_dim, features.node_matrix);

    // Shared layer: HeteroGNN + two-linear-layer merge (§3.5), then one
    // task head per attribute.
    let model_span = trace.enter(names::MODEL_BUILD, 0);
    let mut tape = Tape::new();
    tape.set_legacy_mode(cfg.legacy_hot_path);
    tape.set_backend(cfg.backend);
    trace.counter(
        names::BACKEND,
        cfg.backend.code(),
        cfg.backend.threads() as u64,
    );
    let mut gnn = HeteroSage::new(&mut tape, &graph, cfg.feature_dim, cfg.gnn, &mut rng);
    let merge = Mlp::new(
        &mut tape,
        &[cfg.gnn.hidden, cfg.merge_hidden, cfg.embed_dim],
        &mut rng,
    );
    let n_cols = norm.n_columns();
    let tasks: Vec<Task> = (0..n_cols)
        .map(|j| {
            let out_dim = match norm.schema().column(j).kind {
                ColumnKind::Categorical => norm.dictionary(j).len().max(1),
                ColumnKind::Numerical => 1,
            };
            let q_init = Some(attribute_q_init(
                &features.attribute_matrix,
                features.dim,
                n_cols,
                cfg.embed_dim,
            ));
            Task::new(
                &mut tape,
                cfg.task_kind,
                n_cols,
                cfg.embed_dim,
                cfg.merge_hidden,
                out_dim,
                j,
                cfg.k_strategy,
                fds,
                q_init,
                &mut rng,
            )
        })
        .collect();
    // Optimized hot path: register the node features once as a persistent
    // input that survives every reset. The legacy path keeps the tensor
    // around and re-clones it onto the tape each epoch.
    let mut feature_tensor = Some(feature_tensor);
    let persistent_x = (!cfg.legacy_hot_path)
        .then(|| tape.input(feature_tensor.take().expect("features not yet consumed")));
    tape.freeze();
    let n_weights = tape.total_param_elems();
    trace.counter(names::N_WEIGHTS, 0, n_weights as u64);
    trace.exit(names::MODEL_BUILD, 0, model_span);
    let mut adam = Adam::new(cfg.lr);

    // Pre-build the per-task batches. Full-batch mode fixes them for the
    // whole run; sampled mode carves a fixed-shape mini-batch per task
    // (refilled in place every epoch) and keeps the full pool around.
    let batch_span = trace.enter(names::BATCH_BUILD, 0);
    let (mut train_batches, mut sampled) = match &cfg.sampler {
        Some(s) => {
            let (batches, pools) = build_sampled_task_batches(
                &graph,
                &norm,
                &corpus.train,
                cfg.embed_dim,
                s.batch_rows,
            );
            let st = SampledTraining {
                sampler: NeighborSampler::new(&graph, cfg.seed, s.fanout),
                batch_rows: s.batch_rows,
                pools,
                scratch: Vec::new(),
            };
            trace.counter(names::BATCH_ROWS, 0, s.batch_rows as u64);
            trace.counter(names::FANOUT, 0, s.fanout as u64);
            (batches, Some(st))
        }
        None => (
            build_task_batches(
                &graph,
                &norm,
                &corpus.train,
                cfg.embed_dim,
                cfg.max_train_samples_per_task,
                &mut rng,
            ),
            None,
        ),
    };
    let val_batches = build_task_batches(
        &graph,
        &norm,
        &corpus.validation,
        cfg.embed_dim,
        cfg.sampler.as_ref().map(|s| s.batch_rows),
        &mut rng,
    );
    trace.exit(names::BATCH_BUILD, 0, batch_span);

    // A GNN-tier column can still end up with zero training samples (e.g.
    // every observed cell landed in the validation split): it cannot learn
    // a head either, so it steps down to the baseline tier. Not in delta
    // mode — there an empty batch just means the appended rows brought no
    // new observations for a column whose head is already trained (the
    // resumed checkpoint carries its weights), so it stays on the GNN tier.
    if delta_from.is_none() {
        for (j, tb) in train_batches.iter().enumerate() {
            if tiers[j] == ColumnTier::Gnn && tb.is_none() {
                tiers[j] = ColumnTier::Baseline;
            }
        }
    }
    // With no GNN-tier column left the epoch loop is skipped entirely —
    // every column fills from its ladder tier at impute time.
    let trainable = tiers.contains(&ColumnTier::Gnn);

    // Training loop with early stopping on validation loss, wrapped in
    // the divergence guard + rollback/recovery machinery.
    let mut report = TrainReport {
        n_weights,
        downscales,
        backend_threads: cfg.backend.threads(),
        sampler_batch_rows: cfg.sampler.as_ref().map(|s| s.batch_rows),
        sampler_fanout: cfg.sampler.as_ref().map(|s| s.fanout),
        ..Default::default()
    };
    let mut state = TrainState::new(cfg.lr);
    let mut best_params: Option<Vec<Tensor>> = None;

    // Resume from a disk checkpoint when asked to. A missing file starts
    // a fresh run; an unreadable or mismatched one is reported and also
    // starts fresh — resume must never panic.
    let mut ckpt_path = cfg.checkpoint_dir.as_ref().map(|d| d.join(CHECKPOINT_FILE));
    let mut _dir_lock: Option<DirLock> = None;
    if let Some(dir) = &cfg.checkpoint_dir {
        use grimp_obs::fs::{with_retry_capped, IO_RETRY_ATTEMPTS};
        // Retry backoffs spend real wall-clock time; cap them at whatever
        // is left of the governor deadline so a flaky disk cannot sleep a
        // nearly-expired run past its budget.
        let retry_cap = |deadline: Option<f64>| {
            deadline.map(|d| {
                std::time::Duration::from_secs_f64((d - fit_start.elapsed().as_secs_f64()).max(0.0))
            })
        };
        if let Err(e) = with_retry_capped(IO_RETRY_ATTEMPTS, retry_cap(cfg.deadline_secs), || {
            ckfs.create_dir_all(dir)
        }) {
            report.io_errors.push(format!(
                "cannot create checkpoint dir {}: {e}",
                dir.display()
            ));
            trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
        }
        // Exclusive lock so two concurrent runs cannot corrupt each
        // other's checkpoint rotation. A held lock is a hard error (the
        // caller picked the directory); any other lock-file IO failure
        // degrades to checkpoint-less training.
        // Transient faults are retried (FaultFs injects them *before*
        // creating the file, and a real EINTR mid-create leaves nothing
        // behind either, so a retry cannot trip over its own lock file).
        match with_retry_capped(IO_RETRY_ATTEMPTS, retry_cap(cfg.deadline_secs), || {
            DirLock::acquire(ckfs.as_mut(), dir)
        }) {
            Ok(lock) => _dir_lock = Some(lock),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // Stale-lock reclaim: a lock whose recorded holder is no
                // longer alive (or whose content is unreadable — a torn
                // write from a crashed run) would otherwise livelock every
                // future run on this directory. Remove it, trace the
                // reclaim, and retry once. A live holder — including this
                // very process — stays a hard error.
                let owner = DirLock::owner_pid(ckfs.as_mut(), dir);
                if owner.is_some_and(crate::governor::pid_alive) {
                    return Err(GrimpError::LockHeld {
                        path: dir.join(crate::governor::LOCK_FILE),
                        owner_pid: owner,
                    });
                }
                let _ = std::fs::remove_file(dir.join(crate::governor::LOCK_FILE));
                trace.counter(names::LOCK_RECLAIMED, u64::from(owner.unwrap_or(0)), 1);
                report.locks_reclaimed += 1;
                match with_retry_capped(IO_RETRY_ATTEMPTS, retry_cap(cfg.deadline_secs), || {
                    DirLock::acquire(ckfs.as_mut(), dir)
                }) {
                    Ok(lock) => _dir_lock = Some(lock),
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        // Lost the race to another run between the reclaim
                        // and our retry; that holder is live by construction.
                        return Err(GrimpError::LockHeld {
                            path: dir.join(crate::governor::LOCK_FILE),
                            owner_pid: DirLock::owner_pid(ckfs.as_mut(), dir),
                        });
                    }
                    Err(e) => {
                        report.io_errors.push(format!(
                            "cannot lock checkpoint dir {}: {e}; continuing without checkpoints",
                            dir.display()
                        ));
                        trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
                        ckpt_path = None;
                        let _ = std::fs::remove_file(dir.join(crate::governor::LOCK_FILE));
                    }
                }
            }
            Err(e) => {
                report.io_errors.push(format!(
                    "cannot lock checkpoint dir {}: {e}; continuing without checkpoints",
                    dir.display()
                ));
                trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
                ckpt_path = None;
                // The failed create may have left a half-written lock file
                // behind (torn write); it was ours, so clean it up.
                let _ = std::fs::remove_file(dir.join(crate::governor::LOCK_FILE));
            }
        }
    }
    if cfg.resume {
        if let Some(dir) = &cfg.checkpoint_dir {
            // Two-generation fallback: a truncated or bit-flipped current
            // checkpoint (rejected by its CRC-32 footer) is reported, then
            // the previous good generation is tried before giving up and
            // restarting from scratch.
            let candidates = [dir.join(CHECKPOINT_FILE), dir.join(CHECKPOINT_PREV_FILE)];
            for path in candidates.iter().filter(|p| p.exists()) {
                match TrainCheckpoint::load(path) {
                    Ok(ck) if snapshot_shapes_match(&tape, &ck.params) => {
                        tape.restore_param_values(&ck.params);
                        adam.import_state(&ck.adam);
                        rng = StdRng::from_state(ck.rng);
                        state = TrainState {
                            epoch: ck.epoch as usize,
                            lr: ck.lr,
                            best_val: ck.best_val,
                            since_best: ck.since_best as usize,
                            recoveries: ck.recoveries as usize,
                        };
                        best_params = ck.best_params;
                        report.resumed_from_epoch = Some(state.epoch);
                        trace.counter(names::RESUME, state.epoch as u64, 1);
                        break;
                    }
                    Ok(_) => {
                        report.io_errors.push(format!(
                            "checkpoint at {} does not match this model's parameter shapes; \
                             restarting from scratch",
                            path.display()
                        ));
                        trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
                    }
                    Err(e) => {
                        report.io_errors.push(format!(
                            "failed to resume from {}: {e}; restarting from scratch",
                            path.display()
                        ));
                        trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
                    }
                }
            }
        }
    }
    #[cfg(any(test, feature = "fault-injection"))]
    let fault_plan = cfg.fault_injection;
    #[cfg(any(test, feature = "fault-injection"))]
    let mut injected = 0usize;

    let mut last_good = Snapshot {
        state,
        params: tape.snapshot_param_values(),
        adam: adam.export_state(),
    };
    let mut degraded = false;
    // Whether the GNN is still bound to a per-epoch sampled adjacency when
    // training ends; imputation then lazily rebinds to the full graph.
    let mut adjacency_sampled = false;
    let checkpoint_every = cfg.checkpoint_every.max(1);
    // Persistent checkpoint-write failures disable checkpointing for the
    // rest of the run (training continues checkpoint-less) instead of
    // hammering a dead disk every epoch. Transient faults are already
    // retried inside `save_with` and reset the strike counter on success.
    let mut ckpt_strikes = 0usize;
    let mut train_losses: Vec<Var> = Vec::new();
    while trainable && state.epoch < cfg.max_epochs && state.since_best < cfg.patience {
        // Resource governance, checked at every epoch boundary: a blown
        // wall-clock budget or a shutdown request stops training cleanly —
        // the final checkpoint below still runs, and imputation proceeds
        // from whatever epochs completed.
        if let Some(deadline) = cfg.deadline_secs {
            if fit_start.elapsed().as_secs_f64() >= deadline {
                report.deadline_hit = true;
                report.stopped_at_epoch = Some(state.epoch);
                trace.counter(names::DEADLINE_HIT, state.epoch as u64, 1);
                break;
            }
        }
        if let Some(flag) = &cfg.shutdown {
            if flag.is_requested() {
                report.interrupted = true;
                report.stopped_at_epoch = Some(state.epoch);
                trace.counter(names::INTERRUPTED, state.epoch as u64, 1);
                break;
            }
        }
        let epoch_idx = state.epoch as u64;
        let misses_before = tape.workspace_stats().misses;
        let epoch_start = Instant::now();
        let epoch_span = trace.enter(names::EPOCH, epoch_idx);

        // Neighbor-sampled mode: re-draw this epoch's sampled adjacency and
        // mini-batches before the forward pass. Every draw is a pure
        // function of (seed, epoch, task) — independent of the training RNG
        // stream — so resumed and rolled-back epochs re-draw identically.
        let mut sampled_edges = 0u64;
        if let Some(st) = sampled.as_mut() {
            sampled_edges = st.sampler.sample_epoch(epoch_idx);
            gnn.rebind_lists(st.sampler.lists());
            adjacency_sampled = true;
            for (j, pool) in st.pools.iter_mut().enumerate() {
                let Some(pool) = pool else { continue };
                if tiers[j] != ColumnTier::Gnn {
                    continue;
                }
                let Some(tb) = train_batches[j].as_mut() else {
                    continue;
                };
                pool.refill_epoch(
                    cfg.seed,
                    epoch_idx,
                    j as u64,
                    st.batch_rows,
                    &graph,
                    &norm,
                    &mut st.scratch,
                    tb,
                );
            }
            trace.counter(names::SAMPLED_EDGES, epoch_idx, sampled_edges);
        }

        let forward_start = Instant::now();
        let fwd_span = trace.enter(names::FORWARD, epoch_idx);
        let x = match persistent_x {
            Some(x) => x,
            None => tape.input(
                feature_tensor
                    .as_ref()
                    .expect("legacy path keeps features")
                    .clone(),
            ),
        };
        let h0 = gnn.forward(&mut tape, x);
        let h = merge.forward(&mut tape, h0);

        train_losses.clear();
        for (j, (task, tb)) in tasks.iter().zip(&train_batches).enumerate() {
            if tiers[j] != ColumnTier::Gnn {
                continue;
            }
            let Some(tb) = tb else { continue };
            let l = task_loss(&mut tape, task, h, tb, cfg.categorical_loss);
            #[cfg(any(test, feature = "fault-injection"))]
            inject_task_loss_fault(
                &mut tape,
                l,
                fault_plan.as_ref(),
                j,
                state.epoch,
                &mut injected,
            );
            let lv = tape.value(l).item();
            if !lv.is_finite() {
                // Per-column divergence: demote just this column and keep
                // training the others. The poisoned loss node is excluded
                // from the summed objective, so backward never touches it.
                let a = TrainAnomaly::NonFiniteTaskLoss {
                    epoch: state.epoch,
                    column: j,
                };
                trace.counter(names::ANOMALY, epoch_idx, anomaly_code(&a));
                report.anomalies.push(a);
                trace.counter(names::COLUMN_DEMOTED, j as u64, state.epoch as u64);
                tiers[j] = ColumnTier::Baseline;
                continue;
            }
            if trace.is_enabled() {
                trace.metric(names::TASK_LOSS, j as u64, f64::from(lv));
            }
            train_losses.push(l);
        }
        let mut val_total = 0.0f32;
        for (j, (task, tb)) in tasks.iter().zip(&val_batches).enumerate() {
            if tiers[j] != ColumnTier::Gnn {
                continue;
            }
            let Some(tb) = tb else { continue };
            let l = task_loss(&mut tape, task, h, tb, cfg.categorical_loss);
            let lv = tape.value(l).item();
            if !lv.is_finite() {
                let a = TrainAnomaly::NonFiniteTaskLoss {
                    epoch: state.epoch,
                    column: j,
                };
                trace.counter(names::ANOMALY, epoch_idx, anomaly_code(&a));
                report.anomalies.push(a);
                trace.counter(names::COLUMN_DEMOTED, j as u64, state.epoch as u64);
                tiers[j] = ColumnTier::Baseline;
                continue;
            }
            val_total += lv;
        }
        if train_losses.is_empty() {
            tape.reset();
            // Nothing trainable: the attempt produced no epoch. Close the
            // span as a rollback so trace consumers discard it too.
            trace.exit_with(
                names::EPOCH_ROLLBACK,
                epoch_idx,
                epoch_span,
                epoch_start.elapsed().as_secs_f64(),
            );
            drop(fwd_span);
            break;
        }
        let total = tape.add_n(&train_losses);
        let train_total = tape.value(total).item();
        let fwd_dt = forward_start.elapsed().as_secs_f64();
        report.forward_s += fwd_dt;
        trace.exit_with(names::FORWARD, epoch_idx, fwd_span, fwd_dt);

        // Divergence guard: loss finiteness after the forward pass,
        // gradient finiteness (via the global norm) after backward,
        // parameter finiteness after the optimizer step.
        let mut anomaly: Option<TrainAnomaly> = None;
        let mut grad_norm = 0.0f64;
        let mut bwd_dt = 0.0f64;
        let mut opt_dt = 0.0f64;
        if !train_total.is_finite() || !val_total.is_finite() {
            anomaly = Some(TrainAnomaly::NonFiniteLoss {
                epoch: state.epoch,
                train: train_total,
                val: val_total,
            });
        } else {
            let backward_start = Instant::now();
            let bwd_span = trace.enter(names::BACKWARD, epoch_idx);
            tape.backward(total);
            bwd_dt = backward_start.elapsed().as_secs_f64();
            report.backward_s += bwd_dt;
            trace.exit_with(names::BACKWARD, epoch_idx, bwd_span, bwd_dt);
            if trace.is_enabled() {
                trace.counter(
                    names::TAPE_BACKWARD_NODES,
                    epoch_idx,
                    tape.last_backward_stats().nodes_visited,
                );
            }

            #[cfg(any(test, feature = "fault-injection"))]
            inject_gradient_fault(&mut tape, fault_plan.as_ref(), state.epoch, &mut injected);

            grad_norm = tape.global_grad_norm();
            if !grad_norm.is_finite() {
                anomaly = Some(TrainAnomaly::NonFiniteGradient {
                    epoch: state.epoch,
                    norm: grad_norm,
                });
            } else {
                if let Some(max) = cfg.max_grad_norm {
                    if grad_norm > f64::from(max) {
                        tape.scale_param_grads((f64::from(max) / grad_norm) as f32);
                        report.clip_activations += 1;
                        trace.counter(names::GRAD_CLIP, epoch_idx, 1);
                    }
                }
                let optim_start = Instant::now();
                let opt_span = trace.enter(names::OPTIM, epoch_idx);
                adam.lr = state.lr;
                adam.step(&mut tape);
                opt_dt = optim_start.elapsed().as_secs_f64();
                report.optim_s += opt_dt;
                trace.exit_with(names::OPTIM, epoch_idx, opt_span, opt_dt);

                #[cfg(any(test, feature = "fault-injection"))]
                inject_parameter_fault(&mut tape, fault_plan.as_ref(), state.epoch, &mut injected);

                if !tape.params_all_finite() {
                    anomaly = Some(TrainAnomaly::NonFiniteParameter { epoch: state.epoch });
                }
            }
        }
        let reset_start = Instant::now();
        let reset_span = trace.enter(names::TAPE_RESET, epoch_idx);
        tape.reset();
        let reset_dt = reset_start.elapsed().as_secs_f64();
        report.optim_s += reset_dt;
        trace.exit_with(names::TAPE_RESET, epoch_idx, reset_span, reset_dt);

        if let Some(a) = anomaly {
            // Recovery policy: roll back to the last good epoch, halve
            // the learning rate, and retry — up to `max_recoveries`
            // times, after which the run degrades to the baseline.
            trace.counter(names::ANOMALY, epoch_idx, anomaly_code(&a));
            report.anomalies.push(a);
            tape.restore_param_values(&last_good.params);
            adam.import_state(&last_good.adam);
            let mut st = last_good.state;
            st.lr *= 0.5;
            st.recoveries += 1;
            state = st;
            last_good.state = st;
            report.recoveries = st.recoveries;
            trace.counter(names::RECOVERY, epoch_idx, st.recoveries as u64);
            trace.metric(names::LR, epoch_idx, f64::from(st.lr));
            trace.exit_with(
                names::EPOCH_ROLLBACK,
                epoch_idx,
                epoch_span,
                epoch_start.elapsed().as_secs_f64(),
            );
            if st.recoveries > cfg.max_recoveries {
                degraded = true;
                trace.counter(names::DEGRADED, epoch_idx, 1);
                break;
            }
            continue;
        }

        let allocs = tape.workspace_stats().misses - misses_before;
        let mut stats = EpochStats {
            epoch: state.epoch,
            train_loss: train_total,
            val_loss: val_total,
            grad_norm,
            allocs,
            seconds: 0.0,
            forward_s: fwd_dt,
            backward_s: bwd_dt,
            optim_s: opt_dt + reset_dt,
            sampled_edges,
        };
        state.epoch += 1;
        if val_total + 1e-5 < state.best_val {
            state.best_val = val_total;
            state.since_best = 0;
            // explicit best-validation checkpoint: imputation runs from
            // these parameters, not from wherever training stopped
            tape.snapshot_param_values_into(best_params.get_or_insert_with(Vec::new));
        } else {
            state.since_best += 1;
        }
        last_good.state = state;
        tape.snapshot_param_values_into(&mut last_good.params);
        adam.export_state_into(&mut last_good.adam);

        if let Some(path) = &ckpt_path {
            if !report.checkpoints_disabled && state.epoch.is_multiple_of(checkpoint_every) {
                let ck_span = trace.enter(names::CHECKPOINT_SAVE, epoch_idx);
                #[cfg(any(test, feature = "fault-injection"))]
                let ckpt_fault = fault_due(
                    fault_plan.as_ref(),
                    FaultKind::CheckpointWrite,
                    state.epoch,
                    &mut injected,
                );
                #[cfg(not(any(test, feature = "fault-injection")))]
                let ckpt_fault = false;
                let ck = build_checkpoint(&tape, &adam, &state, &rng, &best_params);
                match save_checkpoint(&ck, ckfs.as_mut(), path, ckpt_fault) {
                    Ok(n) => {
                        ckpt_strikes = 0;
                        report.checkpoint_bytes = n;
                        trace.counter(names::CHECKPOINT_BYTES, epoch_idx, n as u64);
                    }
                    Err(e) => {
                        report
                            .io_errors
                            .push(format!("checkpoint write failed: {e}"));
                        trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
                        ckpt_strikes += 1;
                        if ckpt_strikes >= CHECKPOINT_MAX_STRIKES {
                            report.checkpoints_disabled = true;
                            trace.counter(names::CHECKPOINT_DISABLED, epoch_idx, 1);
                        }
                    }
                }
                trace.exit(names::CHECKPOINT_SAVE, epoch_idx, ck_span);
            }
        }
        let epoch_dt = epoch_start.elapsed().as_secs_f64();
        stats.seconds = epoch_dt;
        trace.metric(names::TRAIN_LOSS, epoch_idx, f64::from(train_total));
        trace.metric(names::VAL_LOSS, epoch_idx, f64::from(val_total));
        trace.metric(names::GRAD_NORM, epoch_idx, grad_norm);
        trace.counter(names::EPOCH_ALLOCS, epoch_idx, allocs);
        trace.exit_with(names::EPOCH, epoch_idx, epoch_span, epoch_dt);
        report.push_epoch(stats);
    }
    report.early_stopped = state.since_best >= cfg.patience;
    if report.early_stopped {
        trace.counter(names::EARLY_STOP, state.epoch as u64, 1);
    }
    // Drift trigger (delta mode): when the fine-tuned model's final
    // validation loss regressed beyond the configured band relative to the
    // run's best, the delta has drifted from the base distribution and a
    // full refit is scheduled (recorded here; the incremental driver acts
    // on it at the next append).
    if delta_from.is_some() && !degraded {
        if let Some(last) = report.epochs.last() {
            let best = f64::from(state.best_val);
            let drift = (f64::from(last.val_loss) - best) / best.max(1e-6);
            report.drift = Some(drift);
            trace.metric(names::DRIFT, state.epoch as u64, drift);
            if drift > f64::from(cfg.finetune.drift_band) {
                report.refit_scheduled = true;
                trace.counter(names::REFIT_SCHEDULED, state.epoch as u64, 1);
            }
        }
    }
    report.recoveries = state.recoveries;
    report.degraded_to_baseline = degraded;
    // A run-level degradation is the bottom of the ladder for every column
    // that was still training: each steps down to its mode/mean baseline.
    if degraded {
        for t in tiers.iter_mut() {
            if *t == ColumnTier::Gnn {
                *t = ColumnTier::Baseline;
            }
        }
    }
    // A deadline or interrupt that fired before a single epoch completed
    // (and without a resumed checkpoint) leaves the task heads at their
    // random init — imputing from them would be noise, so every GNN-tier
    // column steps down to its mode/mean baseline instead.
    if (report.deadline_hit || report.interrupted) && state.epoch == 0 {
        for t in tiers.iter_mut() {
            if *t == ColumnTier::Gnn {
                *t = ColumnTier::Baseline;
            }
        }
    }
    for (j, t) in tiers.iter().enumerate() {
        trace.counter(names::COLUMN_TIER, j as u64, t.code());
    }
    report.column_tiers = tiers.clone();

    // Final checkpoint, so resuming a finished run is a no-op. Skipped
    // when degraded: the surviving state is the rolled-back one and the
    // caller should restart, not resume, such a run.
    if !degraded {
        let ck_span = trace.enter(names::CHECKPOINT_SAVE, state.epoch as u64);
        let ck = build_checkpoint(&tape, &adam, &state, &rng, &best_params);
        match &ckpt_path {
            Some(path) if !report.checkpoints_disabled => {
                #[cfg(any(test, feature = "fault-injection"))]
                let ckpt_fault = fault_due(
                    fault_plan.as_ref(),
                    FaultKind::CheckpointWrite,
                    state.epoch,
                    &mut injected,
                );
                #[cfg(not(any(test, feature = "fault-injection")))]
                let ckpt_fault = false;
                match save_checkpoint(&ck, ckfs.as_mut(), path, ckpt_fault) {
                    Ok(n) => report.checkpoint_bytes = n,
                    Err(e) => {
                        report
                            .io_errors
                            .push(format!("checkpoint write failed: {e}"));
                        trace.counter(names::IO_ERROR, report.io_errors.len() as u64, 1);
                    }
                }
            }
            _ => report.checkpoint_bytes = ck.to_bytes().len(),
        }
        if report.checkpoint_bytes > 0 {
            trace.counter(
                names::CHECKPOINT_BYTES,
                state.epoch as u64,
                report.checkpoint_bytes as u64,
            );
        }
        trace.exit(names::CHECKPOINT_SAVE, state.epoch as u64, ck_span);
    }

    let fit_dt = fit_start.elapsed().as_secs_f64();
    report.seconds = fit_dt;
    trace.exit_with(names::FIT, 0, fit_span, fit_dt);
    let _ = trace.flush();

    let dictionaries: Vec<Vec<String>> = (0..n_cols)
        .map(|j| match norm.schema().column(j).kind {
            ColumnKind::Categorical => norm.dictionary(j).to_vec(),
            ColumnKind::Numerical => Vec::new(),
        })
        .collect();
    Ok(FittedModel {
        config: cfg.clone(),
        normalizer,
        norm,
        train_dirty: dirty.clone(),
        graph,
        tape,
        gnn,
        merge,
        tasks,
        persistent_x,
        feature_tensor,
        best_params,
        degraded,
        dictionaries,
        ft_seed,
        needs_rebind: adjacency_sampled,
        tiers,
        report,
    })
}

/// Rebuild a [`FittedModel`] from a saved [`TrainCheckpoint`] without
/// training: the model *structure* (graph, features, tape, task heads) is
/// reconstructed deterministically from the table and configuration —
/// exactly as `fit_model` would build it, including any admission-time
/// memory downscale — and the checkpoint's weights are restored onto it.
///
/// No checkpoint-directory lock is taken and nothing is written: a serving
/// process can restore from a directory a trainer is actively rotating.
///
/// # Errors
/// [`GrimpError::EmptySchema`] for a zero-column table, or
/// [`GrimpError::Checkpoint`]-shaped corruption when the checkpoint's
/// parameter shapes do not match the rebuilt structure (a checkpoint from
/// a different table or configuration).
pub(crate) fn restore_model(
    config: &GrimpConfig,
    fds: &FdSet,
    dirty: &Table,
    ck: &TrainCheckpoint,
    sink: &mut dyn EventSink,
) -> Result<FittedModel, GrimpError> {
    let mut structure = config.clone();
    // Skip the training loop (the structure build before it draws from the
    // RNG identically regardless of max_epochs, so shapes line up with the
    // fit that wrote the checkpoint), and strip every side effect: no
    // locking, no resume, no checkpoint writes, no fault injection.
    structure.max_epochs = 0;
    structure.checkpoint_dir = None;
    structure.resume = false;
    structure.io_fault = None;
    let mut fitted = fit_model(&structure, fds, dirty, sink)?;
    fitted
        .restore_checkpoint(ck)
        .map_err(|source| GrimpError::Checkpoint {
            path: std::path::PathBuf::from("<in-memory checkpoint>"),
            source,
        })?;
    fitted.config.max_epochs = config.max_epochs;
    Ok(fitted)
}

/// Consecutive checkpoint-write failures after which the run stops trying
/// (training continues checkpoint-less, with a `checkpoint_disabled` event).
const CHECKPOINT_MAX_STRIKES: usize = 2;

/// Save a checkpoint through the run's (possibly fault-injected) IO layer,
/// or fail with an injected IO error when the legacy fault plan poisons
/// checkpoint writes (chaos-harness hook; `inject_io_fault` is constant
/// `false` outside fault-injection builds).
fn save_checkpoint(
    ck: &TrainCheckpoint,
    fs: &mut dyn GrimpFs,
    path: &std::path::Path,
    inject_io_fault: bool,
) -> Result<usize, grimp_tensor::CheckpointError> {
    if inject_io_fault {
        return Err(grimp_tensor::CheckpointError::Io(std::io::Error::other(
            "injected checkpoint write fault",
        )));
    }
    ck.save_with(fs, path)
}

/// `true` when a checkpoint's parameter tensors line up one-to-one, shape
/// for shape, with the tape's trainable parameters.
fn snapshot_shapes_match(tape: &Tape, params: &[Tensor]) -> bool {
    let current = tape.snapshot_param_values();
    current.len() == params.len()
        && current
            .iter()
            .zip(params)
            .all(|(a, b)| a.shape() == b.shape())
}

/// Assemble a serializable checkpoint from the live training objects.
fn build_checkpoint(
    tape: &Tape,
    adam: &Adam,
    state: &TrainState,
    rng: &StdRng,
    best_params: &Option<Vec<Tensor>>,
) -> TrainCheckpoint {
    TrainCheckpoint {
        epoch: state.epoch as u64,
        lr: state.lr,
        recoveries: state.recoveries as u32,
        best_val: state.best_val,
        since_best: state.since_best as u64,
        rng: rng.state(),
        params: tape.snapshot_param_values(),
        adam: adam.export_state(),
        best_params: best_params.clone(),
    }
}

/// Mode/mean fallback (safety net of [`Grimp::fit_impute_traced`]): every
/// missing categorical gets its column mode, every missing numerical its
/// column mean, and columns with no statistic at all fall to the global
/// constants — every missing cell is filled, without exception.
fn baseline_fill(dirty: &Table) -> Table {
    let mut result = dirty.clone();
    for (i, j) in dirty.missing_cells() {
        match dirty.schema().column(j).kind {
            ColumnKind::Categorical => {
                let code = dirty
                    .mode(j)
                    .unwrap_or_else(|| result.intern(j, CONSTANT_FILL_CATEGORICAL));
                result.set(i, j, Value::Cat(code));
            }
            ColumnKind::Numerical => {
                result.set(
                    i,
                    j,
                    Value::Num(dirty.mean(j).unwrap_or(CONSTANT_FILL_NUMERICAL)),
                );
            }
        }
    }
    result
}

/// Corrupt one gradient element with `NaN` when the fault plan says this is
/// the epoch (and the injection budget is not yet spent).
#[cfg(any(test, feature = "fault-injection"))]
fn inject_gradient_fault(
    tape: &mut Tape,
    plan: Option<&FaultPlan>,
    epoch: usize,
    injected: &mut usize,
) {
    if !fault_due(plan, FaultKind::GradNan, epoch, injected) {
        return;
    }
    for i in 0..tape.param_count() {
        let v = Var::from_index(i);
        if !tape.is_trainable(v) {
            continue;
        }
        if let Some(first) = tape.grad_mut(v).and_then(|g| g.as_mut_slice().first_mut()) {
            *first = f32::NAN;
            return;
        }
    }
}

/// Corrupt one parameter element with `NaN` (post-optimizer-step fault).
#[cfg(any(test, feature = "fault-injection"))]
fn inject_parameter_fault(
    tape: &mut Tape,
    plan: Option<&FaultPlan>,
    epoch: usize,
    injected: &mut usize,
) {
    if !fault_due(plan, FaultKind::ParamNan, epoch, injected) {
        return;
    }
    for i in 0..tape.param_count() {
        let v = Var::from_index(i);
        if !tape.is_trainable(v) {
            continue;
        }
        if let Some(first) = tape.value_mut(v).as_mut_slice().first_mut() {
            *first = f32::NAN;
            return;
        }
    }
}

/// Poison task `column`'s loss value with `NaN` when the fault plan says
/// so: a per-column divergence that must demote only that column down the
/// degradation ladder.
#[cfg(any(test, feature = "fault-injection"))]
fn inject_task_loss_fault(
    tape: &mut Tape,
    loss: Var,
    plan: Option<&FaultPlan>,
    column: usize,
    epoch: usize,
    injected: &mut usize,
) {
    if !fault_due(plan, FaultKind::TaskLossNan(column), epoch, injected) {
        return;
    }
    if let Some(first) = tape.value_mut(loss).as_mut_slice().first_mut() {
        *first = f32::NAN;
    }
}

/// Whether a fault of `kind` fires this epoch; consumes injection budget.
#[cfg(any(test, feature = "fault-injection"))]
fn fault_due(
    plan: Option<&FaultPlan>,
    kind: FaultKind,
    epoch: usize,
    injected: &mut usize,
) -> bool {
    let Some(plan) = plan else { return false };
    if plan.kind != kind || plan.at_epoch != epoch || *injected >= plan.times {
        return false;
    }
    *injected += 1;
    true
}

impl Imputer for Grimp {
    fn name(&self) -> &str {
        variant_name(&self.config)
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        self.fit_impute(dirty)
    }
}

/// Tile/truncate pre-trained attribute vectors (`n_cols × feat_dim`) into a
/// `n_cols × embed_dim` initialization for the attention matrix `Q`.
fn attribute_q_init(
    attr_matrix: &[f32],
    feat_dim: usize,
    n_cols: usize,
    embed_dim: usize,
) -> Tensor {
    let mut q = Tensor::zeros(n_cols, embed_dim);
    for c in 0..n_cols {
        let src = &attr_matrix[c * feat_dim..(c + 1) * feat_dim];
        for d in 0..embed_dim {
            q.set(c, d, src[d % feat_dim]);
        }
    }
    q
}

/// Stream tag separating the mini-batch row draws from the neighbor
/// sampler's streams (which chain from the bare `seed ^ epoch`).
const BATCH_STREAM_TAG: u64 = 0x4241_5443_4852_5753; // "BATCHRWS"

/// SplitMix64 mixer — same finalizer the neighbor sampler uses, so every
/// per-epoch draw in sampled mode is a pure function of its key.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Label storage of a full sample pool (sampled training mode).
enum PoolLabels {
    Cat(Vec<u32>),
    Num(Vec<f32>),
}

/// One task's full training pool in sampled mode: every sample the task
/// owns, kept so each epoch can re-draw a fixed-size mini-batch from it.
/// Only tasks whose pool exceeds `batch_rows` get one — smaller tasks keep
/// their (full) fixed batch and never refill.
struct TaskPool {
    /// `(row, target_col)` of every training sample of this task.
    positions: Vec<(usize, usize)>,
    labels: PoolLabels,
    /// Scratch permutation for the per-epoch partial Fisher–Yates draw.
    perm: Vec<u32>,
}

impl TaskPool {
    /// Draw `k` distinct pool rows for `epoch` and rewrite the task's
    /// fixed-shape batch (gather indices, masks, labels) in place.
    ///
    /// The draw is a partial Fisher–Yates over a *fresh* identity
    /// permutation keyed on `(seed, epoch, task)`: uniform without
    /// replacement, allocation-free after the first epoch, and — because it
    /// never carries state across epochs — bit-identical whether the epoch
    /// is reached by straight training, a divergence rollback, or a resume.
    #[allow(clippy::too_many_arguments)]
    fn refill_epoch(
        &mut self,
        seed: u64,
        epoch: u64,
        task: u64,
        k: usize,
        graph: &TableGraph,
        table: &Table,
        scratch: &mut Vec<(usize, usize)>,
        tb: &mut TaskBatch,
    ) {
        let n = self.positions.len();
        debug_assert!(k <= n);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i as u32;
        }
        let mut state = splitmix64(seed ^ BATCH_STREAM_TAG ^ epoch);
        state = splitmix64(state ^ task);
        for i in 0..k {
            state = splitmix64(state);
            let j = i + (state % (n - i) as u64) as usize;
            self.perm.swap(i, j);
        }
        scratch.clear();
        scratch.extend(self.perm[..k].iter().map(|&i| self.positions[i as usize]));
        tb.batch.refill(graph, table, scratch);
        match (&mut tb.labels, &self.labels) {
            (Labels::Cat(dst), PoolLabels::Cat(src)) => {
                let dst = Rc::get_mut(dst)
                    .expect("refill requires the previous epoch's labels to be released");
                for (slot, &i) in self.perm[..k].iter().enumerate() {
                    dst[slot] = src[i as usize];
                }
            }
            (Labels::Num(dst), PoolLabels::Num(src)) => {
                let dst = Rc::get_mut(dst)
                    .expect("refill requires the previous epoch's labels to be released");
                for (slot, &i) in self.perm[..k].iter().enumerate() {
                    dst[slot] = src[i as usize];
                }
            }
            _ => unreachable!("a column's label kind is fixed"),
        }
    }
}

/// Runtime state of the neighbor-sampled training mode.
struct SampledTraining {
    sampler: NeighborSampler,
    batch_rows: usize,
    /// Parallel to the task list; `None` for tasks that never refill.
    pools: Vec<Option<TaskPool>>,
    /// Reused buffer of the epoch's selected `(row, target_col)` pairs.
    scratch: Vec<(usize, usize)>,
}

/// Sampled-mode counterpart of [`build_task_batches`]: tasks with at most
/// `batch_rows` samples get the same full fixed batch they would get in
/// full-batch mode; larger tasks get a fixed `batch_rows`-sized batch
/// (contents are overwritten by the epoch-0 refill before first use) plus a
/// [`TaskPool`] holding the complete sample pool.
fn build_sampled_task_batches(
    graph: &TableGraph,
    table: &Table,
    per_task: &[Vec<grimp_table::TrainingSample>],
    dim: usize,
    batch_rows: usize,
) -> (Vec<Option<TaskBatch>>, Vec<Option<TaskPool>>) {
    let mut batches = Vec::with_capacity(per_task.len());
    let mut pools = Vec::with_capacity(per_task.len());
    for (j, samples) in per_task.iter().enumerate() {
        if samples.is_empty() {
            batches.push(None);
            pools.push(None);
            continue;
        }
        let positions: Vec<(usize, usize)> =
            samples.iter().map(|s| (s.row, s.target_col)).collect();
        let cat = |n: usize| -> Vec<u32> {
            samples[..n]
                .iter()
                .map(|s| s.label.as_cat().expect("categorical label"))
                .collect()
        };
        let num = |n: usize| -> Vec<f32> {
            samples[..n]
                .iter()
                .map(|s| s.label.as_num().expect("numerical label") as f32)
                .collect()
        };
        let kind = table.schema().column(j).kind;
        if samples.len() <= batch_rows {
            let batch = VectorBatch::build(graph, table, &positions, dim);
            let labels = match kind {
                ColumnKind::Categorical => Labels::Cat(Rc::new(cat(samples.len()))),
                ColumnKind::Numerical => Labels::Num(Rc::new(num(samples.len()))),
            };
            batches.push(Some(TaskBatch { batch, labels }));
            pools.push(None);
            continue;
        }
        let batch = VectorBatch::build(graph, table, &positions[..batch_rows], dim);
        let (labels, pool_labels) = match kind {
            ColumnKind::Categorical => (
                Labels::Cat(Rc::new(cat(batch_rows))),
                PoolLabels::Cat(cat(samples.len())),
            ),
            ColumnKind::Numerical => (
                Labels::Num(Rc::new(num(batch_rows))),
                PoolLabels::Num(num(samples.len())),
            ),
        };
        batches.push(Some(TaskBatch { batch, labels }));
        pools.push(Some(TaskPool {
            perm: (0..positions.len() as u32).collect(),
            positions,
            labels: pool_labels,
        }));
    }
    (batches, pools)
}

fn build_task_batches(
    graph: &TableGraph,
    table: &Table,
    per_task: &[Vec<grimp_table::TrainingSample>],
    dim: usize,
    cap: Option<usize>,
    rng: &mut StdRng,
) -> Vec<Option<TaskBatch>> {
    per_task
        .iter()
        .enumerate()
        .map(|(j, samples)| {
            if samples.is_empty() {
                return None;
            }
            let mut samples: Vec<&grimp_table::TrainingSample> = samples.iter().collect();
            if let Some(cap) = cap {
                if samples.len() > cap {
                    samples.shuffle(rng);
                    samples.truncate(cap);
                }
            }
            let positions: Vec<(usize, usize)> =
                samples.iter().map(|s| (s.row, s.target_col)).collect();
            let batch = VectorBatch::build(graph, table, &positions, dim);
            let labels = match table.schema().column(j).kind {
                ColumnKind::Categorical => Labels::Cat(Rc::new(
                    samples
                        .iter()
                        .map(|s| s.label.as_cat().expect("categorical label"))
                        .collect(),
                )),
                ColumnKind::Numerical => Labels::Num(Rc::new(
                    samples
                        .iter()
                        .map(|s| s.label.as_num().expect("numerical label") as f32)
                        .collect(),
                )),
            };
            Some(TaskBatch { batch, labels })
        })
        .collect()
}

fn task_loss(
    tape: &mut Tape,
    task: &Task,
    h: Var,
    tb: &TaskBatch,
    cat_loss: CategoricalLoss,
) -> Var {
    let out = task.forward(tape, h, &tb.batch);
    match &tb.labels {
        Labels::Cat(targets) => match cat_loss {
            CategoricalLoss::CrossEntropy => tape.softmax_cross_entropy(out, Rc::clone(targets)),
            CategoricalLoss::Focal(gamma) => tape.focal_loss(out, Rc::clone(targets), gamma),
        },
        Labels::Num(targets) => tape.mse_loss(out, Rc::clone(targets)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskKind;
    use grimp_graph::FeatureSource;
    use grimp_table::{check_imputation_contract, inject_mcar, ColumnKind, Schema};

    /// A table where column `b` is a deterministic function of column `a` —
    /// any reasonable imputer should recover blanked `b` cells.
    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 4);
            let b = format!("b{}", i % 4);
            let x = format!("{}", (i % 4) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    fn tiny_config(kind: TaskKind) -> GrimpConfig {
        GrimpConfig {
            features: FeatureSource::FastText,
            feature_dim: 16,
            gnn: grimp_gnn::GnnConfig {
                layers: 2,
                hidden: 16,
                ..Default::default()
            },
            merge_hidden: 32,
            embed_dim: 16,
            task_kind: kind,
            max_epochs: 80,
            patience: 15,
            lr: 2e-2,
            seed: 7,
            ..GrimpConfig::paper()
        }
    }

    #[test]
    fn imputation_satisfies_the_contract() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
    }

    #[test]
    fn learns_functional_relationship_with_attention() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let imputed = model.fit_impute(&dirty);
        // accuracy on categorical cells must beat the 25 % random baseline
        let cat_cells: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat_cells
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat_cells.len().max(1) as f64;
        assert!(acc > 0.5, "categorical accuracy too low: {acc}");
        let report = model.last_report().unwrap();
        assert!(report.epochs_run > 0);
        assert_eq!(report.train_losses().len(), report.epochs_run);
        assert_eq!(report.epochs.len(), report.epochs_run);
    }

    #[test]
    fn linear_tasks_also_work() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(3));
        let mut model = Grimp::new(tiny_config(TaskKind::Linear));
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat_cells: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat_cells
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        assert!(correct as f64 / cat_cells.len().max(1) as f64 > 0.5);
    }

    #[test]
    fn numerical_imputations_are_denormalized() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(4));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let imputed = model.fit_impute(&dirty);
        // imputed numericals must be in the vicinity of the column's range
        for i in 0..imputed.n_rows() {
            if dirty.is_missing(i, 2) {
                let v = imputed.get(i, 2).as_num().unwrap();
                assert!(
                    (-30.0..60.0).contains(&v),
                    "imputed numeric {v} out of range"
                );
            }
        }
    }

    #[test]
    fn focal_loss_variant_trains_and_imputes() {
        // the paper's alternative categorical loss (§3.6): same pipeline,
        // focal loss with γ = 2
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(8));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.categorical_loss = crate::config::CategoricalLoss::Focal(2.0);
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        assert!(
            correct as f64 / cat.len().max(1) as f64 > 0.5,
            "focal-loss variant underperforms"
        );
    }

    #[test]
    fn early_stopping_fires_with_zero_patience_budget() {
        let clean = functional_table(40);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(5));
        let mut cfg = tiny_config(TaskKind::Linear);
        cfg.patience = 1;
        cfg.max_epochs = 50;
        let mut model = Grimp::new(cfg);
        let _ = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert!(report.epochs_run <= 50);
    }

    /// Accuracy of `imputed` on the categorical cells of an injection log.
    fn cat_accuracy(log: &grimp_table::CorruptionLog, imputed: &Table) -> f64 {
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        correct as f64 / cat.len().max(1) as f64
    }

    #[test]
    fn injected_nan_gradient_is_detected_rolled_back_and_converges() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.fault_injection = Some(crate::fault::FaultPlan {
            at_epoch: 3,
            times: 1,
            kind: crate::fault::FaultKind::GradNan,
        });
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let report = model.last_report().unwrap();
        assert_eq!(report.anomalies_detected(), 1, "{:?}", report.anomalies);
        assert!(matches!(
            report.anomalies[0],
            crate::fault::TrainAnomaly::NonFiniteGradient { epoch: 3, .. }
        ));
        assert_eq!(report.recoveries, 1);
        assert!(!report.degraded_to_baseline);
        // the recovered run must still reach clean-run accuracy tolerance
        let acc = cat_accuracy(&log, &imputed);
        assert!(acc > 0.5, "post-recovery accuracy too low: {acc}");
    }

    #[test]
    fn injected_nan_parameter_is_detected_and_recovered() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(4));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.fault_injection = Some(crate::fault::FaultPlan {
            at_epoch: 2,
            times: 1,
            kind: crate::fault::FaultKind::ParamNan,
        });
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let report = model.last_report().unwrap();
        assert!(matches!(
            report.anomalies[0],
            crate::fault::TrainAnomaly::NonFiniteParameter { epoch: 2 }
        ));
        assert_eq!(report.recoveries, 1);
        assert!(!report.degraded_to_baseline);
    }

    #[test]
    fn exhausted_recoveries_degrade_to_baseline_and_still_impute_every_cell() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(6));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.max_recoveries = 2;
        cfg.fault_injection = Some(crate::fault::FaultPlan {
            at_epoch: 1,
            times: usize::MAX, // every retry is re-poisoned
            kind: crate::fault::FaultKind::ParamNan,
        });
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert!(report.degraded_to_baseline);
        assert_eq!(report.recoveries, 3, "budget of 2 plus the final straw");
        assert_eq!(report.anomalies_detected(), 3);
        // graceful degradation contract: imputed differs only at missing
        // cells and no imputable cell is left missing
        check_imputation_contract(&dirty, &imputed).unwrap();
        assert_eq!(imputed.n_missing(), 0, "baseline must fill every cell");
    }

    #[test]
    fn recovery_halves_the_learning_rate_each_time() {
        let clean = functional_table(40);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(9));
        let mut cfg = tiny_config(TaskKind::Linear);
        cfg.max_epochs = 10;
        cfg.max_recoveries = 5;
        cfg.fault_injection = Some(crate::fault::FaultPlan {
            at_epoch: 0,
            times: 2,
            kind: crate::fault::FaultKind::GradNan,
        });
        let mut model = Grimp::new(cfg);
        let _ = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert_eq!(report.recoveries, 2);
        assert_eq!(report.anomalies_detected(), 2);
        assert!(!report.degraded_to_baseline);
        assert!(report.epochs_run > 0, "training resumed after recovery");
    }

    #[test]
    fn gradient_clipping_activates_and_training_still_imputes() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(5));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.max_grad_norm = Some(1e-3); // absurdly tight: clips every epoch
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let report = model.last_report().unwrap();
        assert!(report.clip_activations > 0);
        assert_eq!(report.clip_activations, report.epochs_run);
        assert!(report.grad_norms().iter().all(|n| n.is_finite()));
        assert_eq!(report.grad_norms().len(), report.epochs_run);
    }

    #[test]
    fn healthy_runs_report_grad_norms_and_no_anomalies() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let _ = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert_eq!(report.anomalies_detected(), 0);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.clip_activations, 0, "default threshold never fires");
        assert_eq!(report.grad_norms().len(), report.epochs_run);
        assert!(
            report.checkpoint_bytes > 0,
            "size is reported even w/o disk"
        );
        assert!(!report.degraded_to_baseline);
    }

    #[test]
    fn interrupted_run_resumes_bit_identically() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(3));
        let dir = std::env::temp_dir().join("grimp-resume-unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.max_epochs = 30;
        cfg.patience = 30;

        // uninterrupted reference
        let reference = Grimp::new(cfg.clone()).fit_impute(&dirty);

        // phase 1: "killed" after 11 epochs, checkpointing to disk
        let mut phase1 = cfg.clone();
        phase1.max_epochs = 11;
        phase1.checkpoint_dir = Some(dir.clone());
        let _ = Grimp::new(phase1).fit_impute(&dirty);

        // phase 2: resume and finish
        let mut phase2 = cfg.clone();
        phase2.checkpoint_dir = Some(dir.clone());
        phase2.resume = true;
        let mut model = Grimp::new(phase2);
        let resumed = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert_eq!(report.resumed_from_epoch, Some(11));
        assert_eq!(report.epochs_run, 30 - 11);

        assert_tables_bit_identical(&reference, &resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_reported_and_training_restarts() {
        let clean = functional_table(40);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(7));
        let dir = std::env::temp_dir().join("grimp-corrupt-ckpt-unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(crate::checkpoint::CHECKPOINT_FILE), b"garbage").unwrap();

        let mut cfg = tiny_config(TaskKind::Linear);
        cfg.max_epochs = 5;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.resume = true;
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let report = model.last_report().unwrap();
        assert!(report.resumed_from_epoch.is_none());
        assert_eq!(report.io_errors.len(), 1, "{:?}", report.io_errors);
        assert!(report.epochs_run > 0, "training restarted from scratch");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Cell-by-cell bit-exact comparison (numericals via `f64::to_bits`).
    fn assert_tables_bit_identical(a: &Table, b: &Table) {
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.n_columns(), b.n_columns());
        for i in 0..a.n_rows() {
            for j in 0..a.n_columns() {
                match (a.get(i, j), b.get(i, j)) {
                    (Value::Num(x), Value::Num(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "cell ({i}, {j}): {x} vs {y}")
                    }
                    (x, y) => assert_eq!(x, y, "cell ({i}, {j})"),
                }
            }
        }
    }

    #[test]
    fn sampled_training_fills_every_cell_and_is_deterministic() {
        let clean = functional_table(200);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(21));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.sampler = Some(crate::config::SamplerConfig {
            batch_rows: 32,
            fanout: 4,
        });
        let mut model = Grimp::new(cfg.clone());
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        assert_eq!(imputed.n_missing(), 0, "sampled mode must fill every cell");
        let report = model.last_report().unwrap();
        assert_eq!(report.sampler_batch_rows, Some(32));
        assert_eq!(report.sampler_fanout, Some(4));
        assert!(report.epochs.iter().all(|e| e.sampled_edges > 0));
        // the sampled batches still learn the functional dependency
        let acc = cat_accuracy(&log, &imputed);
        assert!(acc > 0.5, "sampled-mode accuracy too low: {acc}");
        // bit-identical across runs with the same seed
        let again = Grimp::new(cfg).fit_impute(&dirty);
        assert_tables_bit_identical(&imputed, &again);
    }

    #[test]
    fn sampled_training_allocates_nothing_after_the_first_epoch() {
        let clean = functional_table(160);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(22));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.max_epochs = 12;
        cfg.sampler = Some(crate::config::SamplerConfig {
            batch_rows: 24,
            fanout: 3,
        });
        let mut model = Grimp::new(cfg);
        let _ = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert!(report.epochs_run > 2, "need steady-state epochs to measure");
        for e in &report.epochs[1..] {
            assert_eq!(
                e.allocs, 0,
                "epoch {} missed the tape workspace {} times",
                e.epoch, e.allocs
            );
        }
    }

    #[test]
    fn full_batch_runs_are_unchanged_by_the_sampler_machinery() {
        // cfg.sampler = None must keep the exact pre-sampler behavior:
        // no sampler provenance in the report, zero sampled edges.
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(23));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let _ = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert_eq!(report.sampler_batch_rows, None);
        assert_eq!(report.sampler_fanout, None);
        assert!(report.epochs.iter().all(|e| e.sampled_edges == 0));
    }

    #[test]
    fn sampled_run_resumes_bit_identically() {
        let clean = functional_table(150);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(24));
        let dir = std::env::temp_dir().join("grimp-sampled-resume-unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.max_epochs = 20;
        cfg.patience = 20;
        cfg.sampler = Some(crate::config::SamplerConfig {
            batch_rows: 32,
            fanout: 4,
        });

        let reference = Grimp::new(cfg.clone()).fit_impute(&dirty);

        // the per-epoch draws are keyed on (seed, epoch), so a run killed
        // mid-way and resumed must re-draw the remaining epochs identically
        let mut phase1 = cfg.clone();
        phase1.max_epochs = 7;
        phase1.checkpoint_dir = Some(dir.clone());
        let _ = Grimp::new(phase1).fit_impute(&dirty);

        // resume is only rejected for *user* configs (validate()); the
        // structure config here mimics the governor-applied path by
        // setting the fields directly
        let mut phase2 = cfg.clone();
        phase2.checkpoint_dir = Some(dir.clone());
        phase2.resume = true;
        let mut model = Grimp::new(phase2);
        let resumed = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert_eq!(report.resumed_from_epoch, Some(7));

        assert_tables_bit_identical(&reference, &resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn imputer_trait_names_variants() {
        assert_eq!(
            Grimp::new(tiny_config(TaskKind::Attention)).name(),
            "GRIMP-FT"
        );
        assert_eq!(
            Grimp::new(tiny_config(TaskKind::Attention).with_features(FeatureSource::Embdi)).name(),
            "GRIMP-E"
        );
        assert_eq!(
            Grimp::new(tiny_config(TaskKind::Linear)).name(),
            "GRIMP-linear"
        );
    }

    #[test]
    fn fitted_model_imputes_the_training_table_like_fit_impute() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(11));
        let cfg = tiny_config(TaskKind::Attention);
        let reference = Grimp::new(cfg.clone()).fit_impute(&dirty);
        let mut sink = NullSink;
        let mut fitted = fit_model(&cfg, &FdSet::empty(), &dirty, &mut sink).unwrap();
        let via_pipeline = fitted.impute(&dirty).unwrap();
        assert_tables_bit_identical(&reference, &via_pipeline);
        // a second impute of the same table is stable
        let again = fitted.impute(&dirty).unwrap();
        assert_tables_bit_identical(&reference, &again);
    }

    #[test]
    fn fitted_model_imputes_unseen_tables_inductively() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(12));
        let cfg = tiny_config(TaskKind::Attention);
        let mut sink = NullSink;
        let mut fitted = fit_model(&cfg, &FdSet::empty(), &dirty, &mut sink).unwrap();

        // an unseen table over the same schema and value domain
        let unseen_clean = functional_table(40);
        let mut unseen = unseen_clean.clone();
        let log = inject_mcar(&mut unseen, 0.15, &mut StdRng::seed_from_u64(13));
        let imputed = fitted.impute(&unseen).unwrap();
        check_imputation_contract(&unseen, &imputed).unwrap();
        let acc = cat_accuracy(&log, &imputed);
        assert!(acc > 0.5, "inductive accuracy too low: {acc}");

        // and the model can go back to its training table afterwards
        let back = fitted.impute(&dirty).unwrap();
        check_imputation_contract(&dirty, &back).unwrap();
    }
}

//! The GRIMP model: shared layer (HeteroGNN + merge) and multi-task heads,
//! trained end-to-end with the dual loss and early stopping (paper §3,
//! Algorithm 1).

use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use grimp_gnn::HeteroSage;
use grimp_graph::{build_features, TableGraph};
use grimp_table::{ColumnKind, Corpus, FdSet, Imputer, Normalizer, Table, Value};
use grimp_tensor::{Adam, Mlp, Tape, Tensor, Var};

use crate::config::{CategoricalLoss, GrimpConfig};
use crate::tasks::Task;
use crate::vectors::VectorBatch;

/// Outcome of one training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// Per-epoch summed training loss.
    pub train_losses: Vec<f32>,
    /// Per-epoch summed validation loss.
    pub val_losses: Vec<f32>,
    /// Whether early stopping fired before `max_epochs`.
    pub early_stopped: bool,
    /// Wall-clock seconds of the whole fit+impute.
    pub seconds: f64,
    /// Wall-clock seconds spent in forward passes (training epochs only).
    pub forward_s: f64,
    /// Wall-clock seconds spent in backward passes.
    pub backward_s: f64,
    /// Wall-clock seconds spent in the optimizer step plus tape reset.
    pub optim_s: f64,
    /// Per-epoch workspace allocation counts (tape buffer-pool misses that
    /// epoch). With the optimized hot path every entry after the first is 0.
    pub epoch_allocs: Vec<u64>,
    /// Scalar parameters actually allocated on the tape.
    pub n_weights: usize,
}

/// The GRIMP imputer (paper §3). Construct with a config, call
/// [`Grimp::fit_impute`] (or the [`Imputer`] trait) on a dirty table.
pub struct Grimp {
    config: GrimpConfig,
    fds: FdSet,
    last_report: Option<TrainReport>,
}

/// Per-task label storage.
enum Labels {
    Cat(Rc<Vec<u32>>),
    Num(Rc<Vec<f32>>),
}

struct TaskBatch {
    batch: VectorBatch,
    labels: Labels,
}

impl Grimp {
    /// A GRIMP model with no FDs.
    pub fn new(config: GrimpConfig) -> Self {
        Grimp {
            config,
            fds: FdSet::empty(),
            last_report: None,
        }
    }

    /// A GRIMP model that exploits the given FDs in its attention `K`
    /// matrices (GRIMP-A of §4.3; pair with
    /// [`crate::config::KStrategy::WeakDiagonalFd`]).
    pub fn with_fds(config: GrimpConfig, fds: FdSet) -> Self {
        Grimp {
            config,
            fds,
            last_report: None,
        }
    }

    /// The report of the most recent [`Grimp::fit_impute`] call.
    pub fn last_report(&self) -> Option<&TrainReport> {
        self.last_report.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &GrimpConfig {
        &self.config
    }

    /// Train on the dirty table (self-supervised — no clean data needed) and
    /// impute all its missing values.
    pub fn fit_impute(&mut self, dirty: &Table) -> Table {
        let start = Instant::now();
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Normalize numericals (paper §3.2); labels and the graph use the
        // normalized copy, outputs are de-normalized at the end.
        let normalizer = Normalizer::fit(dirty);
        let mut norm = dirty.clone();
        normalizer.apply(&mut norm);

        // Training corpus and validation holdout (§3.3, §3.6).
        let corpus = Corpus::build(&norm, cfg.validation_fraction, &mut rng);
        let excluded: Vec<(usize, usize)> = corpus
            .validation_flat()
            .map(|s| (s.row, s.target_col))
            .collect();

        // Graph without validation edges (§3.6) — test cells are already ∅.
        let graph = TableGraph::build(&norm, cfg.graph, &excluded);
        let features = build_features(
            &graph,
            &norm,
            cfg.features,
            cfg.feature_dim,
            &cfg.embdi,
            &mut rng,
        );
        let feature_tensor =
            Tensor::from_vec(graph.n_nodes(), cfg.feature_dim, features.node_matrix);

        // Shared layer: HeteroGNN + two-linear-layer merge (§3.5).
        let mut tape = Tape::new();
        tape.set_legacy_mode(cfg.legacy_hot_path);
        let gnn = HeteroSage::new(&mut tape, &graph, cfg.feature_dim, cfg.gnn, &mut rng);
        let merge = Mlp::new(
            &mut tape,
            &[cfg.gnn.hidden, cfg.merge_hidden, cfg.embed_dim],
            &mut rng,
        );

        // Task-specific layer: one head per attribute.
        let n_cols = norm.n_columns();
        let tasks: Vec<Task> = (0..n_cols)
            .map(|j| {
                let out_dim = match norm.schema().column(j).kind {
                    ColumnKind::Categorical => norm.dictionary(j).len().max(1),
                    ColumnKind::Numerical => 1,
                };
                let q_init = Some(attribute_q_init(
                    &features.attribute_matrix,
                    features.dim,
                    n_cols,
                    cfg.embed_dim,
                ));
                Task::new(
                    &mut tape,
                    cfg.task_kind,
                    n_cols,
                    cfg.embed_dim,
                    cfg.merge_hidden,
                    out_dim,
                    j,
                    cfg.k_strategy,
                    &self.fds,
                    q_init,
                    &mut rng,
                )
            })
            .collect();
        // Optimized hot path: register the node features once as a
        // persistent input that survives every reset. The legacy path keeps
        // the tensor around and re-clones it onto the tape each epoch.
        let mut feature_tensor = Some(feature_tensor);
        let persistent_x = (!cfg.legacy_hot_path)
            .then(|| tape.input(feature_tensor.take().expect("features not yet consumed")));
        tape.freeze();
        let n_weights = tape.total_param_elems();
        let mut adam = Adam::new(cfg.lr);

        // Pre-build the per-task batches (they are fixed across epochs).
        let train_batches = build_task_batches(
            &graph,
            &norm,
            &corpus.train,
            cfg.embed_dim,
            cfg.max_train_samples_per_task,
            &mut rng,
        );
        let val_batches = build_task_batches(
            &graph,
            &norm,
            &corpus.validation,
            cfg.embed_dim,
            None,
            &mut rng,
        );

        // Training loop with early stopping on validation loss.
        let mut report = TrainReport {
            n_weights,
            ..Default::default()
        };
        let mut best_val = f32::INFINITY;
        let mut since_best = 0usize;
        let mut train_losses: Vec<Var> = Vec::new();
        for _epoch in 0..cfg.max_epochs {
            let misses_before = tape.workspace_stats().misses;
            let forward_start = Instant::now();
            let x = match persistent_x {
                Some(x) => x,
                None => tape.input(
                    feature_tensor
                        .as_ref()
                        .expect("legacy path keeps features")
                        .clone(),
                ),
            };
            let h0 = gnn.forward(&mut tape, x);
            let h = merge.forward(&mut tape, h0);

            train_losses.clear();
            for (task, tb) in tasks.iter().zip(&train_batches) {
                if let Some(tb) = tb {
                    train_losses.push(task_loss(&mut tape, task, h, tb, cfg.categorical_loss));
                }
            }
            let mut val_total = 0.0f32;
            for (task, tb) in tasks.iter().zip(&val_batches) {
                if let Some(tb) = tb {
                    let l = task_loss(&mut tape, task, h, tb, cfg.categorical_loss);
                    val_total += tape.value(l).item();
                }
            }
            if train_losses.is_empty() {
                tape.reset();
                break;
            }
            let total = tape.add_n(&train_losses);
            let train_total = tape.value(total).item();
            report.forward_s += forward_start.elapsed().as_secs_f64();

            let backward_start = Instant::now();
            tape.backward(total);
            report.backward_s += backward_start.elapsed().as_secs_f64();

            let optim_start = Instant::now();
            adam.step(&mut tape);
            tape.reset();
            report.optim_s += optim_start.elapsed().as_secs_f64();
            report
                .epoch_allocs
                .push(tape.workspace_stats().misses - misses_before);

            report.epochs_run += 1;
            report.train_losses.push(train_total);
            report.val_losses.push(val_total);
            if val_total + 1e-5 < best_val {
                best_val = val_total;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    report.early_stopped = true;
                    break;
                }
            }
        }

        // Imputation (§3.7): one forward pass, per-column argmax /
        // de-normalized regression.
        let mut result = dirty.clone();
        let x = match persistent_x {
            Some(x) => x,
            None => tape.input(feature_tensor.take().expect("legacy path keeps features")),
        };
        let h0 = gnn.forward(&mut tape, x);
        let h = merge.forward(&mut tape, h0);
        for (j, task) in tasks.iter().enumerate() {
            let missing: Vec<(usize, usize)> = (0..norm.n_rows())
                .filter(|&i| norm.is_missing(i, j))
                .map(|i| (i, j))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let batch = VectorBatch::build(&graph, &norm, &missing, cfg.embed_dim);
            let out = task.forward(&mut tape, h, &batch);
            let out_t = tape.value(out).clone();
            match norm.schema().column(j).kind {
                ColumnKind::Categorical => {
                    if norm.dictionary(j).is_empty() {
                        continue; // nothing to impute with
                    }
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let row = out_t.row_slice(s);
                        let best = row
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(k, _)| k as u32)
                            .expect("non-empty logits row");
                        result.set(i, j, Value::Cat(best));
                    }
                }
                ColumnKind::Numerical => {
                    for (s, &(i, _)) in missing.iter().enumerate() {
                        let z = f64::from(out_t.get(s, 0));
                        result.set(i, j, Value::Num(normalizer.inverse(j, z)));
                    }
                }
            }
        }
        tape.reset();
        report.seconds = start.elapsed().as_secs_f64();
        self.last_report = Some(report);
        result
    }
}

impl Imputer for Grimp {
    fn name(&self) -> &str {
        match (self.config.task_kind, self.config.features) {
            (crate::config::TaskKind::Linear, _) => "GRIMP-linear",
            (_, grimp_graph::FeatureSource::Embdi) => "GRIMP-E",
            (_, grimp_graph::FeatureSource::FastText) => "GRIMP-FT",
            (_, grimp_graph::FeatureSource::Random) => "GRIMP-rand",
        }
    }

    fn impute(&mut self, dirty: &Table) -> Table {
        self.fit_impute(dirty)
    }
}

/// Tile/truncate pre-trained attribute vectors (`n_cols × feat_dim`) into a
/// `n_cols × embed_dim` initialization for the attention matrix `Q`.
fn attribute_q_init(
    attr_matrix: &[f32],
    feat_dim: usize,
    n_cols: usize,
    embed_dim: usize,
) -> Tensor {
    let mut q = Tensor::zeros(n_cols, embed_dim);
    for c in 0..n_cols {
        let src = &attr_matrix[c * feat_dim..(c + 1) * feat_dim];
        for d in 0..embed_dim {
            q.set(c, d, src[d % feat_dim]);
        }
    }
    q
}

fn build_task_batches(
    graph: &TableGraph,
    table: &Table,
    per_task: &[Vec<grimp_table::TrainingSample>],
    dim: usize,
    cap: Option<usize>,
    rng: &mut StdRng,
) -> Vec<Option<TaskBatch>> {
    per_task
        .iter()
        .enumerate()
        .map(|(j, samples)| {
            if samples.is_empty() {
                return None;
            }
            let mut samples: Vec<&grimp_table::TrainingSample> = samples.iter().collect();
            if let Some(cap) = cap {
                if samples.len() > cap {
                    samples.shuffle(rng);
                    samples.truncate(cap);
                }
            }
            let positions: Vec<(usize, usize)> =
                samples.iter().map(|s| (s.row, s.target_col)).collect();
            let batch = VectorBatch::build(graph, table, &positions, dim);
            let labels = match table.schema().column(j).kind {
                ColumnKind::Categorical => Labels::Cat(Rc::new(
                    samples
                        .iter()
                        .map(|s| s.label.as_cat().expect("categorical label"))
                        .collect(),
                )),
                ColumnKind::Numerical => Labels::Num(Rc::new(
                    samples
                        .iter()
                        .map(|s| s.label.as_num().expect("numerical label") as f32)
                        .collect(),
                )),
            };
            Some(TaskBatch { batch, labels })
        })
        .collect()
}

fn task_loss(
    tape: &mut Tape,
    task: &Task,
    h: Var,
    tb: &TaskBatch,
    cat_loss: CategoricalLoss,
) -> Var {
    let out = task.forward(tape, h, &tb.batch);
    match &tb.labels {
        Labels::Cat(targets) => match cat_loss {
            CategoricalLoss::CrossEntropy => tape.softmax_cross_entropy(out, Rc::clone(targets)),
            CategoricalLoss::Focal(gamma) => tape.focal_loss(out, Rc::clone(targets), gamma),
        },
        Labels::Num(targets) => tape.mse_loss(out, Rc::clone(targets)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskKind;
    use grimp_graph::FeatureSource;
    use grimp_table::{check_imputation_contract, inject_mcar, ColumnKind, Schema};

    /// A table where column `b` is a deterministic function of column `a` —
    /// any reasonable imputer should recover blanked `b` cells.
    fn functional_table(n: usize) -> Table {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for i in 0..n {
            let a = format!("a{}", i % 4);
            let b = format!("b{}", i % 4);
            let x = format!("{}", (i % 4) as f64 * 10.0);
            t.push_str_row(&[Some(&a), Some(&b), Some(&x)]);
        }
        t
    }

    fn tiny_config(kind: TaskKind) -> GrimpConfig {
        GrimpConfig {
            features: FeatureSource::FastText,
            feature_dim: 16,
            gnn: grimp_gnn::GnnConfig {
                layers: 2,
                hidden: 16,
                ..Default::default()
            },
            merge_hidden: 32,
            embed_dim: 16,
            task_kind: kind,
            max_epochs: 80,
            patience: 15,
            lr: 2e-2,
            seed: 7,
            ..GrimpConfig::paper()
        }
    }

    #[test]
    fn imputation_satisfies_the_contract() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(1));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
    }

    #[test]
    fn learns_functional_relationship_with_attention() {
        let clean = functional_table(80);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(2));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let imputed = model.fit_impute(&dirty);
        // accuracy on categorical cells must beat the 25 % random baseline
        let cat_cells: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat_cells
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        let acc = correct as f64 / cat_cells.len().max(1) as f64;
        assert!(acc > 0.5, "categorical accuracy too low: {acc}");
        let report = model.last_report().unwrap();
        assert!(report.epochs_run > 0);
        assert_eq!(report.train_losses.len(), report.epochs_run);
    }

    #[test]
    fn linear_tasks_also_work() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(3));
        let mut model = Grimp::new(tiny_config(TaskKind::Linear));
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat_cells: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat_cells
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        assert!(correct as f64 / cat_cells.len().max(1) as f64 > 0.5);
    }

    #[test]
    fn numerical_imputations_are_denormalized() {
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.15, &mut StdRng::seed_from_u64(4));
        let mut model = Grimp::new(tiny_config(TaskKind::Attention));
        let imputed = model.fit_impute(&dirty);
        // imputed numericals must be in the vicinity of the column's range
        for i in 0..imputed.n_rows() {
            if dirty.is_missing(i, 2) {
                let v = imputed.get(i, 2).as_num().unwrap();
                assert!(
                    (-30.0..60.0).contains(&v),
                    "imputed numeric {v} out of range"
                );
            }
        }
    }

    #[test]
    fn focal_loss_variant_trains_and_imputes() {
        // the paper's alternative categorical loss (§3.6): same pipeline,
        // focal loss with γ = 2
        let clean = functional_table(60);
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(8));
        let mut cfg = tiny_config(TaskKind::Attention);
        cfg.categorical_loss = crate::config::CategoricalLoss::Focal(2.0);
        let mut model = Grimp::new(cfg);
        let imputed = model.fit_impute(&dirty);
        check_imputation_contract(&dirty, &imputed).unwrap();
        let cat: Vec<_> = log.cells.iter().filter(|c| c.col < 2).collect();
        let correct = cat
            .iter()
            .filter(|c| imputed.get(c.row, c.col) == c.truth)
            .count();
        assert!(
            correct as f64 / cat.len().max(1) as f64 > 0.5,
            "focal-loss variant underperforms"
        );
    }

    #[test]
    fn early_stopping_fires_with_zero_patience_budget() {
        let clean = functional_table(40);
        let mut dirty = clean.clone();
        inject_mcar(&mut dirty, 0.1, &mut StdRng::seed_from_u64(5));
        let mut cfg = tiny_config(TaskKind::Linear);
        cfg.patience = 1;
        cfg.max_epochs = 50;
        let mut model = Grimp::new(cfg);
        let _ = model.fit_impute(&dirty);
        let report = model.last_report().unwrap();
        assert!(report.epochs_run <= 50);
    }

    #[test]
    fn imputer_trait_names_variants() {
        assert_eq!(
            Grimp::new(tiny_config(TaskKind::Attention)).name(),
            "GRIMP-FT"
        );
        assert_eq!(
            Grimp::new(tiny_config(TaskKind::Attention).with_features(FeatureSource::Embdi)).name(),
            "GRIMP-E"
        );
        assert_eq!(
            Grimp::new(tiny_config(TaskKind::Linear)).name(),
            "GRIMP-linear"
        );
    }
}

//! Deterministic per-case random source and run configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case's input is filtered out.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// The random source handed to strategies. Deterministic: seeded purely
/// from the test's module path, name, and case index.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Build from a case seed (see [`case_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is empty");
        let zone = u64::MAX - (u64::MAX - bound) % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// FNV-1a-style hash of the test identity and case index; the case seed.
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= u64::from(case);
    h.wrapping_mul(0x1000_0000_01b3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_stable_and_distinct() {
        assert_eq!(case_seed("a::b", 0), case_seed("a::b", 0));
        assert_ne!(case_seed("a::b", 0), case_seed("a::b", 1));
        assert_ne!(case_seed("a::b", 0), case_seed("a::c", 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}

//! Vendored, dependency-free stand-in for the subset of the `proptest` 1.x
//! API that the GRIMP workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency under the same crate name. It implements
//! random-input property testing with deterministic per-test seeds:
//!
//! - [`Strategy`] with `prop_map`, tuple composition, numeric ranges, and a
//!   tiny `[class]{m,n}`-style string pattern generator;
//! - [`collection::vec`], [`option::of`], [`strategy::Just`],
//!   `prop_oneof!` (weighted unions);
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics immediately with its case number and seed, which is enough to
//! reproduce it (seeds are a pure function of test name and case index).

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeBounds, Strategy, VecStrategy};

    /// A strategy for vectors whose length is drawn from `size` (an exact
    /// `usize` or a `Range<usize>`) and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        let bounds = size.into();
        VecStrategy { elem, bounds }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `Some` (three times in four) or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The glob import used by every property-test module.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{Just, Strategy};
pub use test_runner::ProptestConfig;

/// Declare property tests: each function runs its body for
/// `ProptestConfig::cases` deterministic pseudo-random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut executed = 0u32;
            let mut attempts = 0u32;
            while executed < config.cases && attempts < config.cases.saturating_mul(8).max(64) {
                let case_seed =
                    $crate::test_runner::case_seed(concat!(module_path!(), "::", stringify!($name)), attempts);
                attempts += 1;
                let mut rng = $crate::test_runner::TestRng::from_seed(case_seed);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => executed += 1,
                    Err($crate::test_runner::Rejected) => {} // prop_assume filtered the case
                }
            }
            assert!(
                executed >= config.cases.min(1),
                "prop_assume! rejected every generated input"
            );
        }
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its input does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// A weighted union of strategies producing the same value type:
/// `prop_oneof![3 => strat_a, 1 => strat_b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::rc_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

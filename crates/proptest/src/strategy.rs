//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn rc_strategy<S: Strategy + 'static>(s: S) -> Rc<dyn Strategy<Value = S::Value>> {
    Rc::new(s)
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

/// Length specification for [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeBounds {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeBounds {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeBounds {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeBounds {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeBounds {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// The result of [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) bounds: SizeBounds,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.bounds.max_exclusive - self.bounds.min) as u64;
        let len = self.bounds.min
            + if span <= 1 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// The result of [`crate::option::of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) < 3 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// A weighted union of same-valued strategies (see `prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<(u32, Rc<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Rc<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the sampled value")
    }
}

/// String pattern strategies: a small generator for the `[class]{m,n}`
/// regex subset (character classes with ranges, literals, `{m}` / `{m,n}`
/// repetition). `"[a-z0-9]{1,12}"` yields 1–12 chars drawn from the class.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = atom.min_reps
                + if atom.max_reps > atom.min_reps {
                    rng.below((atom.max_reps - atom.min_reps + 1) as u64) as usize
                } else {
                    0
                };
            for _ in 0..reps {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut set = Vec::new();
        if chars[i] == '[' {
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "invalid class range {lo}-{hi}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(
                i < chars.len(),
                "unterminated character class in {pattern:?}"
            );
            i += 1; // skip ']'
        } else {
            set.push(chars[i]);
            i += 1;
        }
        let (mut min_reps, mut max_reps) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = body.split_once(',') {
                min_reps = lo.trim().parse().expect("repetition lower bound");
                max_reps = hi.trim().parse().expect("repetition upper bound");
            } else {
                min_reps = body.trim().parse().expect("repetition count");
                max_reps = min_reps;
            }
            i = close + 1;
        }
        assert!(
            !set.is_empty() && min_reps <= max_reps,
            "bad pattern {pattern:?}"
        );
        atoms.push(PatternAtom {
            chars: set,
            min_reps,
            max_reps,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = crate::collection::vec(0u32..5, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn string_pattern_generates_class_chars() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let w = "[a-z0-9]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&w.len()), "{w:?}");
            assert!(
                w.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "{w:?}"
            );
        }
    }

    #[test]
    fn union_draws_every_arm_eventually() {
        let mut rng = TestRng::from_seed(4);
        let s = crate::prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_seed(5);
        let s = (0u32..4).prop_map(Some);
        assert!(s.generate(&mut rng).is_some());
        let t = (0u32..4, -1.0f64..1.0);
        let (a, b) = t.generate(&mut rng);
        assert!(a < 4 && (-1.0..1.0).contains(&b));
    }

    #[test]
    fn option_of_mixes_some_and_none() {
        let mut rng = TestRng::from_seed(6);
        let s = crate::option::of(0u32..4);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
    }
}

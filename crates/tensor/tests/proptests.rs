//! Property-based verification of the autodiff engine.
//!
//! Every backward rule must match the central finite difference of its
//! forward rule on random inputs, and core algebraic identities of the raw
//! tensor type must hold.

use grimp_tensor::{check_gradients, Adjacency, Tape, Tensor};
use proptest::prelude::*;
use std::rc::Rc;

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

fn small_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0f32..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_associative_with_identity(vals in small_vals(12)) {
        let a = Tensor::from_vec(3, 4, vals);
        let mut eye = Tensor::zeros(4, 4);
        for i in 0..4 { eye.set(i, i, 1.0); }
        let prod = a.matmul(&eye);
        prop_assert_eq!(prod, a);
    }

    #[test]
    fn transpose_is_involutive(vals in small_vals(15)) {
        let a = Tensor::from_vec(3, 5, vals);
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn gradcheck_dense_relu_chain(w in small_vals(12), x in small_vals(8)) {
        let params = vec![Tensor::from_vec(4, 3, w)];
        let xs = Tensor::from_vec(2, 4, x);
        let rep = check_gradients(&params, move |tape, vars| {
            let xv = tape.input(xs.clone());
            let h = tape.matmul(xv, vars[0]);
            let r = tape.relu(h);
            let sq = tape.mul_elem(r, r);
            tape.sum_all(sq)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_tanh_sigmoid_chain(w in small_vals(9)) {
        let params = vec![Tensor::from_vec(3, 3, w)];
        let rep = check_gradients(&params, |tape, vars| {
            let t = tape.tanh(vars[0]);
            let s = tape.sigmoid(t);
            tape.mean_all(s)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_softmax_ce(logits in small_vals(12), t0 in 0u32..4, t1 in 0u32..4, t2 in 0u32..4) {
        let params = vec![Tensor::from_vec(3, 4, logits)];
        let targets = Rc::new(vec![t0, t1, t2]);
        let rep = check_gradients(&params, move |tape, vars| {
            tape.softmax_cross_entropy(vars[0], targets.clone())
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_focal(logits in small_vals(8), t0 in 0u32..4, t1 in 0u32..4, gamma in 0.5f32..3.0) {
        let params = vec![Tensor::from_vec(2, 4, logits)];
        let targets = Rc::new(vec![t0, t1]);
        let rep = check_gradients(&params, move |tape, vars| {
            tape.focal_loss(vars[0], targets.clone(), gamma)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_scatter_mean(vals in small_vals(8)) {
        let params = vec![Tensor::from_vec(4, 2, vals)];
        let adj = Rc::new(Adjacency::from_lists(&[
            vec![1, 2, 3], vec![0], vec![], vec![0, 1],
        ]));
        let rep = check_gradients(&params, move |tape, vars| {
            let m = tape.scatter_mean(vars[0], adj.clone());
            let sq = tape.mul_elem(m, m);
            tape.sum_all(sq)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_scatter_weighted(vals in small_vals(8), w in proptest::collection::vec(0.05f32..2.0, 6)) {
        let params = vec![Tensor::from_vec(4, 2, vals)];
        let adj = Rc::new(Adjacency::from_lists(&[
            vec![1, 2, 3], vec![0], vec![], vec![0, 1],
        ]));
        let w = Rc::new(w);
        let rep = check_gradients(&params, move |tape, vars| {
            let m = tape.scatter_weighted(vars[0], adj.clone(), w.clone());
            let sq = tape.mul_elem(m, m);
            tape.sum_all(sq)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_concat_slice_roundtrip(a in small_vals(6), b in small_vals(9)) {
        let params = vec![Tensor::from_vec(3, 2, a), Tensor::from_vec(3, 3, b)];
        let rep = check_gradients(&params, |tape, vars| {
            let cat = tape.concat_cols(&[vars[0], vars[1]]);
            let left = tape.slice_cols(cat, 0, 2);
            let right = tape.slice_cols(cat, 2, 5);
            let l2 = tape.mul_elem(left, left);
            let r2 = tape.mul_elem(right, right);
            let ls = tape.sum_all(l2);
            let rs = tape.sum_all(r2);
            tape.add(ls, rs)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn gradcheck_mse(pred in small_vals(5), target in small_vals(5)) {
        let params = vec![Tensor::from_vec(5, 1, pred)];
        let t = Rc::new(target);
        let rep = check_gradients(&params, move |tape, vars| {
            tape.mse_loss(vars[0], t.clone())
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }

    #[test]
    fn softmax_output_is_a_distribution(vals in small_vals(12)) {
        let t = Tensor::from_vec(3, 4, vals);
        let s = grimp_tensor::softmax_rows(&t);
        for r in 0..3 {
            let row = s.row_slice(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn gradcheck_block_weighted_attention(v in small_vals(12), s in small_vals(3)) {
        let params = vec![Tensor::from_vec(4, 3, v), Tensor::from_vec(1, 3, s)];
        let rep = check_gradients(&params, |tape, vars| {
            let st = tape.reshape(vars[1], 3, 1);
            let scores = tape.matmul(vars[0], st);
            let scores = tape.reshape(scores, 2, 2);
            let alpha = tape.row_softmax(scores);
            let ctx = tape.block_weighted_sum(vars[0], alpha);
            let sq = tape.mul_elem(ctx, ctx);
            tape.sum_all(sq)
        }, EPS);
        prop_assert!(rep.passes(TOL), "{:?}", rep);
    }
}

#[test]
fn adam_and_sgd_agree_on_convergence_target() {
    use grimp_tensor::{Adam, Sgd};
    // Fit y = 2x + 1 with both optimizers; both must reach the same optimum.
    let fit = |use_adam: bool| -> (f32, f32) {
        let mut tape = Tape::new();
        let w = tape.param(Tensor::scalar(0.0));
        let b = tape.param(Tensor::scalar(0.0));
        tape.freeze();
        let mut adam = Adam::new(0.05);
        let sgd = Sgd::new(0.05);
        let xs = Tensor::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let ys = Rc::new(vec![1.0f32, 3.0, 5.0, 7.0]);
        for _ in 0..2000 {
            let x = tape.input(xs.clone());
            let wx = tape.matmul(x, w);
            let ones = tape.input(Tensor::from_vec(4, 1, vec![1.0; 4]));
            let bcol = tape.matmul(ones, b);
            let pred = tape.add(wx, bcol);
            let loss = tape.mse_loss(pred, ys.clone());
            tape.backward(loss);
            if use_adam {
                adam.step(&mut tape);
            } else {
                sgd.step(&mut tape);
            }
            tape.reset();
        }
        (tape.value(w).item(), tape.value(b).item())
    };
    for (w, b) in [fit(true), fit(false)] {
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
        assert!((b - 1.0).abs() < 0.05, "b = {b}");
    }
}

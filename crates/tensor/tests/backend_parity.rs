//! Property-based backend parity: `SerialBackend` and `ParallelBackend`
//! (1, 2 and 8 threads) must produce **bit-identical** outputs for every
//! hot-path kernel, on random shapes and data — including the degenerate
//! shapes a partitioner gets wrong first (single row, fewer rows than
//! threads, degree-0 adjacency rows).

use grimp_tensor::{
    make_backend, Adjacency, BackendKind, ParallelBackend, SerialBackend, Tape, Tensor,
    TensorBackend,
};
use proptest::prelude::*;
use std::rc::Rc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what} shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} elem {i}: {x} vs {y}");
    }
}

/// Random matrix dimensions that straddle the partition and block
/// boundaries: 1 row (fewer rows than any pool), primes, and sizes past one
/// 4-wide block.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..20, 1usize..14, 1usize..14)
}

fn tensor_for(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
    let data = (0..rows * cols).map(|i| vals[i % vals.len()]).collect();
    Tensor::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_parity(mkn in dims(), vals in proptest::collection::vec(-2.0f32..2.0, 16)) {
        let (m, k, n) = mkn;
        let serial = SerialBackend;
        let a = tensor_for(m, k, &vals);
        let b = tensor_for(k, n, &vals[1..]);
        let at = tensor_for(k, m, &vals[2..]);
        let bt = tensor_for(n, k, &vals[3..]);
        for threads in THREAD_COUNTS {
            let par = ParallelBackend::new(threads);
            assert_bits_eq(&par.matmul(&a, &b), &serial.matmul(&a, &b), "matmul");
            assert_bits_eq(&par.matmul_tn(&at, &b), &serial.matmul_tn(&at, &b), "matmul_tn");
            assert_bits_eq(&par.matmul_nt(&a, &bt), &serial.matmul_nt(&a, &bt), "matmul_nt");
        }
    }

    #[test]
    fn scatter_mean_parity_with_degree_0_rows(
        cols in 1usize..8,
        lists in proptest::collection::vec(proptest::collection::vec(0u32..6, 0..4), 1..10),
        vals in proptest::collection::vec(-2.0f32..2.0, 8),
    ) {
        let serial = SerialBackend;
        let a = tensor_for(6, cols, &vals);
        let adj = Adjacency::from_lists(&lists);
        for threads in THREAD_COUNTS {
            let par = ParallelBackend::new(threads);
            let got = par.scatter_mean(&a, &adj);
            assert_bits_eq(&got, &serial.scatter_mean(&a, &adj), "scatter_mean");
            prop_assert!(got.all_finite(), "degree-0 rows must stay finite");
            for (i, list) in lists.iter().enumerate() {
                if list.is_empty() {
                    prop_assert!(
                        got.row_slice(i).iter().all(|&v| v == 0.0),
                        "degree-0 row {} must be zero",
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn softmax_ce_parity(
        rows in 1usize..200, // crosses several 64-row CE reduction chunks
        classes in 2usize..6,
        vals in proptest::collection::vec(-30.0f32..30.0, 16),
    ) {
        let serial = SerialBackend;
        let logits = tensor_for(rows, classes, &vals);
        let targets: Vec<u32> = (0..rows as u32).map(|i| i % classes as u32).collect();
        let want = serial.softmax_ce_loss(&logits, &targets);
        let mut want_grad = logits.clone();
        serial.softmax_ce_backward(&mut want_grad, &targets, 0.125);
        for threads in THREAD_COUNTS {
            let par = ParallelBackend::new(threads);
            prop_assert_eq!(par.softmax_ce_loss(&logits, &targets).to_bits(), want.to_bits());
            let mut grad = logits.clone();
            par.softmax_ce_backward(&mut grad, &targets, 0.125);
            assert_bits_eq(&grad, &want_grad, "ce_backward");
        }
    }

    #[test]
    fn full_tape_step_parity(
        w in proptest::collection::vec(-1.0f32..1.0, 6),
        x in proptest::collection::vec(-1.0f32..1.0, 8),
    ) {
        // A miniature training step over every dispatched kernel: losses and
        // parameter gradients must agree bit-for-bit across backends.
        let run = |kind: BackendKind| {
            let mut tape = Tape::new();
            tape.set_backend(kind);
            let wv = tape.param(Tensor::from_vec(2, 3, w.clone()));
            let xv = tape.input(Tensor::from_vec(4, 2, x.clone()));
            tape.freeze();
            let h = tape.matmul(xv, wv);
            let adj = Rc::new(Adjacency::from_lists(&[vec![0, 3], vec![], vec![2]]));
            let m = tape.scatter_mean(h, adj);
            let loss = tape.softmax_cross_entropy(m, Rc::new(vec![0u32, 1, 2]));
            tape.backward(loss);
            (tape.value(loss).item(), tape.grad(wv).unwrap().clone())
        };
        let (serial_loss, serial_grad) = run(BackendKind::Serial);
        for threads in THREAD_COUNTS {
            let (loss, grad) = run(BackendKind::Parallel { threads });
            prop_assert_eq!(loss.to_bits(), serial_loss.to_bits(), "{} threads", threads);
            assert_bits_eq(&grad, &serial_grad, "weight gradient");
        }
    }
}

#[test]
fn make_backend_reports_its_kind() {
    for kind in [
        BackendKind::Serial,
        BackendKind::Parallel { threads: 1 },
        BackendKind::Parallel { threads: 3 },
    ] {
        let b = make_backend(kind);
        assert_eq!(b.kind(), kind);
        assert_eq!(b.threads(), kind.threads());
        assert_eq!(b.label(), kind.label());
    }
}

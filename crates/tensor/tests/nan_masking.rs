//! The aggregation kernels must not branch on zero weights: a zero weight
//! multiplies (`0 · NaN = NaN`) rather than skips, so a NaN payload sitting
//! in a zero-masked position surfaces instead of being silently hidden.
//! The legacy `*_ref` GEMM kernels keep the old skip-on-zero behavior, which
//! is exactly why they are quarantined to the benchmarking baseline.

use grimp_tensor::{block_weighted_sum_into, scatter_weighted_into, Adjacency, Tensor};

#[test]
fn scatter_weighted_surfaces_nan_under_zero_weight() {
    // Row 1 is referenced only through a zero weight and holds a NaN.
    let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, f32::NAN, 4.0]);
    let adj = Adjacency::from_lists(&[vec![0, 1]]);
    let weights = [1.0, 0.0];
    let mut out = Tensor::zeros(1, 2);
    scatter_weighted_into(&a, &adj, &weights, &mut out);
    assert!(
        out.get(0, 0).is_nan(),
        "NaN under a zero weight must propagate, got {}",
        out.get(0, 0)
    );
    // The non-NaN lane still sums normally: 1·2 + 0·4 = 2.
    assert_eq!(out.get(0, 1), 2.0);
}

#[test]
fn scatter_weighted_matches_hand_sum_on_finite_input() {
    let a = Tensor::from_vec(3, 1, vec![2.0, 4.0, 8.0]);
    let adj = Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]);
    let weights = [0.5, 0.25, 2.0];
    // Stale contents: the kernel must fully overwrite, including the
    // empty-neighborhood row.
    let mut out = Tensor::full(3, 1, f32::NAN);
    scatter_weighted_into(&a, &adj, &weights, &mut out);
    assert_eq!(out.as_slice(), &[4.0, 0.0, 4.0]);
}

#[test]
fn block_weighted_sum_surfaces_nan_under_zero_alpha() {
    // Block (0, 1) carries NaN but has zero attention weight.
    let v = Tensor::from_vec(2, 2, vec![1.0, 2.0, f32::NAN, 3.0]);
    let alpha = Tensor::from_vec(1, 2, vec![1.0, 0.0]);
    let mut out = Tensor::zeros(1, 2);
    block_weighted_sum_into(&v, &alpha, &mut out);
    assert!(
        out.get(0, 0).is_nan(),
        "NaN under zero attention must propagate, got {}",
        out.get(0, 0)
    );
    // The other lane pairs NaN-free values: 1·2 + 0·3 = 2.
    assert_eq!(out.get(0, 1), 2.0);
}

#[test]
fn block_weighted_sum_overwrites_stale_output() {
    let v = Tensor::from_vec(4, 2, vec![1., 0., 0., 1., 2., 2., 3., 3.]);
    let alpha = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.5, 0.5]);
    let mut out = Tensor::full(2, 2, f32::NAN);
    block_weighted_sum_into(&v, &alpha, &mut out);
    assert_eq!(out.as_slice(), &[1.0, 0.0, 2.5, 2.5]);
}

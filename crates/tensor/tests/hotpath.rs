//! Regression tests for the allocation-free training hot path.
//!
//! Two properties, both load-bearing for the workspace recycling in `Tape`:
//!
//! 1. After the first epoch of a shape-stable training loop, later epochs
//!    perform **zero** heap allocations (verified with a counting global
//!    allocator, not just the tape's own free-list statistics).
//! 2. An epoch running on recycled (stale-content) buffers produces values
//!    and gradients **bit-for-bit identical** to the same epoch on a fresh
//!    tape — i.e. every workspace buffer really is fully overwritten.

use std::alloc::{GlobalAlloc, Layout, System};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use grimp_tensor::{Adam, Adjacency, Tape, Tensor, Var};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the two tests so the parity test's allocations never pollute
/// the counting test's measurement window.
static SERIAL: Mutex<()> = Mutex::new(());

struct Fixture {
    idx8: Rc<Vec<u32>>,
    idx4: Rc<Vec<u32>>,
    adj: Rc<Adjacency>,
    weights: Rc<Vec<f32>>,
    targets: Rc<Vec<u32>>,
    num_targets: Rc<Vec<f32>>,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            idx8: Rc::new(vec![0, 2, 4, 6, 8, 1, 3, 5]),
            idx4: Rc::new(vec![7, 0, 3, 5]),
            adj: Rc::new(Adjacency::from_lists(&[
                vec![1, 2],
                vec![0, 3, 5],
                vec![],
                vec![4],
                vec![0, 1, 2, 3],
                vec![5],
            ])),
            weights: Rc::new(vec![
                0.5, -0.25, 1.0, 0.0, 2.0, -1.0, 0.75, 0.1, 0.2, 0.3, 1.5,
            ]),
            targets: Rc::new(vec![2, 0, 3, 1]),
            num_targets: Rc::new(vec![0.5, -0.5, 1.0, 0.0]),
        }
    }
}

fn params(tape: &mut Tape) -> (Var, Var) {
    let w1 = tape.param(Tensor::from_vec(
        4,
        6,
        (0..24)
            .map(|i| ((i * 7 + 3) % 11) as f32 / 11.0 - 0.5)
            .collect(),
    ));
    let bias = tape.param(Tensor::from_vec(
        1,
        6,
        (0..6).map(|i| i as f32 / 10.0 - 0.25).collect(),
    ));
    (w1, bias)
}

fn input(tape: &mut Tape) -> Var {
    tape.input(Tensor::from_vec(
        6,
        4,
        (0..24)
            .map(|i| ((i * 5 + 1) % 13) as f32 / 13.0 - 0.4)
            .collect(),
    ))
}

/// One forward + backward pass touching every tape op, returning the loss.
fn epoch(tape: &mut Tape, x: Var, w1: Var, bias: Var, fx: &Fixture) -> f32 {
    let h = tape.matmul(x, w1);
    let hb = tape.add_row_broadcast(h, bias);
    let r = tape.relu(hb);
    let t = tape.tanh(hb);
    let s = tape.sigmoid(hb);
    let m = tape.mul_elem(r, t);
    let d = tape.sub(m, s);
    let sc = tape.scale(d, 0.5);
    let an = tape.add_n(&[sc, m, d]);
    let sm = tape.scatter_mean(an, Rc::clone(&fx.adj));
    let sw = tape.scatter_weighted(an, Rc::clone(&fx.adj), Rc::clone(&fx.weights));
    let cat = tape.concat_cols(&[sm, sw]);
    let sl = tape.slice_cols(cat, 3, 9);
    let resh = tape.reshape(sl, 9, 4);
    let v = tape.gather_rows(resh, Rc::clone(&fx.idx8));
    let alpha_src = tape.gather_rows(resh, Rc::clone(&fx.idx4));
    let alpha_sl = tape.slice_cols(alpha_src, 1, 3);
    let alpha = tape.row_softmax(alpha_sl);
    let bws = tape.block_weighted_sum(v, alpha);
    let ce = tape.softmax_cross_entropy(bws, Rc::clone(&fx.targets));
    let fl = tape.focal_loss(bws, Rc::clone(&fx.targets), 1.5);
    let num = tape.slice_cols(bws, 0, 1);
    let mse = tape.mse_loss(num, Rc::clone(&fx.num_targets));
    let sa = tape.sum_all(m);
    let sa_small = tape.scale(sa, 0.01);
    let ma = tape.mean_all(m);
    let loss = tape.add_n(&[ce, fl, mse, sa_small, ma]);
    let value = tape.value(loss).item();
    tape.backward(loss);
    value
}

#[test]
fn second_epoch_performs_zero_heap_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let fx = Fixture::new();
    let mut tape = Tape::new();
    let (w1, bias) = params(&mut tape);
    let x = input(&mut tape);
    tape.freeze();
    let mut adam = Adam::new(1e-2);

    // Epoch 1 populates the free lists and the Adam moments.
    epoch(&mut tape, x, w1, bias, &fx);
    adam.step(&mut tape);
    tape.reset();
    let stats_after_first = tape.workspace_stats();
    assert!(
        stats_after_first.misses > 0,
        "first epoch must allocate buffers"
    );

    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..4 {
        epoch(&mut tape, x, w1, bias, &fx);
        adam.step(&mut tape);
        tape.reset();
    }
    let alloc_delta = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let miss_delta = tape.workspace_stats().misses - stats_after_first.misses;
    assert_eq!(miss_delta, 0, "later epochs must never miss the free lists");
    assert_eq!(alloc_delta, 0, "later epochs must not touch the heap");
}

#[test]
fn recycled_epoch_is_bit_identical_to_a_fresh_tape() {
    let _guard = SERIAL.lock().unwrap();
    let fx = Fixture::new();

    // Long-lived tape: epoch 1 dirties the workspace, epoch 2 runs entirely
    // on recycled, stale-content buffers. No optimizer step in between, so
    // both epochs (and the fresh tape below) compute the same function.
    let mut recycled = Tape::new();
    let (w1_a, bias_a) = params(&mut recycled);
    let x_a = input(&mut recycled);
    recycled.freeze();
    epoch(&mut recycled, x_a, w1_a, bias_a, &fx);
    recycled.reset();
    let loss_recycled = epoch(&mut recycled, x_a, w1_a, bias_a, &fx);

    let mut fresh = Tape::new();
    let (w1_b, bias_b) = params(&mut fresh);
    let x_b = input(&mut fresh);
    fresh.freeze();
    let loss_fresh = epoch(&mut fresh, x_b, w1_b, bias_b, &fx);

    assert_eq!(
        loss_recycled.to_bits(),
        loss_fresh.to_bits(),
        "loss differs: recycled {loss_recycled} vs fresh {loss_fresh}"
    );
    for (a, b) in [(w1_a, w1_b), (bias_a, bias_b)] {
        let ga = recycled.grad(a).expect("recycled grad");
        let gb = fresh.grad(b).expect("fresh grad");
        assert_eq!(ga.shape(), gb.shape());
        for (x, y) in ga.as_slice().iter().zip(gb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "gradient bits differ: {x} vs {y}");
        }
    }
}

//! Dense, row-major, two-dimensional `f32` tensors.
//!
//! Everything in GRIMP's learning stack is expressed over matrices; batched
//! three-dimensional quantities (such as the `N × C × D` training-vector
//! collections of the attention tasks) are stored as `(N·C) × D` matrices and
//! re-interpreted by the block-aware ops in [`crate::tape`].

use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// Invariant: `data.len() == rows * cols`. Constructors enforce this and the
/// mutating helpers preserve it.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// A tensor wrapping an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// A `1 × 1` tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(1, 1, vec![value])
    }

    /// A row vector (`1 × n`).
    pub fn row(values: &[f32]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A read-only view of row `r`.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 × 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Reinterpret the buffer with a new shape of identical element count.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(rows * cols, self.len(), "reshape must preserve element count");
        Tensor { rows, cols, data: self.data.clone() }
    }

    /// Fill every element with zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses an ikj loop order so the inner loop walks both operands
    /// sequentially; at GRIMP's scales (≤ a few thousand rows, ≤ 256 columns)
    /// this is within a small factor of a tuned BLAS and keeps the crate
    /// dependency-free.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        for k in 0..self.rows {
            let a_row = self.row_slice(k);
            let b_row = rhs.row_slice(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row_slice(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                out.data[i * rhs.rows + j] = dot;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise (AXPY).
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let fast = a.matmul_tn(&b);
        let slow = a.transposed().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, vec![1.0; 12]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transposed());
        assert_eq!(fast, slow);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshaped(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn row_slices_index_correct_rows() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.row_slice(0), &[1.0, 2.0]);
        assert_eq!(t.row_slice(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn scalar_item_roundtrip() {
        assert_eq!(Tensor::scalar(3.25).item(), 3.25);
    }
}

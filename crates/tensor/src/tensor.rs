//! Dense, row-major, two-dimensional `f32` tensors.
//!
//! Everything in GRIMP's learning stack is expressed over matrices; batched
//! three-dimensional quantities (such as the `N × C × D` training-vector
//! collections of the attention tasks) are stored as `(N·C) × D` matrices and
//! re-interpreted by the block-aware ops in [`crate::tape`].

use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// Invariant: `data.len() == rows * cols`. Constructors enforce this and the
/// mutating helpers preserve it.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A tensor wrapping an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// A `1 × 1` tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(1, 1, vec![value])
    }

    /// A row vector (`1 × n`).
    pub fn row(values: &[f32]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A read-only view of row `r`.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 × 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Reinterpret the buffer with a new shape of identical element count.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Tensor {
        self.clone().into_reshaped(rows, cols)
    }

    /// Reinterpret this tensor's own buffer with a new shape — zero-copy.
    pub fn into_reshaped(self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            rows * cols,
            self.len(),
            "reshape must preserve element count"
        );
        Tensor {
            rows,
            cols,
            data: self.data,
        }
    }

    /// Consume the tensor, yielding its row-major buffer (used by the tape
    /// workspace to recycle allocations across epochs).
    pub fn into_raw(self) -> Vec<f32> {
        self.data
    }

    /// Fill every element with zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix product `self · rhs`.
    ///
    /// The kernel is an ikj loop with the k dimension blocked four wide, so
    /// the inner loop streams both operands sequentially with four
    /// independent multiply-adds per output element and no data-dependent
    /// branches. At GRIMP's scales (≤ a few thousand rows, ≤ 256 columns)
    /// this is within a small factor of a tuned BLAS and keeps the crate
    /// dependency-free.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self · rhs` written into `out`, overwriting its contents. Allocation
    /// free: the training hot path pairs this with a recycled output buffer.
    ///
    /// # Panics
    /// Panics on operand or output shape mismatch.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul output shape mismatch"
        );
        gemm_blocked(
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
            &mut out.data,
        );
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// `selfᵀ · rhs` written into `out`, overwriting its contents.
    ///
    /// # Panics
    /// Panics on operand or output shape mismatch.
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "matmul_tn output shape mismatch"
        );
        gemm_tn_blocked(
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
            &mut out.data,
        );
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// `self · rhsᵀ` written into `out`, overwriting its contents.
    ///
    /// # Panics
    /// Panics on operand or output shape mismatch.
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_nt output shape mismatch"
        );
        gemm_nt_blocked(
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.rows,
            &mut out.data,
        );
    }

    /// The pre-optimization `matmul` kernel (ikj order with a per-element
    /// zero skip). Retained for the legacy benchmarking mode and for
    /// differential tests against the blocked kernel; note the zero skip
    /// suppresses NaN propagation from zero-masked positions, which the
    /// blocked kernel deliberately does not.
    pub fn matmul_ref(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// The pre-optimization `matmul_tn` kernel (see [`Tensor::matmul_ref`]).
    pub fn matmul_tn_ref(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        for k in 0..self.rows {
            let a_row = self.row_slice(k);
            let b_row = rhs.row_slice(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// The pre-optimization `matmul_nt` kernel (see [`Tensor::matmul_ref`]).
    pub fn matmul_nt_ref(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row_slice(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row_slice(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                out.data[i * rhs.rows + j] = dot;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` elementwise (AXPY).
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// `out = a · b` with `a` being `m × k`, `b` being `k × n`. The k dimension
/// is blocked four wide: each pass over an output row folds four rank-1
/// updates into one sweep, giving four independent multiply-adds per element
/// and no data-dependent branches (a zero in `a` contributes `0 · x`, so NaN
/// and infinity propagate as IEEE arithmetic dictates).
fn gemm_blocked(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    gemm_rows(a, b, k, n, 0, m, out);
}

/// Output rows `r0..r1` of `a · b`, written to `out` (which holds exactly
/// those rows). Each output row depends only on the matching row of `a`, so
/// disjoint row ranges compose to the full product bit-for-bit regardless of
/// how the range is partitioned — the parallel backend relies on this.
pub(crate) fn gemm_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), (r1 - r0) * n);
    out.fill(0.0);
    for i in r0..r1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[(i - r0) * n..(i - r0 + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let a0 = a_row[kk];
            let a1 = a_row[kk + 1];
            let a2 = a_row[kk + 2];
            let a3 = a_row[kk + 3];
            let (b0, rest) = b[kk * n..].split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, rest) = rest.split_at(n);
            let b3 = &rest[..n];
            for ((((o, &x0), &x1), &x2), &x3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                *o += a0 * x0 + a1 * x1 + a2 * x2 + a3 * x3;
            }
            kk += 4;
        }
        for kr in kk..k {
            let av = a_row[kr];
            let b_row = &b[kr * n..(kr + 1) * n];
            for (o, &x) in out_row.iter_mut().zip(b_row) {
                *o += av * x;
            }
        }
    }
}

/// `out = aᵀ · b` with `a` being `r × c` (so `out` is `c × n`). Mirrors
/// [`gemm_blocked`]'s four-wide k blocking over the shared row dimension; the
/// accumulation order per output element is identical to running
/// `gemm_blocked` on an explicitly transposed `a`, so the two agree
/// bit-for-bit.
fn gemm_tn_blocked(a: &[f32], b: &[f32], r: usize, c: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), r * c);
    debug_assert_eq!(b.len(), r * n);
    debug_assert_eq!(out.len(), c * n);
    gemm_tn_strip(a, b, r, c, n, 0, c, out);
}

/// Output rows `i0..i1` of `aᵀ · b`, written to `out` (which holds exactly
/// those rows). The outer loop over the shared row dimension `r` is kept
/// intact — only the inner sweep over output rows is restricted — so every
/// output element sees the exact k-ascending accumulation order of the full
/// kernel and disjoint strips compose to the full product bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tn_strip(
    a: &[f32],
    b: &[f32],
    r: usize,
    c: usize,
    n: usize,
    i0: usize,
    i1: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), (i1 - i0) * n);
    out.fill(0.0);
    let mut kk = 0;
    while kk + 4 <= r {
        let (a0, rest) = a[kk * c..].split_at(c);
        let (a1, rest) = rest.split_at(c);
        let (a2, rest) = rest.split_at(c);
        let a3 = &rest[..c];
        let (b0, rest) = b[kk * n..].split_at(n);
        let (b1, rest) = rest.split_at(n);
        let (b2, rest) = rest.split_at(n);
        let b3 = &rest[..n];
        for i in i0..i1 {
            let x0 = a0[i];
            let x1 = a1[i];
            let x2 = a2[i];
            let x3 = a3[i];
            let out_row = &mut out[(i - i0) * n..(i - i0 + 1) * n];
            for ((((o, &y0), &y1), &y2), &y3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                *o += x0 * y0 + x1 * y1 + x2 * y2 + x3 * y3;
            }
        }
        kk += 4;
    }
    for kr in kk..r {
        let a_row = &a[kr * c..(kr + 1) * c];
        let b_row = &b[kr * n..(kr + 1) * n];
        for i in i0..i1 {
            let av = a_row[i];
            let out_row = &mut out[(i - i0) * n..(i - i0 + 1) * n];
            for (o, &y) in out_row.iter_mut().zip(b_row) {
                *o += av * y;
            }
        }
    }
}

/// `out = a · bᵀ` with `a` being `m × c`, `b` being `p × c` (so `out` is
/// `m × p`): row-by-row dot products, each unrolled into four independent
/// accumulators over the shared column dimension.
fn gemm_nt_blocked(a: &[f32], b: &[f32], m: usize, c: usize, p: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * c);
    debug_assert_eq!(b.len(), p * c);
    debug_assert_eq!(out.len(), m * p);
    gemm_nt_rows(a, b, c, p, 0, m, out);
}

/// Output rows `r0..r1` of `a · bᵀ`, written to `out` (which holds exactly
/// those rows). Row-disjoint like [`gemm_rows`]; the stack-scratch transpose
/// of `b` is rebuilt per call, so concurrent callers over disjoint ranges
/// never share mutable state and each range reproduces the full kernel's
/// per-element arithmetic exactly.
pub(crate) fn gemm_nt_rows(
    a: &[f32],
    b: &[f32],
    c: usize,
    p: usize,
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), (r1 - r0) * p);
    // The training hot path calls this almost exclusively with a small
    // right-hand side (a layer's weight matrix, ≤ 64×64): transposing it
    // into a stack scratch once turns every inner loop into the same
    // contiguous multiply-add sweep as [`gemm_blocked`], which the compiler
    // vectorizes far better than strided dot products.
    const SCRATCH: usize = 4096;
    if c * p <= SCRATCH {
        let mut bt = [0.0f32; SCRATCH];
        let bt = &mut bt[..c * p];
        for (j, b_row) in b.chunks_exact(c).enumerate() {
            for (l, &v) in b_row.iter().enumerate() {
                bt[l * p + j] = v;
            }
        }
        gemm_rows(a, bt, c, p, r0, r1, out);
        return;
    }
    for i in r0..r1 {
        let a_row = &a[i * c..(i + 1) * c];
        let out_row = &mut out[(i - r0) * p..(i - r0 + 1) * p];
        // Four output columns per pass: each load of an `a` chunk feeds four
        // dot products, so the kernel is bound by multiply-adds rather than
        // reloads of `a_row`. Every dot keeps the same four-accumulator
        // shape as the scalar tail below, so the result is identical to
        // computing each element on its own.
        let mut j = 0;
        while j + 4 <= p {
            let b0 = &b[j * c..(j + 1) * c];
            let b1 = &b[(j + 1) * c..(j + 2) * c];
            let b2 = &b[(j + 2) * c..(j + 3) * c];
            let b3 = &b[(j + 3) * c..(j + 4) * c];
            let mut acc0 = [0.0f32; 4];
            let mut acc1 = [0.0f32; 4];
            let mut acc2 = [0.0f32; 4];
            let mut acc3 = [0.0f32; 4];
            let ca = a_row.chunks_exact(4);
            let ra = ca.remainder();
            for ((((xa, xb0), xb1), xb2), xb3) in ca
                .zip(b0.chunks_exact(4))
                .zip(b1.chunks_exact(4))
                .zip(b2.chunks_exact(4))
                .zip(b3.chunks_exact(4))
            {
                for l in 0..4 {
                    acc0[l] += xa[l] * xb0[l];
                    acc1[l] += xa[l] * xb1[l];
                    acc2[l] += xa[l] * xb2[l];
                    acc3[l] += xa[l] * xb3[l];
                }
            }
            let base = a_row.len() - ra.len();
            let mut d0 = (acc0[0] + acc0[1]) + (acc0[2] + acc0[3]);
            let mut d1 = (acc1[0] + acc1[1]) + (acc1[2] + acc1[3]);
            let mut d2 = (acc2[0] + acc2[1]) + (acc2[2] + acc2[3]);
            let mut d3 = (acc3[0] + acc3[1]) + (acc3[2] + acc3[3]);
            for (l, &xa) in ra.iter().enumerate() {
                d0 += xa * b0[base + l];
                d1 += xa * b1[base + l];
                d2 += xa * b2[base + l];
                d3 += xa * b3[base + l];
            }
            out_row[j] = d0;
            out_row[j + 1] = d1;
            out_row[j + 2] = d2;
            out_row[j + 3] = d3;
            j += 4;
        }
        for (j, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = &b[j * c..(j + 1) * c];
            let mut acc = [0.0f32; 4];
            let ca = a_row.chunks_exact(4);
            let cb = b_row.chunks_exact(4);
            let (ra, rb) = (ca.remainder(), cb.remainder());
            for (xa, xb) in ca.zip(cb) {
                acc[0] += xa[0] * xb[0];
                acc[1] += xa[1] * xb[1];
                acc[2] += xa[2] * xb[2];
                acc[3] += xa[3] * xb[3];
            }
            let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            for (&xa, &xb) in ra.iter().zip(rb) {
                dot += xa * xb;
            }
            *o = dot;
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        let fast = a.matmul_tn(&b);
        let slow = a.transposed().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, vec![1.0; 12]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transposed());
        assert_eq!(fast, slow);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshaped(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn row_slices_index_correct_rows() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.row_slice(0), &[1.0, 2.0]);
        assert_eq!(t.row_slice(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn scalar_item_roundtrip() {
        assert_eq!(Tensor::scalar(3.25).item(), 3.25);
    }

    #[test]
    fn into_reshaped_moves_without_copy() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let ptr = t.as_slice().as_ptr();
        let r = t.into_reshaped(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.as_slice().as_ptr(), ptr, "reshape must reuse the buffer");
    }

    /// Pseudo-random but deterministic fill with zeros sprinkled in, so the
    /// differential tests cover the positions where the reference kernel's
    /// zero skip used to fire.
    fn varied(rows: usize, cols: usize, seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(5) {
                    0.0
                } else {
                    ((state >> 8) % 2000) as f32 / 1000.0 - 1.0
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_kernels_match_reference_over_odd_shapes() {
        // dims straddle the 4-wide block boundary on purpose
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 9, 2), (8, 8, 8), (5, 13, 6)] {
            let a = varied(m, k, (m * 100 + k) as u32);
            let b = varied(k, n, (k * 100 + n) as u32);
            assert_close(&a.matmul(&b), &a.matmul_ref(&b));
            let at = varied(k, m, (m + n) as u32);
            assert_close(&at.matmul_tn(&b), &at.matmul_tn_ref(&b));
            let bt = varied(n, k, (n * 7 + k) as u32);
            assert_close(&a.matmul_nt(&bt), &a.matmul_nt_ref(&bt));
        }
    }

    #[test]
    fn matmul_into_matches_allocating_path_on_stale_buffer() {
        let a = varied(6, 10, 1);
        let b = varied(10, 3, 2);
        let mut out = Tensor::full(6, 3, f32::NAN); // stale contents must not leak
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    // The reference kernels skipped multiplications where the left factor is
    // zero, which silently swallowed NaN sitting in the matching position of
    // the other operand. The blocked kernels must let IEEE arithmetic speak.
    #[test]
    fn matmul_propagates_nan_through_zero_masked_positions() {
        let a = Tensor::from_vec(1, 2, vec![0.0, 1.0]);
        let mut b = Tensor::from_vec(2, 1, vec![f32::NAN, 2.0]);
        assert!(
            a.matmul(&b).get(0, 0).is_nan(),
            "0 · NaN must poison the output"
        );
        // the reference kernel documents the old masking behavior
        assert_eq!(a.matmul_ref(&b).get(0, 0), 2.0);
        b.set(0, 0, 3.0);
        assert_eq!(a.matmul(&b).get(0, 0), 2.0);
    }

    #[test]
    fn matmul_tn_propagates_nan_through_zero_masked_positions() {
        let a = Tensor::from_vec(2, 1, vec![0.0, 1.0]);
        let b = Tensor::from_vec(2, 1, vec![f32::NAN, 2.0]);
        assert!(a.matmul_tn(&b).get(0, 0).is_nan());
        assert_eq!(a.matmul_tn_ref(&b).get(0, 0), 2.0);
    }
}

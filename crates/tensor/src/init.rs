//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Uniform initialization in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Standard normal initialization scaled by `std`.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Tensor {
    // Box-Muller transform; rand's distributions module is avoided to keep
    // the dependency surface minimal.
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(t.as_slice().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn normal_has_roughly_requested_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(100, 100, 0.5, &mut rng);
        let mean: f32 = t.sum() / t.len() as f32;
        let var: f32 = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn init_is_deterministic_for_a_fixed_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}

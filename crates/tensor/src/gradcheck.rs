//! Finite-difference gradient verification.
//!
//! Used by unit and property tests throughout the workspace to certify that
//! every backward rule in [`crate::tape`] matches the numerical derivative of
//! its forward rule.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Outcome of a gradient check.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest relative error observed across all parameter elements.
    pub max_rel_err: f32,
    /// Location `(param_index, element_index)` of the worst element.
    pub worst: (usize, usize),
    /// Analytic and numeric values at the worst element.
    pub worst_pair: (f32, f32),
}

impl GradCheckReport {
    /// True when the worst relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err < tol
    }
}

/// Compare analytic gradients against central finite differences.
///
/// `build` receives a fresh tape with the given parameters already
/// registered and frozen, and must return the scalar loss node. The function
/// evaluates `build` once for the analytic gradients and `2 · Σ len(pᵢ)`
/// times for the numeric ones, so keep the parameters small.
pub fn check_gradients(
    params: &[Tensor],
    build: impl Fn(&mut Tape, &[Var]) -> Var,
    eps: f32,
) -> GradCheckReport {
    // Analytic pass.
    let mut tape = Tape::new();
    let vars: Vec<Var> = params.iter().map(|p| tape.param(p.clone())).collect();
    tape.freeze();
    let loss = build(&mut tape, &vars);
    tape.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|&v| {
            tape.grad(v).cloned().unwrap_or_else(|| {
                let (r, c) = tape.value(v).shape();
                Tensor::zeros(r, c)
            })
        })
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let mut tape = Tape::new();
        let vars: Vec<Var> = perturbed.iter().map(|p| tape.param(p.clone())).collect();
        tape.freeze();
        let loss = build(&mut tape, &vars);
        tape.value(loss).item()
    };

    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        worst: (0, 0),
        worst_pair: (0.0, 0.0),
    };
    let mut work: Vec<Tensor> = params.to_vec();
    for (pi, param) in params.iter().enumerate() {
        for ei in 0..param.len() {
            let orig = param.as_slice()[ei];
            work[pi].as_mut_slice()[ei] = orig + eps;
            let up = eval(&work);
            work[pi].as_mut_slice()[ei] = orig - eps;
            let down = eval(&work);
            work[pi].as_mut_slice()[ei] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[pi].as_slice()[ei];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            let rel = (a - numeric).abs() / denom;
            if rel > report.max_rel_err {
                report.max_rel_err = rel;
                report.worst = (pi, ei);
                report.worst_pair = (a, numeric);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacency;
    use std::rc::Rc;

    const EPS: f32 = 1e-3;
    const TOL: f32 = 2e-2;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let params = vec![
            t(2, 3, &[0.1, -0.2, 0.3, 0.4, 0.5, -0.6]),
            t(3, 2, &[0.7, 0.8, -0.9, 1.0, 1.1, 1.2]),
        ];
        let rep = check_gradients(
            &params,
            |tape, vars| {
                let c = tape.matmul(vars[0], vars[1]);
                let r = tape.tanh(c);
                tape.sum_all(r)
            },
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn gradcheck_softmax_ce() {
        let params = vec![t(
            3,
            4,
            &[
                0.1, 0.3, -0.2, 0.4, 0.0, -0.5, 0.2, 0.1, 0.9, -0.1, 0.3, 0.2,
            ],
        )];
        let targets = Rc::new(vec![2u32, 0, 3]);
        let rep = check_gradients(
            &params,
            move |tape, vars| tape.softmax_cross_entropy(vars[0], targets.clone()),
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn gradcheck_softmax_ce_near_zero_probability() {
        // Confidently wrong rows: the target probabilities sit around
        // e⁻¹⁴ ≈ 8e-7 and e⁻¹² ≈ 6e-6 — far below healthy but well above
        // the 1e-12 forward clamp, so the classic p - δ gradient must still
        // agree with central differences. (The historical bug differentiated
        // the *unclamped* probability, which this regime is sensitive to.)
        let params = vec![t(2, 3, &[-7.0, 7.0, 0.0, 6.0, -6.0, 0.5])];
        let targets = Rc::new(vec![0u32, 1]);
        let rep = check_gradients(
            &params,
            move |tape, vars| tape.softmax_cross_entropy(vars[0], targets.clone()),
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn gradcheck_softmax_ce_clamped_region_is_flat() {
        // Deep underflow: p_t rounds to zero in f32, the forward loss is
        // pinned at -ln(1e-12) on both sides of every nudge, and the
        // analytic gradient must match the flat numeric one (zero) instead
        // of the unclamped rule's ≈ -1 spike against a constant forward.
        let params = vec![t(1, 2, &[-200.0, 200.0])];
        let targets = Rc::new(vec![0u32]);
        let rep = check_gradients(
            &params,
            move |tape, vars| tape.softmax_cross_entropy(vars[0], targets.clone()),
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
        assert_eq!(rep.max_rel_err, 0.0, "clamped region must be exactly flat");
    }

    #[test]
    fn gradcheck_focal_loss() {
        let params = vec![t(2, 3, &[0.2, -0.4, 0.6, 0.1, 0.5, -0.3])];
        let targets = Rc::new(vec![1u32, 2]);
        let rep = check_gradients(
            &params,
            move |tape, vars| tape.focal_loss(vars[0], targets.clone(), 2.0),
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn gradcheck_focal_loss_near_saturation() {
        // Row 0 is confidently correct (p_t ≈ 0.9997): the focal factor is
        // tiny but still differentiable. Row 1 is confidently wrong
        // (p_t ≈ 9e-4): gradients are steep. Together they exercise both
        // clamp-adjacent regions with the clamp shared between the forward
        // and backward passes — a mismatch shows up as a finite-difference
        // disagreement here.
        let params = vec![t(2, 2, &[4.0, -4.0, 3.5, -3.5])];
        let targets = Rc::new(vec![0u32, 1]);
        let rep = check_gradients(
            &params,
            move |tape, vars| tape.focal_loss(vars[0], targets.clone(), 2.0),
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn gradcheck_attention_path() {
        // Mirrors the attention-task wiring: scores → softmax → weighted sum.
        let params = vec![
            t(
                4,
                3,
                &[
                    0.1, 0.2, 0.3, -0.1, 0.4, 0.0, 0.5, -0.2, 0.3, 0.2, 0.2, -0.4,
                ],
            ),
            t(1, 3, &[0.3, -0.5, 0.2]),
        ];
        let rep = check_gradients(
            &params,
            |tape, vars| {
                let v = vars[0]; // (2 samples x 2 cols) x 3 dims
                let s = vars[1];
                // v · sᵀ via reshape (valid because s is a single row)
                let st = tape.reshape(s, 3, 1);
                let scores = tape.matmul(v, st);
                let scores = tape.reshape(scores, 2, 2);
                let alpha = tape.row_softmax(scores);
                let ctx = tape.block_weighted_sum(v, alpha);
                let sq = tape.mul_elem(ctx, ctx);
                tape.sum_all(sq)
            },
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn gradcheck_scatter_mean_gather() {
        let params = vec![t(3, 2, &[0.5, -0.5, 0.25, 1.0, -1.0, 0.75])];
        let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![0], vec![0, 1, 2]]));
        let idx = Rc::new(vec![0u32, 2, 1]);
        let rep = check_gradients(
            &params,
            move |tape, vars| {
                let m = tape.scatter_mean(vars[0], adj.clone());
                let g = tape.gather_rows(m, idx.clone());
                let sq = tape.mul_elem(g, g);
                tape.sum_all(sq)
            },
            EPS,
        );
        assert!(rep.passes(TOL), "{rep:?}");
    }
}

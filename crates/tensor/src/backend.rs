//! Pluggable execution backends for the training hot-path kernels.
//!
//! The [`TensorBackend`] trait abstracts the five kernels that dominate a
//! GRIMP training epoch — `matmul`, `matmul_tn`, `matmul_nt`, `scatter_mean`
//! and the fused softmax cross-entropy (forward and backward) — so the tape
//! can swap the blocked serial implementation ([`SerialBackend`]) for a
//! multi-threaded one ([`ParallelBackend`]) without touching any autodiff
//! logic.
//!
//! ## Determinism contract
//!
//! Both backends produce **bit-identical** results for every kernel, for any
//! thread count. This is what keeps checkpoint resume and
//! `TrainReport::from_events` replay exact under parallel execution:
//!
//! * `matmul` / `matmul_nt` / `scatter_mean` / CE-backward write disjoint
//!   output rows, and each output row is computed by a per-row routine whose
//!   arithmetic does not depend on which range the row belongs to. Any row
//!   partitioning therefore composes to exactly the serial result.
//! * `matmul_tn` reduces over the shared row dimension. The strip kernel
//!   ([`crate::tensor::gemm_tn_strip`]) keeps the outer k-loop intact and
//!   only restricts the inner sweep over output rows, so every output
//!   element sees the same k-ascending accumulation order as the serial
//!   kernel.
//! * The CE forward is a cross-row reduction, which *would* depend on the
//!   partitioning — so both backends reduce it over **fixed-size chunks**
//!   ([`CE_CHUNK`] rows) whose per-chunk `f64` partials are summed in chunk
//!   order. The chunk size is independent of the thread count, hence
//!   `Serial == Parallel(1) == Parallel(8)` bit-for-bit.
//!
//! ## Allocation contract
//!
//! The thread pool and its workers are created once per backend;
//! [`ParallelBackend`]'s only per-call scratch (the CE chunk-partial buffer)
//! grows once to the largest batch seen and is reused afterwards, preserving
//! the 0-allocations-after-epoch-1 hot-path invariant.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::adjacency::Adjacency;
use crate::tensor::{gemm_nt_rows, gemm_rows, gemm_tn_strip, Tensor};

/// Probability clamp applied to the target-class softmax probability by the
/// cross-entropy **forward and backward** passes. The forward guards
/// `ln(0)`; the backward must agree: where the forward loss is flattened by
/// the clamp (`p_t < CE_P_MIN`) the consistent gradient is zero, not the
/// `p_k - δ_tk` of the unclamped loss.
pub(crate) const CE_P_MIN: f32 = 1e-12;

/// Fixed row-chunk size of the cross-entropy forward reduction. Both
/// backends sum per-chunk `f64` partials in ascending chunk order, so the
/// loss is independent of the thread count (see the module docs).
pub(crate) const CE_CHUNK: usize = 64;

/// Which kernel backend a [`crate::Tape`] executes its hot-path ops on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Single-threaded blocked kernels (the default).
    #[default]
    Serial,
    /// Fixed-partition thread pool over the same kernels; bit-identical to
    /// [`BackendKind::Serial`] for any thread count.
    Parallel {
        /// Worker count including the calling thread; must be ≥ 1.
        threads: usize,
    },
}

impl BackendKind {
    /// Stable numeric code for trace provenance (0 serial, 1 parallel).
    pub fn code(self) -> u64 {
        match self {
            BackendKind::Serial => 0,
            BackendKind::Parallel { .. } => 1,
        }
    }

    /// Human-readable backend name.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Serial => "serial",
            BackendKind::Parallel { .. } => "parallel",
        }
    }

    /// Thread count the kind runs with (1 for serial).
    pub fn threads(self) -> usize {
        match self {
            BackendKind::Serial => 1,
            BackendKind::Parallel { threads } => threads,
        }
    }
}

/// Execution backend for the training hot-path kernels. See the module docs
/// for the determinism and allocation contracts implementations must uphold.
pub trait TensorBackend {
    /// The kind this backend was built from.
    fn kind(&self) -> BackendKind;

    /// Threads participating in kernel execution (1 for serial).
    fn threads(&self) -> usize {
        self.kind().threads()
    }

    /// Human-readable backend name (used in trace provenance).
    fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// `out = a · b`, overwriting `out`.
    fn matmul_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor);

    /// `out = aᵀ · b`, overwriting `out`.
    fn matmul_tn_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor);

    /// `out = a · bᵀ`, overwriting `out`.
    fn matmul_nt_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor);

    /// Neighborhood mean: `out[i] = mean of a[j] over j ∈ adj(i)`, a zero
    /// row when `adj(i)` is empty (degree-0 targets must not divide by
    /// zero). Overwrites every element of `out`.
    fn scatter_mean_into(&self, a: &Tensor, adj: &Adjacency, out: &mut Tensor);

    /// Total (unaveraged) cross-entropy loss `Σ_i -ln(max(p_ti, CE_P_MIN))`
    /// over the rows of `logits`, reduced in fixed [`CE_CHUNK`]-row chunks.
    fn softmax_ce_loss(&self, logits: &Tensor, targets: &[u32]) -> f64;

    /// Cross-entropy backward: `dl` holds a copy of the logits on entry and
    /// the scaled gradient on exit. Rows whose target probability fell
    /// below [`CE_P_MIN`] (where the forward loss is clamped flat) receive a
    /// zero gradient.
    fn softmax_ce_backward(&self, dl: &mut Tensor, targets: &[u32], scale: f32);

    /// Allocating convenience form of [`TensorBackend::matmul_into`].
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.cols());
        self.matmul_into(a, b, &mut out);
        out
    }

    /// Allocating convenience form of [`TensorBackend::matmul_tn_into`].
    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.cols(), b.cols());
        self.matmul_tn_into(a, b, &mut out);
        out
    }

    /// Allocating convenience form of [`TensorBackend::matmul_nt_into`].
    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(a.rows(), b.rows());
        self.matmul_nt_into(a, b, &mut out);
        out
    }

    /// Allocating convenience form of [`TensorBackend::scatter_mean_into`].
    fn scatter_mean(&self, a: &Tensor, adj: &Adjacency) -> Tensor {
        let mut out = Tensor::zeros(adj.n_rows(), a.cols());
        self.scatter_mean_into(a, adj, &mut out);
        out
    }
}

/// Build the backend a [`BackendKind`] describes.
pub fn make_backend(kind: BackendKind) -> Box<dyn TensorBackend> {
    match kind {
        BackendKind::Serial => Box::new(SerialBackend),
        BackendKind::Parallel { threads } => Box::new(ParallelBackend::new(threads)),
    }
}

// ---------------------------------------------------------------------------
// Shared per-row kernel routines
//
// Both backends execute these exact routines; the parallel backend merely
// distributes disjoint row / chunk ranges across threads. Keeping a single
// source of truth is what makes the bit-identity argument local.
// ---------------------------------------------------------------------------

/// Numerically stable softmax of one row, in place. Single source of truth
/// for the per-row arithmetic of [`crate::softmax_rows_in_place`].
pub(crate) fn softmax_row_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Softmax probability of class `t` for one logits row, streaming the
/// max/sum-exp without materializing the probability vector. The summation
/// order matches [`softmax_row_in_place`] exactly, so the result is
/// bit-identical to reading the materialized probability.
pub(crate) fn streamed_softmax_prob(row: &[f32], t: usize) -> f32 {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for &z in row {
        sum += (z - max).exp();
    }
    (row[t] - max).exp() * (1.0 / sum)
}

/// Rows `r0..r1` of the scatter-mean forward, written to `out` (which holds
/// exactly those rows). Degree-0 rows are zeroed, never divided by.
pub(crate) fn scatter_mean_rows(
    a: &Tensor,
    adj: &Adjacency,
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    let cols = a.cols();
    debug_assert_eq!(out.len(), (r1 - r0) * cols);
    for i in r0..r1 {
        let out_row = &mut out[(i - r0) * cols..(i - r0 + 1) * cols];
        out_row.fill(0.0);
        let neigh = adj.neighbors(i);
        if neigh.is_empty() {
            continue;
        }
        let inv = 1.0 / neigh.len() as f32;
        for &j in neigh {
            for (o, &v) in out_row.iter_mut().zip(a.row_slice(j as usize)) {
                *o += v * inv;
            }
        }
    }
}

/// Unaveraged CE loss of rows `r0..r1`, accumulated left to right in `f64`.
fn ce_loss_rows(logits: &Tensor, targets: &[u32], r0: usize, r1: usize) -> f64 {
    let mut loss = 0.0f64;
    for (i, &t) in targets[r0..r1].iter().enumerate() {
        let p = streamed_softmax_prob(logits.row_slice(r0 + i), t as usize).max(CE_P_MIN);
        loss -= f64::from(p.ln());
    }
    loss
}

/// CE backward for rows `r0..r1`; `dl` holds exactly those rows of the
/// logits copy and receives the scaled gradient. Rows whose target
/// probability is clamped in the forward get a zero gradient (the loss is
/// flat there), which also keeps deep-underflow rows from emitting the
/// unclamped rule's `≈ -scale` spike against a constant forward value.
fn ce_backward_rows(
    dl: &mut [f32],
    cols: usize,
    targets: &[u32],
    r0: usize,
    r1: usize,
    scale: f32,
) {
    for i in r0..r1 {
        let row = &mut dl[(i - r0) * cols..(i - r0 + 1) * cols];
        softmax_row_in_place(row);
        let t = targets[i] as usize;
        if row[t] < CE_P_MIN {
            row.fill(0.0);
        } else {
            row[t] -= 1.0;
            for g in row.iter_mut() {
                *g *= scale;
            }
        }
    }
}

/// Number of [`CE_CHUNK`]-row chunks covering `rows`.
fn ce_chunks(rows: usize) -> usize {
    rows.div_ceil(CE_CHUNK)
}

/// Row range of CE chunk `c`.
fn ce_chunk_range(rows: usize, c: usize) -> (usize, usize) {
    (c * CE_CHUNK, ((c + 1) * CE_CHUNK).min(rows))
}

/// Rows `[r0, r1)` handled by partition `j` of `parts` over `rows` rows —
/// a pure function of its inputs, so a given (rows, parts) pair always
/// yields the same partitioning.
fn part_range(rows: usize, parts: usize, j: usize) -> (usize, usize) {
    let base = rows / parts;
    let rem = rows % parts;
    let r0 = j * base + j.min(rem);
    (r0, r0 + base + usize::from(j < rem))
}

// ---------------------------------------------------------------------------
// SerialBackend
// ---------------------------------------------------------------------------

/// The existing single-threaded blocked kernels behind the backend trait.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialBackend;

impl TensorBackend for SerialBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Serial
    }

    fn matmul_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        a.matmul_into(b, out);
    }

    fn matmul_tn_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        a.matmul_tn_into(b, out);
    }

    fn matmul_nt_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        a.matmul_nt_into(b, out);
    }

    fn scatter_mean_into(&self, a: &Tensor, adj: &Adjacency, out: &mut Tensor) {
        debug_assert_eq!(out.shape(), (adj.n_rows(), a.cols()));
        scatter_mean_rows(a, adj, 0, adj.n_rows(), out.as_mut_slice());
    }

    fn softmax_ce_loss(&self, logits: &Tensor, targets: &[u32]) -> f64 {
        let rows = targets.len();
        let mut total = 0.0f64;
        for c in 0..ce_chunks(rows) {
            let (r0, r1) = ce_chunk_range(rows, c);
            total += ce_loss_rows(logits, targets, r0, r1);
        }
        total
    }

    fn softmax_ce_backward(&self, dl: &mut Tensor, targets: &[u32], scale: f32) {
        let (rows, cols) = dl.shape();
        ce_backward_rows(dl.as_mut_slice(), cols, targets, 0, rows, scale);
    }
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

/// Type-erased pointer to the job closure of the in-flight dispatch. The
/// pointee lives on the dispatching caller's stack; [`Pool::run`] does not
/// return until every partition has executed, which bounds the pointer's
/// use strictly inside the pointee's lifetime.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (the closure is shared immutably across
// workers) and outlives every dereference (see `Job`'s docs), so shipping
// the pointer to worker threads is sound.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per dispatched job so sleeping workers can tell a new
    /// job from a spurious wakeup.
    epoch: u64,
    job: Option<Job>,
    /// Partitions of the current job.
    n_parts: usize,
    /// Next unclaimed partition index.
    next_part: usize,
    /// Claimed-but-unfinished plus unclaimed partitions.
    outstanding: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job is posted (or shutdown requested).
    start: Condvar,
    /// Signaled when the last partition of a job finishes.
    done: Condvar,
}

impl PoolShared {
    fn worker_loop(&self) {
        let mut seen = 0u64;
        let mut st = self.state.lock().expect("pool mutex poisoned");
        loop {
            if st.shutdown {
                return;
            }
            if st.epoch == seen || st.next_part >= st.n_parts {
                // Nothing for us in this job (or no job yet): mark it seen
                // and sleep until the next dispatch.
                seen = st.epoch;
                st = self.start.wait(st).expect("pool mutex poisoned");
                continue;
            }
            seen = st.epoch;
            while st.next_part < st.n_parts {
                let part = st.next_part;
                st.next_part += 1;
                let job = st.job.expect("job present while partitions remain");
                drop(st);
                // SAFETY: `Pool::run` keeps the closure alive until
                // `outstanding` reaches zero, which cannot happen before
                // this call returns.
                unsafe { (*job.0)(part) };
                st = self.state.lock().expect("pool mutex poisoned");
                st.outstanding -= 1;
                if st.outstanding == 0 {
                    self.done.notify_all();
                }
            }
        }
    }
}

/// Hand-rolled fixed-partition fork-join pool: `threads - 1` persistent
/// workers plus the dispatching caller, which participates in draining the
/// partition queue instead of blocking idle. No work stealing, no
/// dependencies; partition indices map to fixed output ranges so *which*
/// thread runs a partition never affects the bytes it writes.
struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                n_parts: 0,
                next_part: 0,
                outstanding: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("grimp-kernel-{i}"))
                    .spawn(move || sh.worker_loop())
                    .expect("spawn kernel worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Execute `f(0), f(1), …, f(n_parts - 1)` across the pool (the caller
    /// included) and return once all of them have finished.
    fn run<'a>(&self, n_parts: usize, f: &'a (dyn Fn(usize) + Sync + 'a)) {
        debug_assert!(n_parts >= 1);
        let p: *const (dyn Fn(usize) + Sync + 'a) = f;
        // SAFETY: lifetime erasure only — this function joins every
        // partition before returning, so the pointee outlives all uses.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'a),
                *const (dyn Fn(usize) + Sync + 'static),
            >(p)
        });
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.epoch += 1;
            st.job = Some(job);
            st.n_parts = n_parts;
            st.next_part = 0;
            st.outstanding = n_parts;
        }
        self.shared.start.notify_all();
        loop {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            if st.next_part >= st.n_parts {
                while st.outstanding > 0 {
                    st = self.shared.done.wait(st).expect("pool mutex poisoned");
                }
                st.job = None;
                return;
            }
            let part = st.next_part;
            st.next_part += 1;
            drop(st);
            f(part);
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.outstanding -= 1;
            if st.outstanding == 0 {
                self.shared.done.notify_all();
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex poisoned");
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Raw mutable pointer that may cross thread boundaries. Each partition
/// derives a slice over a *disjoint* output range from it, so no two
/// threads ever alias the same element.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);

// SAFETY: partitions write disjoint ranges (asserted by construction in the
// dispatchers below); the pointee outlives the dispatch because `Pool::run`
// joins before returning.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The sub-slice of `len` elements starting at `offset`.
    ///
    /// # Safety
    /// Caller guarantees `offset..offset + len` is in bounds and disjoint
    /// from every other concurrently derived range.
    unsafe fn slice(self, offset: usize, len: usize) -> &'static mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

/// [`SendPtr`]'s `f64` sibling for the CE chunk-partial buffer.
#[derive(Clone, Copy)]
struct SendF64(*mut f64);

// SAFETY: same argument as `SendPtr` — disjoint indices, joined dispatch.
unsafe impl Send for SendF64 {}
unsafe impl Sync for SendF64 {}

impl SendF64 {
    /// Store `v` at `idx`.
    ///
    /// # Safety
    /// Caller guarantees `idx` is in bounds and written by exactly one
    /// partition of the in-flight dispatch.
    unsafe fn set(self, idx: usize, v: f64) {
        *self.0.add(idx) = v;
    }
}

// ---------------------------------------------------------------------------
// ParallelBackend
// ---------------------------------------------------------------------------

/// Fixed-partition multi-threaded backend, bit-identical to
/// [`SerialBackend`] for any thread count (see the module docs).
pub struct ParallelBackend {
    threads: usize,
    /// `None` when `threads == 1`: the caller runs every partition inline.
    pool: Option<Pool>,
    /// CE chunk partials, grow-once (allocation-free after the first epoch).
    ce_partials: RefCell<Vec<f64>>,
}

impl ParallelBackend {
    /// A backend executing on `threads` threads (the calling thread plus
    /// `threads - 1` pool workers, spawned once here).
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> ParallelBackend {
        assert!(threads >= 1, "parallel backend needs at least one thread");
        ParallelBackend {
            threads,
            pool: (threads > 1).then(|| Pool::new(threads - 1)),
            ce_partials: RefCell::new(Vec::new()),
        }
    }

    /// Split `rows` into at most `self.threads` contiguous ranges and run
    /// `f(r0, r1)` on each, using the pool when it pays.
    fn par_ranges(&self, rows: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        let parts = self.threads.min(rows).max(1);
        match &self.pool {
            Some(pool) if parts > 1 => {
                let g = |j: usize| {
                    let (r0, r1) = part_range(rows, parts, j);
                    f(r0, r1);
                };
                pool.run(parts, &g);
            }
            _ => f(0, rows),
        }
    }
}

impl TensorBackend for ParallelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Parallel {
            threads: self.threads,
        }
    }

    fn matmul_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(
            a.cols(),
            b.rows(),
            "matmul shape mismatch: {}x{} · {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        assert_eq!(
            out.shape(),
            (a.rows(), b.cols()),
            "matmul output shape mismatch"
        );
        let (k, n) = (a.cols(), b.cols());
        let (ad, bd) = (a.as_slice(), b.as_slice());
        let op = SendPtr(out.as_mut_slice().as_mut_ptr());
        self.par_ranges(a.rows(), &|r0, r1| {
            // SAFETY: ranges are disjoint by `part_range` construction.
            let chunk = unsafe { op.slice(r0 * n, (r1 - r0) * n) };
            gemm_rows(ad, bd, k, n, r0, r1, chunk);
        });
    }

    fn matmul_tn_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        assert_eq!(
            out.shape(),
            (a.cols(), b.cols()),
            "matmul_tn output shape mismatch"
        );
        let (r, c, n) = (a.rows(), a.cols(), b.cols());
        let (ad, bd) = (a.as_slice(), b.as_slice());
        let op = SendPtr(out.as_mut_slice().as_mut_ptr());
        self.par_ranges(c, &|i0, i1| {
            // SAFETY: strips are disjoint by `part_range` construction.
            let chunk = unsafe { op.slice(i0 * n, (i1 - i0) * n) };
            gemm_tn_strip(ad, bd, r, c, n, i0, i1, chunk);
        });
    }

    fn matmul_nt_into(&self, a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        assert_eq!(
            out.shape(),
            (a.rows(), b.rows()),
            "matmul_nt output shape mismatch"
        );
        let (c, p) = (a.cols(), b.rows());
        let (ad, bd) = (a.as_slice(), b.as_slice());
        let op = SendPtr(out.as_mut_slice().as_mut_ptr());
        self.par_ranges(a.rows(), &|r0, r1| {
            // SAFETY: ranges are disjoint by `part_range` construction.
            let chunk = unsafe { op.slice(r0 * p, (r1 - r0) * p) };
            gemm_nt_rows(ad, bd, c, p, r0, r1, chunk);
        });
    }

    fn scatter_mean_into(&self, a: &Tensor, adj: &Adjacency, out: &mut Tensor) {
        assert_eq!(
            out.shape(),
            (adj.n_rows(), a.cols()),
            "scatter_mean output shape mismatch"
        );
        let cols = a.cols();
        let op = SendPtr(out.as_mut_slice().as_mut_ptr());
        self.par_ranges(adj.n_rows(), &|r0, r1| {
            // SAFETY: ranges are disjoint by `part_range` construction.
            let chunk = unsafe { op.slice(r0 * cols, (r1 - r0) * cols) };
            scatter_mean_rows(a, adj, r0, r1, chunk);
        });
    }

    fn softmax_ce_loss(&self, logits: &Tensor, targets: &[u32]) -> f64 {
        let rows = targets.len();
        let chunks = ce_chunks(rows);
        let mut partials = self.ce_partials.borrow_mut();
        if partials.len() < chunks {
            partials.resize(chunks, 0.0); // grow-once: shapes are epoch-stable
        }
        let pp = SendF64(partials.as_mut_ptr());
        self.par_ranges(chunks, &|c0: usize, c1: usize| {
            for c in c0..c1 {
                let (r0, r1) = ce_chunk_range(rows, c);
                // SAFETY: each chunk index is visited by exactly one range.
                unsafe { pp.set(c, ce_loss_rows(logits, targets, r0, r1)) };
            }
        });
        // Chunk-order summation: identical to the serial backend's fold.
        partials[..chunks].iter().sum()
    }

    fn softmax_ce_backward(&self, dl: &mut Tensor, targets: &[u32], scale: f32) {
        let (rows, cols) = dl.shape();
        let op = SendPtr(dl.as_mut_slice().as_mut_ptr());
        self.par_ranges(rows, &|r0, r1| {
            // SAFETY: ranges are disjoint by `part_range` construction.
            let chunk = unsafe { op.slice(r0 * cols, (r1 - r0) * cols) };
            ce_backward_rows(chunk, cols, targets, r0, r1, scale);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varied(rows: usize, cols: usize, seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(99);
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) % 2000) as f32 / 500.0 - 2.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_bits_eq(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn part_range_covers_rows_exactly_once() {
        for rows in [0usize, 1, 2, 7, 64, 65, 1000] {
            for parts in [1usize, 2, 3, 8] {
                let mut next = 0;
                for j in 0..parts {
                    let (r0, r1) = part_range(rows, parts, j);
                    assert_eq!(r0, next, "rows={rows} parts={parts} j={j}");
                    assert!(r1 >= r0);
                    next = r1;
                }
                assert_eq!(next, rows);
            }
        }
    }

    #[test]
    fn parallel_matmul_family_is_bit_identical_to_serial() {
        let serial = SerialBackend;
        for threads in [1usize, 2, 8] {
            let par = ParallelBackend::new(threads);
            for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 9, 2), (33, 17, 12)] {
                let a = varied(m, k, (m * 31 + k) as u32);
                let b = varied(k, n, (k * 31 + n) as u32);
                assert_bits_eq(&par.matmul(&a, &b), &serial.matmul(&a, &b));
                let at = varied(k, m, (m + n) as u32);
                assert_bits_eq(&par.matmul_tn(&at, &b), &serial.matmul_tn(&at, &b));
                let bt = varied(n, k, (n * 7 + k) as u32);
                assert_bits_eq(&par.matmul_nt(&a, &bt), &serial.matmul_nt(&a, &bt));
            }
        }
    }

    #[test]
    fn parallel_scatter_mean_zeroes_degree_0_rows() {
        let a = varied(4, 3, 9);
        let adj = Adjacency::from_lists(&[vec![1, 3], vec![], vec![0], vec![]]);
        let serial = SerialBackend;
        for threads in [1usize, 2, 8] {
            let par = ParallelBackend::new(threads);
            let got = par.scatter_mean(&a, &adj);
            assert_bits_eq(&got, &serial.scatter_mean(&a, &adj));
            assert!(got.row_slice(1).iter().all(|&v| v == 0.0));
            assert!(got.row_slice(3).iter().all(|&v| v == 0.0));
            assert!(got.all_finite(), "degree-0 rows must not divide by zero");
        }
    }

    #[test]
    fn ce_loss_and_backward_are_bit_identical_across_backends() {
        let serial = SerialBackend;
        // 150 rows straddles multiple CE chunks unevenly (64 + 64 + 22).
        let logits = varied(150, 6, 3);
        let targets: Vec<u32> = (0..150u32).map(|i| i % 6).collect();
        let want = serial.softmax_ce_loss(&logits, &targets);
        let mut want_grad = logits.clone();
        serial.softmax_ce_backward(&mut want_grad, &targets, 0.01);
        for threads in [1usize, 2, 8] {
            let par = ParallelBackend::new(threads);
            let got = par.softmax_ce_loss(&logits, &targets);
            assert_eq!(got.to_bits(), want.to_bits());
            let mut got_grad = logits.clone();
            par.softmax_ce_backward(&mut got_grad, &targets, 0.01);
            assert_bits_eq(&got_grad, &want_grad);
        }
    }

    #[test]
    fn ce_backward_zeroes_rows_where_forward_is_clamped() {
        // Row 0: target probability underflows f32 (logit gap ≫ ln(1e-12)),
        // so the forward loss is clamped flat and the gradient must vanish.
        // Row 1: healthy probabilities keep the classic p - δ gradient.
        let logits = Tensor::from_vec(2, 2, vec![-200.0, 200.0, 1.0, 0.0]);
        let targets = vec![0u32, 0];
        for backend in [
            &SerialBackend as &dyn TensorBackend,
            &ParallelBackend::new(2),
        ] {
            let mut grad = logits.clone();
            backend.softmax_ce_backward(&mut grad, &targets, 1.0);
            assert_eq!(grad.row_slice(0), &[0.0, 0.0], "clamped row gradient");
            assert!(grad.get(1, 0) < 0.0 && grad.get(1, 1) > 0.0);
        }
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let par = ParallelBackend::new(4);
        let a = varied(65, 9, 1);
        let b = varied(9, 7, 2);
        let want = SerialBackend.matmul(&a, &b);
        for _ in 0..200 {
            assert_bits_eq(&par.matmul(&a, &b), &want);
        }
    }
}

//! Gradient-descent optimizers over a tape's parameter section.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// When set, every gradient element is clamped to `[-clip, clip]`.
    pub clip: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, clip: None }
    }

    /// Apply one update to every parameter that received a gradient.
    pub fn step(&self, tape: &mut Tape) {
        let clip = self.clip;
        let lr = self.lr;
        for i in 0..tape.param_count() {
            let (g, value) = tape.grad_and_value_mut(Var::from_index(i));
            let Some(g) = g else { continue };
            match clip {
                Some(c) => {
                    for (x, &gi) in value.as_mut_slice().iter_mut().zip(g.as_slice()) {
                        *x -= lr * gi.clamp(-c, c);
                    }
                }
                None => value.add_scaled(g, -lr),
            }
        }
    }
}

/// A serializable snapshot of an [`Adam`] optimizer's mutable state: the
/// step counter and both moment vectors. Learning rate and betas are config,
/// not state, and live in [`Adam`]'s public fields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdamState {
    /// Bias-correction step counter.
    pub t: u32,
    /// First-moment estimates, one per tape parameter (possibly empty
    /// placeholders for parameters that never received a gradient).
    pub m: Vec<Tensor>,
    /// Second-moment estimates, aligned with `m`.
    pub v: Vec<Tensor>,
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// A copy of the mutable optimizer state, for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Re-capture the mutable state into an existing [`AdamState`] without
    /// allocating when shapes are unchanged (the steady state of a training
    /// loop; lazily materialized moments fall back to a clone once).
    pub fn export_state_into(&self, out: &mut AdamState) {
        out.t = self.t;
        copy_tensors_into(&mut out.m, &self.m);
        copy_tensors_into(&mut out.v, &self.v);
    }

    /// Restore mutable state captured by [`Adam::export_state`]. The next
    /// [`Adam::step`] continues bit-exactly from the checkpointed trajectory.
    pub fn import_state(&mut self, state: &AdamState) {
        self.t = state.t;
        self.m.clear();
        self.m.extend(state.m.iter().cloned());
        self.v.clear();
        self.v.extend(state.v.iter().cloned());
    }

    /// Apply one update to every parameter that received a gradient.
    ///
    /// Moment buffers are allocated lazily on the first step, matching the
    /// tape's frozen parameter section.
    pub fn step(&mut self, tape: &mut Tape) {
        let n = tape.param_count();
        self.step_range(tape, 0..n);
    }

    /// Apply one update only to the parameters whose index lies in `range`
    /// (and that received a gradient). Used for alternating optimization —
    /// e.g. GAN training, where generator and discriminator parameters are
    /// registered contiguously and updated in turns.
    ///
    /// Moment buffers start as empty placeholders and materialize the first
    /// time a parameter receives a gradient, so persistent constant inputs
    /// in the frozen section never cost moment storage. The update itself is
    /// one fused pass — no gradient clone, no intermediate buffers.
    pub fn step_range(&mut self, tape: &mut Tape, range: std::ops::Range<usize>) {
        let n = tape.param_count();
        if self.m.is_empty() {
            self.m = (0..n).map(|_| Tensor::zeros(0, 0)).collect();
            self.v = (0..n).map(|_| Tensor::zeros(0, 0)).collect();
        }
        assert_eq!(
            self.m.len(),
            n,
            "optimizer state does not match tape parameters"
        );
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in range.start..range.end.min(n) {
            let (g, value) = tape.grad_and_value_mut(Var::from_index(i));
            let Some(g) = g else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            if m.is_empty() && !g.is_empty() {
                *m = Tensor::zeros(g.rows(), g.cols());
                *v = Tensor::zeros(g.rows(), g.cols());
            }
            for ((x, &gi), (mi, vi)) in value
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *x -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Overwrite `dst` with copies of `src`, reusing `dst`'s buffers whenever
/// the matching tensor already has the right shape.
fn copy_tensors_into(dst: &mut Vec<Tensor>, src: &[Tensor]) {
    dst.truncate(src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        if d.shape() == s.shape() {
            d.as_mut_slice().copy_from_slice(s.as_slice());
        } else {
            *d = s.clone();
        }
    }
    for s in &src[dst.len()..] {
        dst.push(s.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::scalar(5.0));
        tape.freeze();
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let sq = tape.mul_elem(x, x);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            sgd.step(&mut tape);
            tape.reset();
        }
        assert!(tape.value(x).item().abs() < 1e-3);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::scalar(5.0));
        tape.freeze();
        let mut adam = Adam::new(0.3);
        for _ in 0..200 {
            let sq = tape.mul_elem(x, x);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }
        assert!(
            tape.value(x).item().abs() < 1e-2,
            "x = {}",
            tape.value(x).item()
        );
    }

    #[test]
    fn step_range_updates_only_the_selected_parameters() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::scalar(5.0));
        let b = tape.param(Tensor::scalar(5.0));
        tape.freeze();
        let mut adam = Adam::new(0.1);
        let prod = tape.mul_elem(a, b);
        let loss = tape.sum_all(prod);
        tape.backward(loss);
        adam.step_range(&mut tape, 0..1); // update only `a`
        tape.reset();
        assert!(tape.value(a).item() < 5.0, "a must move");
        assert_eq!(tape.value(b).item(), 5.0, "b must stay frozen");
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_exactly() {
        let run = |interrupt_at: Option<usize>| -> Vec<f32> {
            let mut tape = Tape::new();
            let x = tape.param(Tensor::from_vec(1, 2, vec![5.0, -3.0]));
            tape.freeze();
            let mut adam = Adam::new(0.1);
            for step in 0..20 {
                if interrupt_at == Some(step) {
                    // simulate a kill/resume: serialize state into a fresh
                    // optimizer and continue with it
                    let state = adam.export_state();
                    let mut fresh = Adam::new(0.1);
                    fresh.import_state(&state);
                    adam = fresh;
                }
                let sq = tape.mul_elem(x, x);
                let loss = tape.sum_all(sq);
                tape.backward(loss);
                adam.step(&mut tape);
                tape.reset();
            }
            tape.value(x).as_slice().to_vec()
        };
        let uninterrupted = run(None);
        let resumed = run(Some(7));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&uninterrupted), bits(&resumed));
    }

    #[test]
    fn export_state_into_reuses_buffers() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_vec(1, 2, vec![5.0, -3.0]));
        tape.freeze();
        let mut adam = Adam::new(0.1);
        let mut state = AdamState::default();
        for _ in 0..3 {
            let sq = tape.mul_elem(x, x);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
            adam.export_state_into(&mut state);
        }
        assert_eq!(state, adam.export_state());
        assert_eq!(state.t, 3);
    }

    #[test]
    fn sgd_clipping_bounds_the_update() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::scalar(1000.0));
        tape.freeze();
        let sgd = Sgd {
            lr: 1.0,
            clip: Some(1.0),
        };
        let sq = tape.mul_elem(x, x);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        // raw gradient is 2000, clipped to 1 → x moves by exactly lr·1.
        sgd.step(&mut tape);
        assert_eq!(tape.value(x).item(), 999.0);
    }
}

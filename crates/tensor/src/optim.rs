//! Gradient-descent optimizers over a tape's parameter section.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// When set, every gradient element is clamped to `[-clip, clip]`.
    pub clip: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, clip: None }
    }

    /// Apply one update to every parameter that received a gradient.
    pub fn step(&self, tape: &mut Tape) {
        let clip = self.clip;
        let lr = self.lr;
        for i in 0..tape.param_count() {
            let (g, value) = tape.grad_and_value_mut(Var::from_index(i));
            let Some(g) = g else { continue };
            match clip {
                Some(c) => {
                    for (x, &gi) in value.as_mut_slice().iter_mut().zip(g.as_slice()) {
                        *x -= lr * gi.clamp(-c, c);
                    }
                }
                None => value.add_scaled(g, -lr),
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update to every parameter that received a gradient.
    ///
    /// Moment buffers are allocated lazily on the first step, matching the
    /// tape's frozen parameter section.
    pub fn step(&mut self, tape: &mut Tape) {
        let n = tape.param_count();
        self.step_range(tape, 0..n);
    }

    /// Apply one update only to the parameters whose index lies in `range`
    /// (and that received a gradient). Used for alternating optimization —
    /// e.g. GAN training, where generator and discriminator parameters are
    /// registered contiguously and updated in turns.
    ///
    /// Moment buffers start as empty placeholders and materialize the first
    /// time a parameter receives a gradient, so persistent constant inputs
    /// in the frozen section never cost moment storage. The update itself is
    /// one fused pass — no gradient clone, no intermediate buffers.
    pub fn step_range(&mut self, tape: &mut Tape, range: std::ops::Range<usize>) {
        let n = tape.param_count();
        if self.m.is_empty() {
            self.m = (0..n).map(|_| Tensor::zeros(0, 0)).collect();
            self.v = (0..n).map(|_| Tensor::zeros(0, 0)).collect();
        }
        assert_eq!(
            self.m.len(),
            n,
            "optimizer state does not match tape parameters"
        );
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in range.start..range.end.min(n) {
            let (g, value) = tape.grad_and_value_mut(Var::from_index(i));
            let Some(g) = g else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            if m.is_empty() && !g.is_empty() {
                *m = Tensor::zeros(g.rows(), g.cols());
                *v = Tensor::zeros(g.rows(), g.cols());
            }
            for ((x, &gi), (mi, vi)) in value
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *x -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::scalar(5.0));
        tape.freeze();
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let sq = tape.mul_elem(x, x);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            sgd.step(&mut tape);
            tape.reset();
        }
        assert!(tape.value(x).item().abs() < 1e-3);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::scalar(5.0));
        tape.freeze();
        let mut adam = Adam::new(0.3);
        for _ in 0..200 {
            let sq = tape.mul_elem(x, x);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }
        assert!(
            tape.value(x).item().abs() < 1e-2,
            "x = {}",
            tape.value(x).item()
        );
    }

    #[test]
    fn step_range_updates_only_the_selected_parameters() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::scalar(5.0));
        let b = tape.param(Tensor::scalar(5.0));
        tape.freeze();
        let mut adam = Adam::new(0.1);
        let prod = tape.mul_elem(a, b);
        let loss = tape.sum_all(prod);
        tape.backward(loss);
        adam.step_range(&mut tape, 0..1); // update only `a`
        tape.reset();
        assert!(tape.value(a).item() < 5.0, "a must move");
        assert_eq!(tape.value(b).item(), 5.0, "b must stay frozen");
    }

    #[test]
    fn sgd_clipping_bounds_the_update() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::scalar(1000.0));
        tape.freeze();
        let sgd = Sgd {
            lr: 1.0,
            clip: Some(1.0),
        };
        let sq = tape.mul_elem(x, x);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        // raw gradient is 2000, clipped to 1 → x moves by exactly lr·1.
        sgd.step(&mut tape);
        assert_eq!(tape.value(x).item(), 999.0);
    }
}

//! Small neural-network building blocks over the autodiff tape.

use rand::Rng;

use crate::init::xavier_uniform;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// A fully connected layer `x · W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Dense {
    w: Var,
    b: Var,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Register a new dense layer's parameters on `tape`.
    pub fn new(tape: &mut Tape, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = tape.param(xavier_uniform(in_dim, out_dim, rng));
        let b = tape.param(Tensor::zeros(1, out_dim));
        Dense {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Apply the layer to a batch `x` of shape `N × in_dim`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        debug_assert_eq!(
            tape.value(x).cols(),
            self.in_dim,
            "Dense input width mismatch"
        );
        let xw = tape.matmul(x, self.w);
        tape.add_row_broadcast(xw, self.b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight and bias handles (for parameter counting and inspection).
    pub fn params(&self) -> [Var; 2] {
        [self.w, self.b]
    }

    /// Number of scalar parameters (`in·out + out`).
    pub fn n_params(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }
}

/// A stack of dense layers with ReLU activations between them (not after the
/// last layer).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `[in, hidden, out]`.
    ///
    /// # Panics
    /// Panics when fewer than two widths are given.
    pub fn new(tape: &mut Tape, widths: &[usize], rng: &mut impl Rng) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Dense::new(tape, w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, h);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }

    /// The constituent layers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Dense::n_params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::rc::Rc;

    #[test]
    fn dense_forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let layer = Dense::new(&mut tape, 4, 3, &mut rng);
        tape.freeze();
        let x = tape.input(Tensor::zeros(5, 4));
        let y = layer.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn mlp_learns_xor_style_separation() {
        // Tiny sanity check that the whole stack (mlp + ce + adam) can fit a
        // non-linearly separable function.
        use crate::optim::Adam;
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::new();
        let mlp = Mlp::new(&mut tape, &[2, 16, 2], &mut rng);
        tape.freeze();
        let mut adam = Adam::new(0.05);
        let xs = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Rc::new(vec![0u32, 1, 1, 0]);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let x = tape.input(xs.clone());
            let logits = mlp.forward(&mut tape, x);
            let loss = tape.softmax_cross_entropy(logits, ys.clone());
            last = tape.value(loss).item();
            tape.backward(loss);
            adam.step(&mut tape);
            tape.reset();
        }
        assert!(last < 0.1, "xor loss did not converge: {last}");
    }

    #[test]
    fn n_params_counts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let mlp = Mlp::new(&mut tape, &[4, 8, 2], &mut rng);
        assert_eq!(mlp.n_params(), 4 * 8 + 8 + 8 * 2 + 2);
    }
}

//! Compressed sparse row neighbor lists used by the scatter-mean op.
//!
//! The GNN crate builds one [`Adjacency`] per (attribute, direction) from the
//! heterogeneous table graph; the tensor crate only needs the generic
//! "for output row `i`, average these input rows" view, which keeps the
//! autodiff engine independent of the graph representation.

/// CSR neighbor lists: output row `i` aggregates input rows
/// `targets[offsets[i]..offsets[i + 1]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Adjacency {
    /// Build from per-row neighbor lists.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut targets = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for list in lists {
            targets.extend_from_slice(list);
            targets
                .len()
                .try_into()
                .map(|t| offsets.push(t))
                .expect("edge count fits u32");
        }
        Adjacency { offsets, targets }
    }

    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if `offsets` is empty, not monotone, or does not end at
    /// `targets.len()`.
    pub fn from_raw(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least one entry"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            targets.len(),
            "offsets must end at targets.len()"
        );
        Adjacency { offsets, targets }
    }

    /// Number of output rows described.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (row, neighbor) pairs.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbor list of output row `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of output row `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Largest referenced input row plus one, or 0 with no edges.
    pub fn max_target_bound(&self) -> usize {
        self.targets
            .iter()
            .map(|&t| t as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lists_roundtrip() {
        let adj = Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]);
        assert_eq!(adj.n_rows(), 3);
        assert_eq!(adj.n_edges(), 3);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.neighbors(1), &[] as &[u32]);
        assert_eq!(adj.neighbors(2), &[0]);
        assert_eq!(adj.degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_rejects_nonmonotone_offsets() {
        Adjacency::from_raw(vec![0, 3, 1], vec![0, 0, 0]);
    }

    #[test]
    fn max_target_bound_covers_all_targets() {
        let adj = Adjacency::from_lists(&[vec![5], vec![2, 9]]);
        assert_eq!(adj.max_target_bound(), 10);
    }
}

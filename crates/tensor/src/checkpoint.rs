//! Hand-rolled, dependency-free binary serialization for training state.
//!
//! The GRIMP workspace ships no serde; checkpoints are encoded with an
//! explicit little-endian byte codec instead. [`ByteWriter`] appends
//! fixed-width scalars, tensors (`rows`, `cols`, then row-major `f32` data)
//! and length-prefixed tensor lists; [`ByteReader`] decodes the same layout
//! and returns a typed [`CheckpointError`] — never a panic — on truncated or
//! corrupt input. Every length prefix is validated against the bytes
//! actually remaining before anything is allocated, so a corrupted prefix
//! cannot trigger an absurd allocation.
//!
//! Higher layers (the `grimp` core crate) compose these primitives into a
//! versioned checkpoint file with a magic header.

use std::error::Error;
use std::fmt;

use crate::optim::AdamState;
use crate::tensor::Tensor;

/// Why a checkpoint could not be read or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes — not a
    /// checkpoint, or one written by something else entirely.
    BadMagic,
    /// The file is a checkpoint, but from an unknown format version.
    UnsupportedVersion(u32),
    /// Structurally invalid payload (truncated, bad length prefix, ...).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a GRIMP checkpoint (bad magic header)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Little-endian append-only encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim (used for magic headers).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its little-endian bit pattern (NaN/Inf safe —
    /// checkpoints must round-trip non-finite sentinels like `f32::INFINITY`
    /// bit-exactly).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a tensor: `rows: u64`, `cols: u64`, then row-major data.
    pub fn tensor(&mut self, t: &Tensor) {
        self.u64(t.rows() as u64);
        self.u64(t.cols() as u64);
        for &x in t.as_slice() {
            self.f32(x);
        }
    }

    /// Append a length-prefixed tensor list.
    pub fn tensor_list(&mut self, ts: &[Tensor]) {
        self.u64(ts.len() as u64);
        for t in ts {
            self.tensor(t);
        }
    }

    /// Append Adam optimizer state: step counter plus both moment lists.
    pub fn adam_state(&mut self, s: &AdamState) {
        self.u32(s.t);
        self.tensor_list(&s.m);
        self.tensor_list(&s.v);
    }
}

/// Little-endian sequential decoder over a byte slice.
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Corrupt(format!(
                "truncated while reading {what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consume raw bytes (used for magic headers).
    pub fn raw(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        self.take(n, what)
    }

    /// Decode a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    /// Decode a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decode a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Decode a `u64` that must fit `usize` and describe no more data than
    /// remains in the buffer (each counted unit being ≥ `unit` bytes).
    fn checked_len(&mut self, unit: usize, what: &str) -> Result<usize, CheckpointError> {
        let raw = self.u64(what)?;
        let n = usize::try_from(raw)
            .map_err(|_| CheckpointError::Corrupt(format!("{what} count {raw} overflows usize")))?;
        if n.checked_mul(unit)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(CheckpointError::Corrupt(format!(
                "{what} count {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Decode an `f32` from its bit pattern.
    pub fn f32(&mut self, what: &str) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    /// Decode a tensor written by [`ByteWriter::tensor`].
    pub fn tensor(&mut self, what: &str) -> Result<Tensor, CheckpointError> {
        let rows = self.checked_len(1, what)?;
        let cols = self.checked_len(1, what)?;
        let len = rows.checked_mul(cols).ok_or_else(|| {
            CheckpointError::Corrupt(format!("{what} shape {rows}x{cols} overflows"))
        })?;
        if len
            .checked_mul(4)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(CheckpointError::Corrupt(format!(
                "{what} shape {rows}x{cols} exceeds remaining payload"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.f32(what)?);
        }
        Ok(Tensor::from_vec(rows, cols, data))
    }

    /// Decode a tensor list written by [`ByteWriter::tensor_list`].
    pub fn tensor_list(&mut self, what: &str) -> Result<Vec<Tensor>, CheckpointError> {
        // each tensor costs at least its 16-byte shape header
        let n = self.checked_len(16, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.tensor(what)?);
        }
        Ok(out)
    }

    /// Decode Adam state written by [`ByteWriter::adam_state`].
    pub fn adam_state(&mut self) -> Result<AdamState, CheckpointError> {
        let t = self.u32("adam step counter")?;
        let m = self.tensor_list("adam first moments")?;
        let v = self.tensor_list("adam second moments")?;
        if m.len() != v.len() {
            return Err(CheckpointError::Corrupt(format!(
                "adam moment lists disagree: {} first vs {} second",
                m.len(),
                v.len()
            )));
        }
        Ok(AdamState { t, m, v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(f32::NAN);
        w.f32(f32::INFINITY);
        w.f32(-0.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f32("d").unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(r.f32("e").unwrap(), f32::INFINITY);
        assert_eq!(r.f32("f").unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn tensor_list_roundtrip() {
        let ts = vec![
            Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.5, 0.0, 1e-30, 7.0]),
            Tensor::zeros(0, 0),
            Tensor::scalar(42.0),
        ];
        let mut w = ByteWriter::new();
        w.tensor_list(&ts);
        let bytes = w.into_bytes();
        let back = ByteReader::new(&bytes).tensor_list("ts").unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn adam_state_roundtrip() {
        let s = AdamState {
            t: 17,
            m: vec![Tensor::scalar(0.5), Tensor::zeros(0, 0)],
            v: vec![Tensor::scalar(0.25), Tensor::zeros(0, 0)],
        };
        let mut w = ByteWriter::new();
        w.adam_state(&s);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).adam_state().unwrap(), s);
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.tensor(&Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let err = ByteReader::new(&bytes).tensor("t").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2); // claimed tensor count
        let bytes = w.into_bytes();
        let err = ByteReader::new(&bytes).tensor_list("ts").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn mismatched_adam_moment_lists_are_rejected() {
        let mut w = ByteWriter::new();
        w.u32(1);
        w.tensor_list(&[Tensor::scalar(1.0)]);
        w.tensor_list(&[]);
        let bytes = w.into_bytes();
        let err = ByteReader::new(&bytes).adam_state().unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }
}

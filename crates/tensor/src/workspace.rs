//! Epoch-persistent buffer recycling for the training hot path.
//!
//! Every ephemeral tensor a [`crate::Tape`] produces during one epoch —
//! forward values, gradients, backward temporaries — is returned here by
//! `Tape::reset` instead of being freed. Buffers are parked in free lists
//! keyed by element count, so the next epoch (which replays the same
//! computation over the same shapes) acquires every buffer as a hit and the
//! steady state performs no heap allocation at all. The hit/miss counters
//! make that property observable and testable.
//!
//! The kernel backends (see [`crate::backend`]) follow the same grow-once
//! discipline outside this workspace: the parallel backend's thread pool is
//! spawned at backend creation and its per-chunk reduction scratch grows on
//! first use to a table-determined size, so from epoch 2 onward neither the
//! workspace nor the backend touches the allocator.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Allocation counters of a [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Acquisitions served from a free list (no allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently parked in the free lists.
    pub resident: usize,
    /// Total `f32` elements parked in the free lists.
    pub resident_elems: usize,
}

/// Cap on parked buffers per size class. A shape-stable epoch never comes
/// close (its working set is bounded by the live tensors of one step), but
/// callers that allocate fresh inputs every epoch would otherwise grow the
/// free lists without bound over a long training run.
const MAX_PER_CLASS: usize = 256;

/// Free lists of `f32` buffers keyed by element count.
#[derive(Debug)]
pub struct Workspace {
    free: HashMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
    recycling: bool,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// An empty workspace with recycling enabled.
    pub fn new() -> Self {
        Workspace {
            free: HashMap::new(),
            hits: 0,
            misses: 0,
            recycling: true,
        }
    }

    /// Toggle recycling. When off, every acquisition allocates fresh and
    /// [`Workspace::release`] drops its buffer — the pre-optimization
    /// allocation behavior, retained for the legacy benchmarking mode.
    pub fn set_recycling(&mut self, on: bool) {
        self.recycling = on;
        if !on {
            self.free.clear();
        }
    }

    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        self.free.get_mut(&len).and_then(Vec::pop)
    }

    /// A `rows × cols` tensor with unspecified contents (stale data from a
    /// previous life). The caller must overwrite every element.
    pub fn raw(&mut self, rows: usize, cols: usize) -> Tensor {
        let len = rows * cols;
        if len == 0 {
            return Tensor::zeros(rows, cols); // zero-length Vec: no allocation
        }
        match self.take(len) {
            Some(buf) => {
                self.hits += 1;
                Tensor::from_vec(rows, cols, buf)
            }
            None => {
                self.misses += 1;
                Tensor::zeros(rows, cols)
            }
        }
    }

    /// A `rows × cols` tensor with every element zeroed.
    pub fn zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut t = self.raw(rows, cols);
        t.as_mut_slice().fill(0.0);
        t
    }

    /// A recycled copy of `src`.
    pub fn copy_of(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.raw(src.rows(), src.cols());
        t.as_mut_slice().copy_from_slice(src.as_slice());
        t
    }

    /// Park a tensor's buffer for reuse by a same-sized acquisition.
    pub fn release(&mut self, t: Tensor) {
        if !self.recycling || t.is_empty() {
            return;
        }
        let buf = t.into_raw();
        let list = self.free.entry(buf.len()).or_default();
        if list.len() < MAX_PER_CLASS {
            list.push(buf);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> WorkspaceStats {
        let (mut resident, mut resident_elems) = (0usize, 0usize);
        for bufs in self.free.values() {
            resident += bufs.len();
            resident_elems += bufs.iter().map(Vec::len).sum::<usize>();
        }
        WorkspaceStats {
            hits: self.hits,
            misses: self.misses,
            resident,
            resident_elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_acquisition_of_a_shape_is_a_hit() {
        let mut ws = Workspace::new();
        let t = ws.zeroed(3, 4);
        assert_eq!(ws.stats().misses, 1);
        ws.release(t);
        assert_eq!(ws.stats().resident, 1);
        let t2 = ws.zeroed(3, 4);
        assert_eq!(t2.shape(), (3, 4));
        assert!(t2.as_slice().iter().all(|&v| v == 0.0));
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 0));
    }

    #[test]
    fn buffers_are_shared_across_shapes_of_equal_len() {
        let mut ws = Workspace::new();
        let t = ws.raw(2, 6);
        ws.release(t);
        let _t2 = ws.raw(4, 3); // 12 elements either way
        assert_eq!(ws.stats().hits, 1);
    }

    #[test]
    fn recycling_off_always_allocates_and_drops() {
        let mut ws = Workspace::new();
        ws.set_recycling(false);
        let t = ws.zeroed(2, 2);
        ws.release(t);
        assert_eq!(ws.stats().resident, 0);
        let _t = ws.zeroed(2, 2);
        assert_eq!(ws.stats().misses, 2);
    }

    #[test]
    fn copy_of_duplicates_contents() {
        let mut ws = Workspace::new();
        let src = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let dup = ws.copy_of(&src);
        assert_eq!(dup, src);
    }

    #[test]
    fn zero_length_tensors_bypass_the_free_lists() {
        let mut ws = Workspace::new();
        let t = ws.raw(0, 5);
        ws.release(t);
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.resident), (0, 0, 0));
    }
}

//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an arena of [`Node`]s. Model parameters are registered
//! first ([`Tape::param`]), the boundary is sealed with [`Tape::freeze`], and
//! every training step then appends ephemeral forward nodes, calls
//! [`Tape::backward`] on the scalar loss, lets the optimizer consume the
//! parameter gradients, and finally calls [`Tape::reset`] which truncates the
//! arena back to the parameters. This keeps allocations stable across epochs
//! and avoids any closure-based backward machinery: each op's backward rule
//! is a match arm over [`Op`].
//!
//! ## The hot-path workspace
//!
//! Every ephemeral tensor — forward values, gradients, backward temporaries —
//! is drawn from an epoch-persistent [`crate::Workspace`] and returned to it
//! by [`Tape::reset`]. Because consecutive epochs replay the same computation
//! over the same shapes, the second and later epochs run entirely out of the
//! free lists: zero heap allocation in steady state, observable through
//! [`Tape::workspace_stats`].

use std::rc::Rc;

use crate::adjacency::Adjacency;
use crate::backend::{
    make_backend, scatter_mean_rows, softmax_row_in_place, streamed_softmax_prob, BackendKind,
    TensorBackend,
};
use crate::tensor::Tensor;
use crate::workspace::{Workspace, WorkspaceStats};

/// Probability clamp used by the focal loss in **both** the forward and the
/// backward pass. The lower bound guards `ln(0)` and division by zero; the
/// upper bound keeps `1 - p_t` away from exact zero so a saturated correct
/// prediction still yields a tiny positive loss and a finite gradient instead
/// of a forward loss of exactly zero that the (clamped) backward pass would
/// contradict.
const FOCAL_P_MIN: f32 = 1e-12;
const FOCAL_P_MAX: f32 = 1.0 - 1e-7;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(u32);

impl Var {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }

    /// Handle for the node at position `i` on its tape. Only meaningful for
    /// indices below [`Tape::param_count`] (used by optimizers to walk the
    /// parameter section).
    #[inline]
    pub fn from_index(i: usize) -> Var {
        Var(u32::try_from(i).expect("tape node index fits u32"))
    }
}

/// The operation that produced a node; encodes the backward rule.
#[derive(Debug)]
enum Op {
    /// Leaf node: parameter (grads tracked) or constant input.
    Leaf,
    /// `A · B`.
    MatMul(Var, Var),
    /// Elementwise `A + B` of identical shapes.
    Add(Var, Var),
    /// `A + b` where `b` is a `1 × cols` row broadcast over the rows of `A`.
    AddRowBroadcast(Var, Var),
    /// Elementwise `A - B`.
    Sub(Var, Var),
    /// Elementwise Hadamard product.
    MulElem(Var, Var),
    /// `k · A`.
    Scale(Var, f32),
    /// Elementwise sum of several identically shaped inputs.
    AddN(Vec<Var>),
    /// Rectified linear unit.
    Relu(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// `out[i] = a[idx[i]]` row gather (embedding lookup).
    GatherRows(Var, Rc<Vec<u32>>),
    /// `out[i] = mean of a[j] over j ∈ adj(i)`; zero row when degree 0.
    ScatterMean(Var, Rc<Adjacency>),
    /// `out[i] = Σ_j w[e] · a[j]` over edges `e = (i, j)` of the adjacency,
    /// with one constant weight per CSR target entry (GCN-style normalized
    /// aggregation).
    ScatterWeighted(Var, Rc<Adjacency>, Rc<Vec<f32>>),
    /// Horizontal concatenation of matrices with equal row counts.
    ConcatCols(Vec<Var>),
    /// Column slice `a[:, start..end]`.
    SliceCols(Var, usize, usize),
    /// Shape reinterpretation (data order unchanged).
    Reshape(Var),
    /// Sum of all elements, producing a `1 × 1` tensor.
    SumAll(Var),
    /// Mean of all elements, producing a `1 × 1` tensor.
    MeanAll(Var),
    /// Row-wise softmax.
    RowSoftmax(Var),
    /// `out[n] = Σ_c alpha[n, c] · v[n·C + c, :]` — batched attention
    /// read-out over blocks of `C` rows.
    BlockWeightedSum { v: Var, alpha: Var },
    /// Mean softmax cross-entropy over rows of logits against class indices.
    SoftmaxCrossEntropy { logits: Var, targets: Rc<Vec<u32>> },
    /// Mean focal loss `-(1 - p_t)^γ · log p_t` over rows of logits.
    FocalLoss {
        logits: Var,
        targets: Rc<Vec<u32>>,
        gamma: f32,
    },
    /// Mean squared error of an `N × 1` prediction column against targets.
    MseLoss { pred: Var, targets: Rc<Vec<f32>> },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    needs_grad: bool,
}

/// Timing and work counters for the most recent [`Tape::backward`] call.
/// Cheap to maintain (two clock reads and one counter per sweep) so they
/// are always on; observability layers read them after each backward pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BackwardStats {
    /// Nodes whose gradients were actually propagated (nodes without a
    /// gradient or not requiring one are skipped and not counted).
    pub nodes_visited: u64,
    /// Wall-clock duration of the reverse sweep, in seconds.
    pub seconds: f64,
}

/// Reverse-mode autodiff tape.
pub struct Tape {
    nodes: Vec<Node>,
    frozen_at: Option<u32>,
    ws: Workspace,
    /// Recycled `Vec<Var>` backing stores for [`Op::AddN`]/[`Op::ConcatCols`].
    var_lists: Vec<Vec<Var>>,
    /// Pre-optimization behavior: allocate fresh per op, reference GEMM
    /// kernels, no buffer recycling. Kept for honest speedup baselines.
    legacy: bool,
    /// Execution backend for the hot-path kernels (serial by default).
    backend: Box<dyn TensorBackend>,
    /// Counters of the most recent backward sweep.
    last_backward: BackwardStats,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            frozen_at: None,
            ws: Workspace::new(),
            var_lists: Vec::new(),
            legacy: false,
            backend: make_backend(BackendKind::Serial),
            last_backward: BackwardStats::default(),
        }
    }

    /// Work counters of the most recent [`Tape::backward`] call.
    pub fn last_backward_stats(&self) -> BackwardStats {
        self.last_backward
    }

    /// Switch between the optimized hot path (default) and the legacy
    /// pre-optimization behavior (reference GEMM kernels, fresh allocation
    /// per ephemeral tensor). Must be called before any node is pushed.
    ///
    /// # Panics
    /// Panics if the tape already holds nodes.
    pub fn set_legacy_mode(&mut self, on: bool) {
        assert!(
            self.nodes.is_empty(),
            "set_legacy_mode requires an empty tape"
        );
        self.legacy = on;
        self.ws.set_recycling(!on);
    }

    /// Select the execution backend for the hot-path kernels. Backends are
    /// bit-identical to each other by contract (see [`crate::backend`]), so
    /// this changes wall-clock time, never results. Must be called before
    /// any node is pushed; the legacy mode ignores the backend and always
    /// runs the reference kernels.
    ///
    /// # Panics
    /// Panics if the tape already holds nodes.
    pub fn set_backend(&mut self, kind: BackendKind) {
        assert!(self.nodes.is_empty(), "set_backend requires an empty tape");
        self.backend = make_backend(kind);
    }

    /// The kind of the active kernel backend.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Allocation counters of the internal buffer workspace. After the first
    /// epoch of a shape-stable training loop the miss counter stops moving —
    /// the property the hot-path tests and the benchmark probe assert.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        let id = u32::try_from(self.nodes.len()).expect("tape node count fits u32");
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        Var(id)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.idx()].needs_grad
    }

    fn any_needs(&self, vars: &[Var]) -> bool {
        vars.iter().any(|&v| self.needs(v))
    }

    /// A workspace copy of a node's value.
    fn ws_copy(&mut self, v: Var) -> Tensor {
        self.ws.copy_of(&self.nodes[v.idx()].value)
    }

    /// A workspace tensor holding `f` applied elementwise to a node's value.
    fn ws_map(&mut self, v: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let (rows, cols) = self.nodes[v.idx()].value.shape();
        let mut out = self.ws.raw(rows, cols);
        for (o, &x) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[v.idx()].value.as_slice())
        {
            *o = f(x);
        }
        out
    }

    /// A `1 × 1` workspace tensor holding `v`.
    fn ws_scalar(&mut self, v: f32) -> Tensor {
        let mut out = self.ws.raw(1, 1);
        out.as_mut_slice()[0] = v;
        out
    }

    /// A recycled `Vec<Var>` pre-filled with `src` (for [`Op::AddN`] and
    /// [`Op::ConcatCols`], whose var lists would otherwise allocate each
    /// epoch).
    fn take_var_list(&mut self, src: &[Var]) -> Vec<Var> {
        let mut list = self.var_lists.pop().unwrap_or_default();
        list.extend_from_slice(src);
        list
    }

    /// Register a trainable parameter. Must be called before [`Tape::freeze`].
    ///
    /// # Panics
    /// Panics if the tape is already frozen.
    pub fn param(&mut self, value: Tensor) -> Var {
        assert!(
            self.frozen_at.is_none(),
            "cannot add parameters to a frozen tape"
        );
        self.push(value, Op::Leaf, true)
    }

    /// Seal the parameter section; later [`Tape::reset`] calls truncate here.
    pub fn freeze(&mut self) {
        assert!(self.frozen_at.is_none(), "tape already frozen");
        self.frozen_at = Some(self.nodes.len() as u32);
    }

    /// Number of nodes in the persistent (pre-freeze) section. These survive
    /// [`Tape::reset`]; optimizers walk this range and skip entries without a
    /// gradient, so persistent constant inputs registered before freezing are
    /// harmless here.
    pub fn param_count(&self) -> usize {
        self.frozen_at
            .map(|b| b as usize)
            .unwrap_or(self.nodes.len())
    }

    /// Total number of f32 values across all trainable parameters
    /// (persistent constant inputs are excluded).
    pub fn total_param_elems(&self) -> usize {
        self.nodes[..self.param_count()]
            .iter()
            .filter(|n| n.needs_grad)
            .map(|n| n.value.len())
            .sum()
    }

    /// Drop all ephemeral nodes and clear parameter gradients. Ephemeral
    /// values, gradients and op var-lists are recycled into the workspace for
    /// the next epoch.
    pub fn reset(&mut self) {
        let boundary = self.frozen_at.expect("reset requires a frozen tape") as usize;
        while self.nodes.len() > boundary {
            let node = self.nodes.pop().expect("length checked above");
            self.ws.release(node.value);
            if let Some(g) = node.grad {
                self.ws.release(g);
            }
            if let Op::AddN(mut list) | Op::ConcatCols(mut list) = node.op {
                list.clear();
                self.var_lists.push(list);
            }
        }
        for node in &mut self.nodes[..boundary] {
            if let Some(g) = node.grad.take() {
                self.ws.release(g);
            }
        }
    }

    /// Add a constant (non-differentiable) input tensor. Registered before
    /// [`Tape::freeze`], the input is persistent: it survives [`Tape::reset`]
    /// and can be reused across epochs without cloning.
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.idx()].value
    }

    /// Mutable value of a node (used by optimizers to update parameters).
    pub fn value_mut(&mut self, v: Var) -> &mut Tensor {
        &mut self.nodes[v.idx()].value
    }

    /// Whether a node is a trainable parameter (as opposed to a persistent
    /// constant input or an ephemeral forward node).
    pub fn is_trainable(&self, v: Var) -> bool {
        self.nodes[v.idx()].needs_grad
    }

    // ---- robustness / fault-tolerance primitives --------------------------

    /// Global L2 norm over every parameter gradient produced by the latest
    /// [`Tape::backward`]. Accumulates in `f64` so the squared sum does not
    /// overflow `f32`. Returns `0.0` when no parameter has a gradient; the
    /// result is non-finite if and only if some gradient element is.
    pub fn global_grad_norm(&self) -> f64 {
        let mut sq = 0.0f64;
        for node in &self.nodes[..self.param_count()] {
            if !node.needs_grad {
                continue;
            }
            if let Some(g) = &node.grad {
                for &x in g.as_slice() {
                    let x = f64::from(x);
                    sq += x * x;
                }
            }
        }
        sq.sqrt()
    }

    /// Multiply every parameter gradient by `factor` in place — the second
    /// half of global-norm clipping (`factor = max_norm / norm`).
    pub fn scale_param_grads(&mut self, factor: f32) {
        let boundary = self.param_count();
        for node in &mut self.nodes[..boundary] {
            if !node.needs_grad {
                continue;
            }
            if let Some(g) = &mut node.grad {
                for x in g.as_mut_slice() {
                    *x *= factor;
                }
            }
        }
    }

    /// `true` when every trainable parameter value is finite — the post-step
    /// divergence check.
    pub fn params_all_finite(&self) -> bool {
        self.nodes[..self.param_count()]
            .iter()
            .filter(|n| n.needs_grad)
            .all(|n| n.value.all_finite())
    }

    /// Copies of every trainable parameter value, in registration order —
    /// the payload of a training checkpoint.
    pub fn snapshot_param_values(&self) -> Vec<Tensor> {
        self.nodes[..self.param_count()]
            .iter()
            .filter(|n| n.needs_grad)
            .map(|n| n.value.clone())
            .collect()
    }

    /// Re-capture trainable parameter values into an existing snapshot
    /// without allocating (buffers are reused when shapes match). An empty
    /// `out` is filled as by [`Tape::snapshot_param_values`].
    pub fn snapshot_param_values_into(&self, out: &mut Vec<Tensor>) {
        if out.is_empty() {
            *out = self.snapshot_param_values();
            return;
        }
        let mut it = out.iter_mut();
        for node in self.nodes[..self.param_count()]
            .iter()
            .filter(|n| n.needs_grad)
        {
            let dst = it
                .next()
                .expect("invariant: snapshot length matches trainable parameter count");
            if dst.shape() == node.value.shape() {
                dst.as_mut_slice().copy_from_slice(node.value.as_slice());
            } else {
                *dst = node.value.clone();
            }
        }
        assert!(
            it.next().is_none(),
            "invariant: snapshot length matches trainable parameter count"
        );
    }

    /// Overwrite every trainable parameter with values from a snapshot taken
    /// by [`Tape::snapshot_param_values`] on an identically shaped tape.
    ///
    /// # Panics
    /// Panics when the snapshot's tensor count or shapes do not match.
    pub fn restore_param_values(&mut self, snapshot: &[Tensor]) {
        let boundary = self.frozen_at.map_or(self.nodes.len(), |b| b as usize);
        let mut it = snapshot.iter();
        for node in self.nodes[..boundary].iter_mut().filter(|n| n.needs_grad) {
            let src = it
                .next()
                .expect("invariant: snapshot length matches trainable parameter count");
            assert_eq!(
                src.shape(),
                node.value.shape(),
                "invariant: snapshot shapes match tape parameters"
            );
            node.value.as_mut_slice().copy_from_slice(src.as_slice());
        }
        assert!(
            it.next().is_none(),
            "invariant: snapshot length matches trainable parameter count"
        );
    }

    /// Gradient accumulated for a node by the latest [`Tape::backward`].
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.idx()].grad.as_ref()
    }

    /// Mutable gradient of a node, when the latest [`Tape::backward`]
    /// produced one (used by the fault-injection harness to corrupt a
    /// gradient in place).
    pub fn grad_mut(&mut self, v: Var) -> Option<&mut Tensor> {
        self.nodes[v.idx()].grad.as_mut()
    }

    /// Split borrow of a node's gradient (shared) and value (mutable), so an
    /// optimizer can apply an update in one pass without cloning the
    /// gradient.
    pub fn grad_and_value_mut(&mut self, v: Var) -> (Option<&Tensor>, &mut Tensor) {
        let node = &mut self.nodes[v.idx()];
        (node.grad.as_ref(), &mut node.value)
    }

    // ---- forward ops ------------------------------------------------------

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = if self.legacy {
            self.value(a).matmul_ref(self.value(b))
        } else {
            let (m, _) = self.nodes[a.idx()].value.shape();
            let n = self.nodes[b.idx()].value.cols();
            let mut out = self.ws.raw(m, n);
            self.backend
                .matmul_into(self.value(a), self.value(b), &mut out);
            out
        };
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::MatMul(a, b), ng)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "add shape mismatch"
        );
        let mut value = self.ws_copy(a);
        value.add_assign(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::Add(a, b), ng)
    }

    /// `a + bias` broadcasting the `1 × cols` bias row over `a`'s rows.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, cols), "bias must be 1 x cols");
        let mut value = self.ws_copy(a);
        let b = self.nodes[bias.idx()].value.as_slice();
        for r in 0..rows {
            for (o, &bv) in value.row_slice_mut(r).iter_mut().zip(b) {
                *o += bv;
            }
        }
        let ng = self.any_needs(&[a, bias]);
        self.push(value, Op::AddRowBroadcast(a, bias), ng)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "sub shape mismatch"
        );
        let mut value = self.ws_copy(a);
        value.add_scaled(self.value(b), -1.0);
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::Sub(a, b), ng)
    }

    /// Elementwise Hadamard product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "mul shape mismatch"
        );
        let mut value = self.ws_copy(a);
        for (x, &bv) in value
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[b.idx()].value.as_slice())
        {
            *x *= bv;
        }
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::MulElem(a, b), ng)
    }

    /// `k · a`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let value = self.ws_map(a, |v| v * k);
        let ng = self.needs(a);
        self.push(value, Op::Scale(a, k), ng)
    }

    /// Elementwise sum of identically shaped inputs.
    ///
    /// # Panics
    /// Panics on an empty input list or mismatched shapes.
    pub fn add_n(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "add_n requires at least one input");
        let mut value = self.ws_copy(vars[0]);
        for &v in &vars[1..] {
            value.add_assign(self.value(v));
        }
        let ng = self.any_needs(vars);
        let list = self.take_var_list(vars);
        self.push(value, Op::AddN(list), ng)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.ws_map(a, |v| v.max(0.0));
        let ng = self.needs(a);
        self.push(value, Op::Relu(a), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.ws_map(a, f32::tanh);
        let ng = self.needs(a);
        self.push(value, Op::Tanh(a), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.ws_map(a, |v| 1.0 / (1.0 + (-v).exp()));
        let ng = self.needs(a);
        self.push(value, Op::Sigmoid(a), ng)
    }

    /// Row gather: `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: Var, idx: Rc<Vec<u32>>) -> Var {
        let cols = self.nodes[a.idx()].value.cols();
        let mut value = self.ws.raw(idx.len(), cols);
        let src = &self.nodes[a.idx()].value;
        for (i, &j) in idx.iter().enumerate() {
            value
                .row_slice_mut(i)
                .copy_from_slice(src.row_slice(j as usize));
        }
        let ng = self.needs(a);
        self.push(value, Op::GatherRows(a, idx), ng)
    }

    /// Neighborhood mean: `out[i] = mean_{j ∈ adj(i)} a[j]`, zero when
    /// `adj(i)` is empty.
    pub fn scatter_mean(&mut self, a: Var, adj: Rc<Adjacency>) -> Var {
        let src = self.value(a);
        assert!(
            adj.max_target_bound() <= src.rows(),
            "adjacency references row beyond input ({} > {})",
            adj.max_target_bound(),
            src.rows()
        );
        let cols = src.cols();
        let mut value = self.ws.raw(adj.n_rows(), cols);
        self.backend
            .scatter_mean_into(&self.nodes[a.idx()].value, &adj, &mut value);
        let ng = self.needs(a);
        self.push(value, Op::ScatterMean(a, adj), ng)
    }

    /// Weighted neighborhood sum: `out[i] = Σ w[e] · a[j]` over the
    /// adjacency's edges `(i, j)`, with `weights` aligned to the CSR target
    /// array (one weight per stored edge). The weights are constants (no
    /// gradient), which is exactly what GCN's fixed symmetric normalization
    /// needs.
    ///
    /// # Panics
    /// Panics when `weights.len() != adj.n_edges()`.
    pub fn scatter_weighted(&mut self, a: Var, adj: Rc<Adjacency>, weights: Rc<Vec<f32>>) -> Var {
        let src = self.value(a);
        assert_eq!(
            weights.len(),
            adj.n_edges(),
            "one weight per adjacency edge"
        );
        assert!(
            adj.max_target_bound() <= src.rows(),
            "adjacency references row beyond input"
        );
        let cols = src.cols();
        let mut value = self.ws.raw(adj.n_rows(), cols);
        scatter_weighted_into(&self.nodes[a.idx()].value, &adj, &weights, &mut value);
        let ng = self.needs(a);
        self.push(value, Op::ScatterWeighted(a, adj, weights), ng)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_cols requires at least one input");
        let rows = self.value(vars[0]).rows();
        let total_cols: usize = vars.iter().map(|&v| self.value(v).cols()).sum();
        let mut value = self.ws.raw(rows, total_cols);
        let mut offset = 0;
        for &v in vars {
            let t = &self.nodes[v.idx()].value;
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            let c = t.cols();
            for r in 0..rows {
                value.row_slice_mut(r)[offset..offset + c].copy_from_slice(t.row_slice(r));
            }
            offset += c;
        }
        let ng = self.any_needs(vars);
        let list = self.take_var_list(vars);
        self.push(value, Op::ConcatCols(list), ng)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, src_cols) = self.nodes[a.idx()].value.shape();
        assert!(start <= end && end <= src_cols, "slice out of bounds");
        let mut value = self.ws.raw(rows, end - start);
        let src = &self.nodes[a.idx()].value;
        for r in 0..rows {
            value
                .row_slice_mut(r)
                .copy_from_slice(&src.row_slice(r)[start..end]);
        }
        let ng = self.needs(a);
        self.push(value, Op::SliceCols(a, start, end), ng)
    }

    /// Shape reinterpretation preserving element order.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let value = self.ws_copy(a).into_reshaped(rows, cols);
        let ng = self.needs(a);
        self.push(value, Op::Reshape(a), ng)
    }

    /// Sum of all elements as a `1 × 1` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.value(a).sum();
        let value = self.ws_scalar(s);
        let ng = self.needs(a);
        self.push(value, Op::SumAll(a), ng)
    }

    /// Mean of all elements as a `1 × 1` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let m = t.sum() / t.len() as f32;
        let value = self.ws_scalar(m);
        let ng = self.needs(a);
        self.push(value, Op::MeanAll(a), ng)
    }

    /// Row-wise numerically stable softmax.
    pub fn row_softmax(&mut self, a: Var) -> Var {
        let mut value = self.ws_copy(a);
        softmax_rows_in_place(&mut value);
        let ng = self.needs(a);
        self.push(value, Op::RowSoftmax(a), ng)
    }

    /// Batched attention read-out: with `v` of shape `(N·C) × D` and `alpha`
    /// of shape `N × C`, produces `out` of shape `N × D` with
    /// `out[n] = Σ_c alpha[n, c] · v[n·C + c, :]`.
    pub fn block_weighted_sum(&mut self, v: Var, alpha: Var) -> Var {
        let (n, c) = self.value(alpha).shape();
        let (vc_rows, d) = self.value(v).shape();
        assert_eq!(vc_rows, n * c, "v rows must equal alpha rows x cols");
        let mut value = self.ws.raw(n, d);
        block_weighted_sum_into(
            &self.nodes[v.idx()].value,
            &self.nodes[alpha.idx()].value,
            &mut value,
        );
        let ng = self.any_needs(&[v, alpha]);
        self.push(value, Op::BlockWeightedSum { v, alpha }, ng)
    }

    /// Mean softmax cross-entropy of `logits` (`N × K`) against class
    /// indices `targets` (`len N`, each `< K`). The forward pass streams
    /// per-row max/sum-exp and never materializes the probability matrix;
    /// the target probability is clamped to `CE_P_MIN` (with the backward
    /// pass zeroing the gradient of rows the clamp flattens — see
    /// [`crate::backend`]).
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: Rc<Vec<u32>>) -> Var {
        let lt = &self.nodes[logits.idx()].value;
        assert_eq!(lt.rows(), targets.len(), "one target per logits row");
        let loss = self.backend.softmax_ce_loss(lt, &targets);
        let value = self.ws_scalar((loss / targets.len() as f64) as f32);
        let ng = self.needs(logits);
        self.push(value, Op::SoftmaxCrossEntropy { logits, targets }, ng)
    }

    /// Mean focal loss `-(1 - p_t)^γ log p_t` against class indices, with
    /// `p_t` clamped to the same range the backward pass uses.
    pub fn focal_loss(&mut self, logits: Var, targets: Rc<Vec<u32>>, gamma: f32) -> Var {
        let lt = &self.nodes[logits.idx()].value;
        assert_eq!(lt.rows(), targets.len(), "one target per logits row");
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let p =
                streamed_softmax_prob(lt.row_slice(i), t as usize).clamp(FOCAL_P_MIN, FOCAL_P_MAX);
            loss -= f64::from((1.0 - p).powf(gamma) * p.ln());
        }
        let value = self.ws_scalar((loss / targets.len() as f64) as f32);
        let ng = self.needs(logits);
        self.push(
            value,
            Op::FocalLoss {
                logits,
                targets,
                gamma,
            },
            ng,
        )
    }

    /// Mean squared error of an `N × 1` prediction column against targets.
    pub fn mse_loss(&mut self, pred: Var, targets: Rc<Vec<f32>>) -> Var {
        let pt = self.value(pred);
        assert_eq!(pt.shape(), (targets.len(), 1), "pred must be N x 1");
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let d = f64::from(pt.get(i, 0) - t);
            loss += d * d;
        }
        let value = self.ws_scalar((loss / targets.len().max(1) as f64) as f32);
        let ng = self.needs(pred);
        self.push(value, Op::MseLoss { pred, targets }, ng)
    }

    // ---- backward ---------------------------------------------------------

    fn accumulate(&mut self, v: Var, delta: Tensor) {
        if !self.needs(v) {
            self.ws.release(delta);
            return;
        }
        let node = &mut self.nodes[v.idx()];
        match &mut node.grad {
            Some(g) => {
                g.add_assign(&delta);
                self.ws.release(delta);
            }
            None => node.grad = Some(delta),
        }
    }

    /// Run reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        let started = std::time::Instant::now();
        let mut visited = 0u64;
        let seed = self.ws_scalar(1.0);
        if let Some(old) = self.nodes[loss.idx()].grad.replace(seed) {
            self.ws.release(old);
        }
        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].needs_grad || self.nodes[i].grad.is_none() {
                continue;
            }
            visited += 1;
            if self.legacy {
                // The pre-optimization sweep cloned the node's gradient
                // before dispatching; keep that cost in the baseline.
                let grad = self.nodes[i].grad.clone().expect("presence checked above");
                let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
                self.backprop_one(Var(i as u32), &grad, &op);
                self.nodes[i].op = op;
                continue;
            }
            // Detach the gradient and op so the backward arm can borrow the
            // rest of the tape freely without cloning either; both are
            // restored below so `Tape::grad` keeps working after backward.
            let grad = self.nodes[i].grad.take().expect("presence checked above");
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.backprop_one(Var(i as u32), &grad, &op);
            self.nodes[i].grad = Some(grad);
            self.nodes[i].op = op;
        }
        self.last_backward = BackwardStats {
            nodes_visited: visited,
            seconds: started.elapsed().as_secs_f64(),
        };
    }

    fn backprop_one(&mut self, out: Var, grad: &Tensor, op: &Op) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.needs(*a) {
                    let da = if self.legacy {
                        grad.matmul_nt_ref(&self.nodes[b.idx()].value)
                    } else {
                        let mut da = self.ws.raw(grad.rows(), self.nodes[b.idx()].value.rows());
                        self.backend
                            .matmul_nt_into(grad, &self.nodes[b.idx()].value, &mut da);
                        da
                    };
                    self.accumulate(*a, da);
                }
                if self.needs(*b) {
                    let db = if self.legacy {
                        self.nodes[a.idx()].value.matmul_tn_ref(grad)
                    } else {
                        let mut db = self.ws.raw(self.nodes[a.idx()].value.cols(), grad.cols());
                        self.backend
                            .matmul_tn_into(&self.nodes[a.idx()].value, grad, &mut db);
                        db
                    };
                    self.accumulate(*b, db);
                }
            }
            Op::Add(a, b) => {
                if self.needs(*a) {
                    let da = self.ws.copy_of(grad);
                    self.accumulate(*a, da);
                }
                if self.needs(*b) {
                    let db = self.ws.copy_of(grad);
                    self.accumulate(*b, db);
                }
            }
            Op::AddRowBroadcast(a, bias) => {
                if self.needs(*a) {
                    let da = self.ws.copy_of(grad);
                    self.accumulate(*a, da);
                }
                if self.needs(*bias) {
                    let cols = grad.cols();
                    let mut db = self.ws.zeroed(1, cols);
                    for r in 0..grad.rows() {
                        for (o, &g) in db.as_mut_slice().iter_mut().zip(grad.row_slice(r)) {
                            *o += g;
                        }
                    }
                    self.accumulate(*bias, db);
                }
            }
            Op::Sub(a, b) => {
                if self.needs(*a) {
                    let da = self.ws.copy_of(grad);
                    self.accumulate(*a, da);
                }
                if self.needs(*b) {
                    let mut db = self.ws.copy_of(grad);
                    for g in db.as_mut_slice() {
                        *g = -*g;
                    }
                    self.accumulate(*b, db);
                }
            }
            Op::MulElem(a, b) => {
                if self.needs(*a) {
                    let mut da = self.ws.copy_of(grad);
                    if self.legacy {
                        // The pre-optimization rule snapshotted the operand
                        // with `to_vec()`; keep that cost in the baseline.
                        let bv = self.nodes[b.idx()].value.as_slice().to_vec();
                        for (g, &bv) in da.as_mut_slice().iter_mut().zip(&bv) {
                            *g *= bv;
                        }
                    } else {
                        for (g, &bv) in da
                            .as_mut_slice()
                            .iter_mut()
                            .zip(self.nodes[b.idx()].value.as_slice())
                        {
                            *g *= bv;
                        }
                    }
                    self.accumulate(*a, da);
                }
                if self.needs(*b) {
                    let mut db = self.ws.copy_of(grad);
                    if self.legacy {
                        let av = self.nodes[a.idx()].value.as_slice().to_vec();
                        for (g, &av) in db.as_mut_slice().iter_mut().zip(&av) {
                            *g *= av;
                        }
                    } else {
                        for (g, &av) in db
                            .as_mut_slice()
                            .iter_mut()
                            .zip(self.nodes[a.idx()].value.as_slice())
                        {
                            *g *= av;
                        }
                    }
                    self.accumulate(*b, db);
                }
            }
            Op::Scale(a, k) => {
                if self.needs(*a) {
                    let k = *k;
                    let mut da = self.ws.copy_of(grad);
                    for g in da.as_mut_slice() {
                        *g *= k;
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::AddN(vars) => {
                for &v in vars {
                    if self.needs(v) {
                        let dv = self.ws.copy_of(grad);
                        self.accumulate(v, dv);
                    }
                }
            }
            Op::Relu(a) => {
                if self.needs(*a) {
                    let mut da = self.ws.copy_of(grad);
                    for (g, &o) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[out.idx()].value.as_slice())
                    {
                        *g *= if o > 0.0 { 1.0 } else { 0.0 };
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::Tanh(a) => {
                if self.needs(*a) {
                    let mut da = self.ws.copy_of(grad);
                    for (g, &o) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[out.idx()].value.as_slice())
                    {
                        *g *= 1.0 - o * o;
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::Sigmoid(a) => {
                if self.needs(*a) {
                    let mut da = self.ws.copy_of(grad);
                    for (g, &o) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[out.idx()].value.as_slice())
                    {
                        *g *= o * (1.0 - o);
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::GatherRows(a, idx) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let mut da = self.ws.zeroed(rows, cols);
                    for (i, &j) in idx.iter().enumerate() {
                        let dst = da.row_slice_mut(j as usize);
                        for (o, &g) in dst.iter_mut().zip(grad.row_slice(i)) {
                            *o += g;
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::ScatterMean(a, adj) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let mut da = self.ws.zeroed(rows, cols);
                    for i in 0..adj.n_rows() {
                        let neigh = adj.neighbors(i);
                        if neigh.is_empty() {
                            continue;
                        }
                        let inv = 1.0 / neigh.len() as f32;
                        for &j in neigh {
                            let dst = da.row_slice_mut(j as usize);
                            for (o, &g) in dst.iter_mut().zip(grad.row_slice(i)) {
                                *o += g * inv;
                            }
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::ScatterWeighted(a, adj, weights) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let mut da = self.ws.zeroed(rows, cols);
                    let mut e = 0usize;
                    for i in 0..adj.n_rows() {
                        for &j in adj.neighbors(i) {
                            let w = weights[e];
                            e += 1;
                            let dst = da.row_slice_mut(j as usize);
                            for (o, &g) in dst.iter_mut().zip(grad.row_slice(i)) {
                                *o += w * g;
                            }
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::ConcatCols(vars) => {
                let mut offset = 0;
                for &v in vars {
                    let c = self.nodes[v.idx()].value.cols();
                    if self.needs(v) {
                        let rows = grad.rows();
                        let mut dv = self.ws.raw(rows, c);
                        for r in 0..rows {
                            dv.row_slice_mut(r)
                                .copy_from_slice(&grad.row_slice(r)[offset..offset + c]);
                        }
                        self.accumulate(v, dv);
                    }
                    offset += c;
                }
            }
            Op::SliceCols(a, start, _end) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let mut da = self.ws.zeroed(rows, cols);
                    for r in 0..rows {
                        let g = grad.row_slice(r);
                        da.row_slice_mut(r)[*start..*start + g.len()].copy_from_slice(g);
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::Reshape(a) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let da = self.ws.copy_of(grad).into_reshaped(rows, cols);
                    self.accumulate(*a, da);
                }
            }
            Op::SumAll(a) => {
                if self.needs(*a) {
                    let g = grad.item();
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let mut da = self.ws.raw(rows, cols);
                    da.as_mut_slice().fill(g);
                    self.accumulate(*a, da);
                }
            }
            Op::MeanAll(a) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[a.idx()].value.shape();
                    let g = grad.item() / (rows * cols) as f32;
                    let mut da = self.ws.raw(rows, cols);
                    da.as_mut_slice().fill(g);
                    self.accumulate(*a, da);
                }
            }
            Op::RowSoftmax(a) => {
                if self.needs(*a) {
                    let (rows, cols) = self.nodes[out.idx()].value.shape();
                    let mut da = self.ws.raw(rows, cols);
                    let outv = &self.nodes[out.idx()].value;
                    for r in 0..rows {
                        let s = outv.row_slice(r);
                        let g = grad.row_slice(r);
                        let dot: f32 = s.iter().zip(g).map(|(&si, &gi)| si * gi).sum();
                        for ((o, &si), &gi) in da.row_slice_mut(r).iter_mut().zip(s).zip(g) {
                            *o = si * (gi - dot);
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::BlockWeightedSum { v, alpha } => {
                let (n, c) = self.nodes[alpha.idx()].value.shape();
                let d = self.nodes[v.idx()].value.cols();
                if self.needs(*v) {
                    // Every row n·C + c is written by exactly one (n, c)
                    // pair, so the buffer is fully overwritten — and the
                    // weight is applied unconditionally (no zero-skip).
                    let mut dv = self.ws.raw(n * c, d);
                    let at = &self.nodes[alpha.idx()].value;
                    for ni in 0..n {
                        let g = grad.row_slice(ni);
                        for ci in 0..c {
                            let w = at.get(ni, ci);
                            for (o, &gi) in dv.row_slice_mut(ni * c + ci).iter_mut().zip(g) {
                                *o = w * gi;
                            }
                        }
                    }
                    self.accumulate(*v, dv);
                }
                if self.needs(*alpha) {
                    let mut dalpha = self.ws.raw(n, c);
                    let vt = &self.nodes[v.idx()].value;
                    for ni in 0..n {
                        let g = grad.row_slice(ni);
                        for ci in 0..c {
                            let dot: f32 = vt
                                .row_slice(ni * c + ci)
                                .iter()
                                .zip(g)
                                .map(|(&x, &gi)| x * gi)
                                .sum();
                            dalpha.set(ni, ci, dot);
                        }
                    }
                    self.accumulate(*alpha, dalpha);
                }
            }
            Op::SoftmaxCrossEntropy { logits, targets } => {
                if self.needs(*logits) {
                    let mut dl = self.ws_copy(*logits);
                    let n = targets.len() as f32;
                    let scale = grad.item() / n;
                    // The backend applies the softmax and the `p - δ` rule
                    // row by row, zeroing rows whose target probability the
                    // forward pass clamped (where the loss is flat).
                    self.backend.softmax_ce_backward(&mut dl, targets, scale);
                    self.accumulate(*logits, dl);
                }
            }
            Op::FocalLoss {
                logits,
                targets,
                gamma,
            } => {
                if self.needs(*logits) {
                    let mut dl = self.ws_copy(*logits);
                    softmax_rows_in_place(&mut dl);
                    let n = targets.len() as f32;
                    let scale = grad.item() / n;
                    let gamma = *gamma;
                    for (i, &t) in targets.iter().enumerate() {
                        let t = t as usize;
                        let row = dl.row_slice_mut(i);
                        let pt = row[t].clamp(FOCAL_P_MIN, FOCAL_P_MAX);
                        // dL/dp_t for L = -(1-p)^g ln p
                        let dl_dpt = gamma * (1.0 - pt).powf(gamma - 1.0) * pt.ln()
                            - (1.0 - pt).powf(gamma) / pt;
                        for (k, o) in row.iter_mut().enumerate() {
                            let pk = *o;
                            let dpt_dzk = if k == t { pt * (1.0 - pt) } else { -pt * pk };
                            *o = scale * dl_dpt * dpt_dzk;
                        }
                    }
                    self.accumulate(*logits, dl);
                }
            }
            Op::MseLoss { pred, targets } => {
                if self.needs(*pred) {
                    let n = targets.len().max(1) as f32;
                    let scale = 2.0 * grad.item() / n;
                    let mut dp = self.ws.raw(targets.len(), 1);
                    let pt = &self.nodes[pred.idx()].value;
                    for (i, &t) in targets.iter().enumerate() {
                        dp.set(i, 0, scale * (pt.get(i, 0) - t));
                    }
                    self.accumulate(*pred, dp);
                }
            }
        }
    }
}

/// Numerically stable row-wise softmax, in place.
pub fn softmax_rows_in_place(t: &mut Tensor) {
    for r in 0..t.rows() {
        softmax_row_in_place(t.row_slice_mut(r));
    }
}

/// Numerically stable row-wise softmax of a tensor.
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// Neighborhood mean into a preallocated output: `out[i] = mean of a[j] over
/// j ∈ adj(i)`, a zero row when `adj(i)` is empty. Every element of `out` is
/// overwritten; `out` must be `adj.n_rows() × a.cols()`.
pub fn scatter_mean_into(a: &Tensor, adj: &Adjacency, out: &mut Tensor) {
    debug_assert_eq!(out.shape(), (adj.n_rows(), a.cols()));
    scatter_mean_rows(a, adj, 0, adj.n_rows(), out.as_mut_slice());
}

/// Weighted neighborhood sum into a preallocated output: `out[i] = Σ w[e] ·
/// a[j]` over the adjacency's edges `(i, j)` with one weight per CSR entry.
/// Weights are applied unconditionally — a zero weight multiplies rather
/// than skips, so a NaN in a zero-weighted source row propagates instead of
/// being silently masked. Every element of `out` is overwritten.
pub fn scatter_weighted_into(a: &Tensor, adj: &Adjacency, weights: &[f32], out: &mut Tensor) {
    debug_assert_eq!(
        weights.len(),
        adj.n_edges(),
        "one weight per adjacency edge"
    );
    debug_assert_eq!(out.shape(), (adj.n_rows(), a.cols()));
    let mut e = 0usize;
    for i in 0..adj.n_rows() {
        let out_row = out.row_slice_mut(i);
        out_row.fill(0.0);
        for &j in adj.neighbors(i) {
            let w = weights[e];
            e += 1;
            for (o, &v) in out_row.iter_mut().zip(a.row_slice(j as usize)) {
                *o += w * v;
            }
        }
    }
}

/// Batched attention read-out into a preallocated output: with `v` of shape
/// `(N·C) × D` and `alpha` of shape `N × C`, writes `out[n] = Σ_c alpha[n, c]
/// · v[n·C + c, :]`. Like [`scatter_weighted_into`], zero attention weights
/// multiply rather than skip, so NaN payloads under a zero weight surface.
/// Every element of `out` is overwritten; `out` must be `N × D`.
pub fn block_weighted_sum_into(v: &Tensor, alpha: &Tensor, out: &mut Tensor) {
    let (n, c) = alpha.shape();
    debug_assert_eq!(v.rows(), n * c, "v rows must equal alpha rows x cols");
    debug_assert_eq!(out.shape(), (n, v.cols()));
    for ni in 0..n {
        let out_row = out.row_slice_mut(ni);
        out_row.fill(0.0);
        for ci in 0..c {
            let w = alpha.get(ni, ci);
            for (o, &x) in out_row.iter_mut().zip(v.row_slice(ni * c + ci)) {
                *o += w * x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_idx(v: Vec<u32>) -> Rc<Vec<u32>> {
        Rc::new(v)
    }

    #[test]
    fn matmul_backward_matches_hand_derivation() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.param(Tensor::from_vec(2, 1, vec![5.0, 6.0]));
        tape.freeze();
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss);
        // d(sum(A·b))/dA = 1 · bᵀ per row; /db = colsum over A rows.
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn global_grad_norm_matches_hand_computation() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.param(Tensor::scalar(3.0));
        tape.freeze();
        assert_eq!(tape.global_grad_norm(), 0.0, "no grads before backward");
        let s = tape.sum_all(a);
        let p = tape.mul_elem(b, b);
        let ps = tape.sum_all(p);
        let loss = tape.add(s, ps);
        tape.backward(loss);
        // d/da = [1, 1], d/db = 2·3 = 6 → norm = sqrt(1 + 1 + 36)
        let expect = 38.0f64.sqrt();
        assert!((tape.global_grad_norm() - expect).abs() < 1e-9);
    }

    #[test]
    fn scale_param_grads_rescales_every_gradient() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 2, vec![4.0, 5.0]));
        tape.freeze();
        let loss = tape.sum_all(a);
        tape.backward(loss);
        tape.scale_param_grads(0.5);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[0.5, 0.5]);
        assert!((tape.global_grad_norm() - 0.5f64.hypot(0.5)).abs() < 1e-9);
    }

    #[test]
    fn params_all_finite_detects_a_poisoned_parameter() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        tape.freeze();
        assert!(tape.params_all_finite());
        tape.value_mut(a).as_mut_slice()[1] = f32::NAN;
        assert!(!tape.params_all_finite());
    }

    #[test]
    fn param_snapshot_roundtrip_is_bit_exact() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 2, vec![0.1, 0.2]));
        let _x = tape.input(Tensor::from_vec(1, 3, vec![9.0, 9.0, 9.0]));
        let b = tape.param(Tensor::scalar(0.3));
        tape.freeze();
        let snap = tape.snapshot_param_values();
        assert_eq!(snap.len(), 2, "inputs are excluded from snapshots");
        tape.value_mut(a).as_mut_slice()[0] = 77.0;
        tape.value_mut(b).as_mut_slice()[0] = 88.0;
        tape.restore_param_values(&snap);
        assert_eq!(tape.value(a).as_slice(), &[0.1, 0.2]);
        assert_eq!(tape.value(b).item(), 0.3);
        // re-capture into the same buffers without reallocating
        let mut again = snap;
        tape.value_mut(a).as_mut_slice()[0] = -1.5;
        tape.snapshot_param_values_into(&mut again);
        assert_eq!(again[0].as_slice(), &[-1.5, 0.2]);
    }

    #[test]
    fn is_trainable_distinguishes_params_from_inputs() {
        let mut tape = Tape::new();
        let p = tape.param(Tensor::scalar(1.0));
        let x = tape.input(Tensor::scalar(2.0));
        tape.freeze();
        assert!(tape.is_trainable(p));
        assert!(!tape.is_trainable(x));
    }

    #[test]
    fn relu_masks_negative_gradients() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        tape.freeze();
        let r = tape.relu(a);
        let loss = tape.sum_all(r);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gather_rows_scatters_gradient_back() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        tape.freeze();
        let g = tape.gather_rows(a, rc_idx(vec![2, 0, 2]));
        let loss = tape.sum_all(g);
        tape.backward(loss);
        assert_eq!(
            tape.grad(a).unwrap().as_slice(),
            &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn scatter_mean_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(3, 1, vec![3.0, 6.0, 9.0]));
        tape.freeze();
        let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]));
        let m = tape.scatter_mean(a, adj);
        assert_eq!(tape.value(m).as_slice(), &[7.5, 0.0, 3.0]);
        let loss = tape.sum_all(m);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0, 0.5, 0.5]);
    }

    #[test]
    fn scatter_weighted_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(3, 1, vec![2.0, 4.0, 8.0]));
        tape.freeze();
        let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]));
        let w = Rc::new(vec![0.5, 0.25, 2.0]);
        let out = tape.scatter_weighted(a, adj, w);
        // out[0] = 0.5*4 + 0.25*8 = 4; out[1] = 0; out[2] = 2*2 = 4
        assert_eq!(tape.value(out).as_slice(), &[4.0, 0.0, 4.0]);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        // d a[0] = 2 (via out[2]); d a[1] = 0.5; d a[2] = 0.25
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[2.0, 0.5, 0.25]);
    }

    #[test]
    fn scatter_weighted_with_unit_weights_matches_sum() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let adj = Rc::new(Adjacency::from_lists(&[vec![0, 1]]));
        let out = tape.scatter_weighted(a, adj, Rc::new(vec![1.0, 1.0]));
        assert_eq!(tape.value(out).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_cross_entropy_matches_manual_value() {
        let mut tape = Tape::new();
        let logits = tape.param(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        tape.freeze();
        let loss = tape.softmax_cross_entropy(logits, rc_idx(vec![1]));
        assert!((tape.value(loss).item() - 0.5f32.ln().abs()).abs() < 1e-6);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        assert!((g.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((g.get(0, 1) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn focal_loss_reduces_to_ce_at_gamma_zero() {
        let make = |gamma: Option<f32>| {
            let mut tape = Tape::new();
            let logits = tape.param(Tensor::from_vec(2, 3, vec![0.3, -0.1, 0.7, 1.0, 0.0, -1.0]));
            tape.freeze();
            let t = rc_idx(vec![2, 0]);
            let loss = match gamma {
                Some(g) => tape.focal_loss(logits, t, g),
                None => tape.softmax_cross_entropy(logits, t),
            };
            tape.backward(loss);
            (tape.value(loss).item(), tape.grad(logits).unwrap().clone())
        };
        let (l_focal, g_focal) = make(Some(0.0));
        let (l_ce, g_ce) = make(None);
        assert!((l_focal - l_ce).abs() < 1e-5);
        for (a, b) in g_focal.as_slice().iter().zip(g_ce.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn focal_loss_is_positive_at_saturated_logits() {
        // A perfectly confident, correct prediction: p_t rounds to 1.0 in
        // f32. Without the shared upper clamp the forward loss would be
        // exactly 0 while the backward pass (which clamps) reports a
        // non-zero gradient; with one clamp in both places the loss is the
        // tiny positive value the gradient integrates to.
        let mut tape = Tape::new();
        let logits = tape.param(Tensor::from_vec(1, 2, vec![20.0, -20.0]));
        tape.freeze();
        let loss = tape.focal_loss(logits, rc_idx(vec![0]), 2.0);
        let l = tape.value(loss).item();
        let p = FOCAL_P_MAX;
        let expected = -(1.0 - p).powi(2) * p.ln();
        assert!(l > 0.0, "saturated focal loss must stay positive, got {l}");
        assert!(
            (l - expected).abs() <= expected * 1e-3,
            "got {l}, expected {expected}"
        );
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        assert!(g.all_finite(), "saturated focal gradient must be finite");
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut tape = Tape::new();
        let pred = tape.param(Tensor::from_vec(2, 1, vec![1.0, 3.0]));
        tape.freeze();
        let loss = tape.mse_loss(pred, Rc::new(vec![0.0, 1.0]));
        assert!((tape.value(loss).item() - 2.5).abs() < 1e-6);
        tape.backward(loss);
        assert_eq!(tape.grad(pred).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn block_weighted_sum_selects_blocks() {
        let mut tape = Tape::new();
        // 2 samples, 2 columns, dim 2
        let v = tape.param(Tensor::from_vec(4, 2, vec![1., 0., 0., 1., 2., 2., 3., 3.]));
        let alpha = tape.param(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.5, 0.5]));
        tape.freeze();
        let out = tape.block_weighted_sum(v, alpha);
        assert_eq!(tape.value(out).as_slice(), &[1.0, 0.0, 2.5, 2.5]);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        assert_eq!(tape.grad(alpha).unwrap().as_slice(), &[1.0, 1.0, 4.0, 6.0]);
        assert_eq!(
            tape.grad(v).unwrap().as_slice(),
            &[1.0, 1.0, 0.0, 0.0, 0.5, 0.5, 0.5, 0.5]
        );
    }

    #[test]
    fn reset_truncates_to_parameters() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::scalar(2.0));
        tape.freeze();
        let b = tape.scale(a, 3.0);
        let loss = tape.sum_all(b);
        tape.backward(loss);
        assert!(tape.grad(a).is_some());
        tape.reset();
        assert!(tape.grad(a).is_none());
        assert_eq!(tape.param_count(), 1);
        // the tape is usable again after reset
        let c = tape.scale(a, 5.0);
        assert_eq!(tape.value(c).item(), 10.0);
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = tape.row_softmax(a);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_inputs_receive_no_gradient() {
        let mut tape = Tape::new();
        let p = tape.param(Tensor::scalar(1.0));
        tape.freeze();
        let c = tape.input(Tensor::scalar(4.0));
        let prod = tape.mul_elem(p, c);
        let loss = tape.sum_all(prod);
        tape.backward(loss);
        assert_eq!(tape.grad(p).unwrap().item(), 4.0);
        assert!(tape.grad(c).is_none());
    }

    /// One full train step over a small graph: identical epochs after the
    /// first must run entirely out of the workspace free lists.
    fn train_epoch(tape: &mut Tape, w: Var, x: Var) {
        let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![0], vec![0, 1]]));
        let h = tape.matmul(x, w);
        let agg = tape.scatter_mean(h, adj);
        let act = tape.relu(agg);
        let cat = tape.concat_cols(&[h, act]);
        let merged = tape.add_n(&[cat, cat]);
        let loss = tape.mean_all(merged);
        tape.backward(loss);
        tape.reset();
    }

    #[test]
    fn workspace_misses_stop_growing_after_first_epoch() {
        let mut tape = Tape::new();
        let w = tape.param(Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.4]));
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        tape.freeze();
        train_epoch(&mut tape, w, x);
        let after_first = tape.workspace_stats().misses;
        assert!(after_first > 0, "first epoch must populate the free lists");
        for _ in 0..5 {
            train_epoch(&mut tape, w, x);
        }
        assert_eq!(
            tape.workspace_stats().misses,
            after_first,
            "later epochs must be allocation-free"
        );
    }

    #[test]
    fn workspace_misses_stop_growing_after_first_epoch_on_the_parallel_backend() {
        // The 0-allocs-after-epoch-1 invariant must survive the backend
        // swap: pool threads and reduction scratch are created once.
        let mut tape = Tape::new();
        tape.set_backend(BackendKind::Parallel { threads: 2 });
        let w = tape.param(Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.4]));
        let x = tape.input(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        tape.freeze();
        train_epoch(&mut tape, w, x);
        let after_first = tape.workspace_stats().misses;
        for _ in 0..5 {
            train_epoch(&mut tape, w, x);
        }
        assert_eq!(
            tape.workspace_stats().misses,
            after_first,
            "later epochs must be allocation-free on the parallel backend"
        );
    }

    #[test]
    fn legacy_mode_matches_fast_path_gradients() {
        let run = |legacy: bool| {
            let mut tape = Tape::new();
            tape.set_legacy_mode(legacy);
            let w = tape.param(Tensor::from_vec(2, 2, vec![0.5, -0.25, 0.125, 1.0]));
            let x = tape.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
            tape.freeze();
            let h = tape.matmul(x, w);
            let loss = tape.sum_all(h);
            tape.backward(loss);
            tape.grad(w).unwrap().clone()
        };
        let fast = run(false);
        let legacy = run(true);
        for (a, b) in fast.as_slice().iter().zip(legacy.as_slice()) {
            assert!((a - b).abs() < 1e-5, "fast {a} vs legacy {b}");
        }
    }

    #[test]
    fn parallel_backend_matches_serial_bitwise_through_a_training_step() {
        // One full forward/backward over every dispatched kernel — matmul,
        // scatter_mean (with a degree-0 row), softmax-CE — must produce
        // bit-identical losses and gradients on every backend.
        let run = |kind: BackendKind| {
            let mut tape = Tape::new();
            tape.set_backend(kind);
            let w = tape.param(Tensor::from_vec(
                2,
                3,
                vec![0.5, -0.25, 0.125, 1.0, -0.75, 0.375],
            ));
            let x = tape.input(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
            tape.freeze();
            let h = tape.matmul(x, w);
            let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]));
            let m = tape.scatter_mean(h, adj);
            let loss = tape.softmax_cross_entropy(m, Rc::new(vec![0u32, 1, 2]));
            tape.backward(loss);
            (tape.value(loss).item(), tape.grad(w).unwrap().clone())
        };
        let (serial_loss, serial_grad) = run(BackendKind::Serial);
        for threads in [1usize, 2, 8] {
            let (loss, grad) = run(BackendKind::Parallel { threads });
            assert_eq!(loss.to_bits(), serial_loss.to_bits(), "{threads} threads");
            assert_eq!(grad.shape(), serial_grad.shape());
            for (a, b) in grad.as_slice().iter().zip(serial_grad.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads: {a} vs {b}");
            }
        }
    }
}

//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an arena of [`Node`]s. Model parameters are registered
//! first ([`Tape::param`]), the boundary is sealed with [`Tape::freeze`], and
//! every training step then appends ephemeral forward nodes, calls
//! [`Tape::backward`] on the scalar loss, lets the optimizer consume the
//! parameter gradients, and finally calls [`Tape::reset`] which truncates the
//! arena back to the parameters. This keeps allocations stable across epochs
//! and avoids any closure-based backward machinery: each op's backward rule
//! is a match arm over [`Op`].

use std::rc::Rc;

use crate::adjacency::Adjacency;
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(u32);

impl Var {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }

    /// Handle for the node at position `i` on its tape. Only meaningful for
    /// indices below [`Tape::param_count`] (used by optimizers to walk the
    /// parameter section).
    #[inline]
    pub fn from_index(i: usize) -> Var {
        Var(u32::try_from(i).expect("tape node index fits u32"))
    }
}

/// The operation that produced a node; encodes the backward rule.
#[derive(Clone, Debug)]
enum Op {
    /// Leaf node: parameter (grads tracked) or constant input.
    Leaf,
    /// `A · B`.
    MatMul(Var, Var),
    /// Elementwise `A + B` of identical shapes.
    Add(Var, Var),
    /// `A + b` where `b` is a `1 × cols` row broadcast over the rows of `A`.
    AddRowBroadcast(Var, Var),
    /// Elementwise `A - B`.
    Sub(Var, Var),
    /// Elementwise Hadamard product.
    MulElem(Var, Var),
    /// `k · A`.
    Scale(Var, f32),
    /// Elementwise sum of several identically shaped inputs.
    AddN(Vec<Var>),
    /// Rectified linear unit.
    Relu(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// `out[i] = a[idx[i]]` row gather (embedding lookup).
    GatherRows(Var, Rc<Vec<u32>>),
    /// `out[i] = mean of a[j] over j ∈ adj(i)`; zero row when degree 0.
    ScatterMean(Var, Rc<Adjacency>),
    /// `out[i] = Σ_j w[e] · a[j]` over edges `e = (i, j)` of the adjacency,
    /// with one constant weight per CSR target entry (GCN-style normalized
    /// aggregation).
    ScatterWeighted(Var, Rc<Adjacency>, Rc<Vec<f32>>),
    /// Horizontal concatenation of matrices with equal row counts.
    ConcatCols(Vec<Var>),
    /// Column slice `a[:, start..end]`.
    SliceCols(Var, usize, usize),
    /// Shape reinterpretation (data order unchanged).
    Reshape(Var),
    /// Sum of all elements, producing a `1 × 1` tensor.
    SumAll(Var),
    /// Mean of all elements, producing a `1 × 1` tensor.
    MeanAll(Var),
    /// Row-wise softmax.
    RowSoftmax(Var),
    /// `out[n] = Σ_c alpha[n, c] · v[n·C + c, :]` — batched attention
    /// read-out over blocks of `C` rows.
    BlockWeightedSum { v: Var, alpha: Var },
    /// Mean softmax cross-entropy over rows of logits against class indices.
    SoftmaxCrossEntropy { logits: Var, targets: Rc<Vec<u32>> },
    /// Mean focal loss `-(1 - p_t)^γ · log p_t` over rows of logits.
    FocalLoss { logits: Var, targets: Rc<Vec<u32>>, gamma: f32 },
    /// Mean squared error of an `N × 1` prediction column against targets.
    MseLoss { pred: Var, targets: Rc<Vec<f32>> },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    needs_grad: bool,
}

/// Reverse-mode autodiff tape.
pub struct Tape {
    nodes: Vec<Node>,
    frozen_at: Option<u32>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new(), frozen_at: None }
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        let id = u32::try_from(self.nodes.len()).expect("tape node count fits u32");
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        Var(id)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.idx()].needs_grad
    }

    fn any_needs(&self, vars: &[Var]) -> bool {
        vars.iter().any(|&v| self.needs(v))
    }

    /// Register a trainable parameter. Must be called before [`Tape::freeze`].
    ///
    /// # Panics
    /// Panics if the tape is already frozen.
    pub fn param(&mut self, value: Tensor) -> Var {
        assert!(self.frozen_at.is_none(), "cannot add parameters to a frozen tape");
        self.push(value, Op::Leaf, true)
    }

    /// Seal the parameter section; later [`Tape::reset`] calls truncate here.
    pub fn freeze(&mut self) {
        assert!(self.frozen_at.is_none(), "tape already frozen");
        self.frozen_at = Some(self.nodes.len() as u32);
    }

    /// Number of registered parameters (valid after [`Tape::freeze`]).
    pub fn param_count(&self) -> usize {
        self.frozen_at.map(|b| b as usize).unwrap_or(self.nodes.len())
    }

    /// Total number of f32 values across all parameters.
    pub fn total_param_elems(&self) -> usize {
        (0..self.param_count()).map(|i| self.nodes[i].value.len()).sum()
    }

    /// Drop all ephemeral nodes and clear parameter gradients.
    pub fn reset(&mut self) {
        let boundary = self.frozen_at.expect("reset requires a frozen tape") as usize;
        self.nodes.truncate(boundary);
        for node in &mut self.nodes {
            node.grad = None;
        }
    }

    /// Add a constant (non-differentiable) input tensor.
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.idx()].value
    }

    /// Mutable value of a node (used by optimizers to update parameters).
    pub fn value_mut(&mut self, v: Var) -> &mut Tensor {
        &mut self.nodes[v.idx()].value
    }

    /// Gradient accumulated for a node by the latest [`Tape::backward`].
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.idx()].grad.as_ref()
    }

    // ---- forward ops ------------------------------------------------------

    /// `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::MatMul(a, b), ng)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "add shape mismatch");
        let mut value = self.value(a).clone();
        value.add_assign(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::Add(a, b), ng)
    }

    /// `a + bias` broadcasting the `1 × cols` bias row over `a`'s rows.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let (rows, cols) = self.value(a).shape();
        assert_eq!(self.value(bias).shape(), (1, cols), "bias must be 1 x cols");
        let mut value = self.value(a).clone();
        {
            let b = self.value(bias).as_slice().to_vec();
            for r in 0..rows {
                for (o, &bv) in value.row_slice_mut(r).iter_mut().zip(&b) {
                    *o += bv;
                }
            }
        }
        let ng = self.any_needs(&[a, bias]);
        self.push(value, Op::AddRowBroadcast(a, bias), ng)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "sub shape mismatch");
        let mut value = self.value(a).clone();
        value.add_scaled(self.value(b), -1.0);
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::Sub(a, b), ng)
    }

    /// Elementwise Hadamard product.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        assert_eq!(self.value(a).shape(), self.value(b).shape(), "mul shape mismatch");
        let bv = self.value(b).as_slice().to_vec();
        let mut value = self.value(a).clone();
        for (x, b) in value.as_mut_slice().iter_mut().zip(bv) {
            *x *= b;
        }
        let ng = self.any_needs(&[a, b]);
        self.push(value, Op::MulElem(a, b), ng)
    }

    /// `k · a`.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let value = self.value(a).map(|v| v * k);
        let ng = self.needs(a);
        self.push(value, Op::Scale(a, k), ng)
    }

    /// Elementwise sum of identically shaped inputs.
    ///
    /// # Panics
    /// Panics on an empty input list or mismatched shapes.
    pub fn add_n(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "add_n requires at least one input");
        let mut value = self.value(vars[0]).clone();
        for &v in &vars[1..] {
            value.add_assign(self.value(v));
        }
        let ng = self.any_needs(vars);
        self.push(value, Op::AddN(vars.to_vec()), ng)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        let ng = self.needs(a);
        self.push(value, Op::Relu(a), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        let ng = self.needs(a);
        self.push(value, Op::Tanh(a), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        let ng = self.needs(a);
        self.push(value, Op::Sigmoid(a), ng)
    }

    /// Row gather: `out[i] = a[idx[i]]`.
    pub fn gather_rows(&mut self, a: Var, idx: Rc<Vec<u32>>) -> Var {
        let src = self.value(a);
        let cols = src.cols();
        let mut value = Tensor::zeros(idx.len(), cols);
        for (i, &j) in idx.iter().enumerate() {
            value.row_slice_mut(i).copy_from_slice(src.row_slice(j as usize));
        }
        let ng = self.needs(a);
        self.push(value, Op::GatherRows(a, idx), ng)
    }

    /// Neighborhood mean: `out[i] = mean_{j ∈ adj(i)} a[j]`, zero when
    /// `adj(i)` is empty.
    pub fn scatter_mean(&mut self, a: Var, adj: Rc<Adjacency>) -> Var {
        let src = self.value(a);
        assert!(
            adj.max_target_bound() <= src.rows(),
            "adjacency references row beyond input ({} > {})",
            adj.max_target_bound(),
            src.rows()
        );
        let cols = src.cols();
        let mut value = Tensor::zeros(adj.n_rows(), cols);
        for i in 0..adj.n_rows() {
            let neigh = adj.neighbors(i);
            if neigh.is_empty() {
                continue;
            }
            let inv = 1.0 / neigh.len() as f32;
            let out_row = value.row_slice_mut(i);
            for &j in neigh {
                for (o, &v) in out_row.iter_mut().zip(src.row_slice(j as usize)) {
                    *o += v * inv;
                }
            }
        }
        let ng = self.needs(a);
        self.push(value, Op::ScatterMean(a, adj), ng)
    }

    /// Weighted neighborhood sum: `out[i] = Σ w[e] · a[j]` over the
    /// adjacency's edges `(i, j)`, with `weights` aligned to the CSR target
    /// array (one weight per stored edge). The weights are constants (no
    /// gradient), which is exactly what GCN's fixed symmetric normalization
    /// needs.
    ///
    /// # Panics
    /// Panics when `weights.len() != adj.n_edges()`.
    pub fn scatter_weighted(
        &mut self,
        a: Var,
        adj: Rc<Adjacency>,
        weights: Rc<Vec<f32>>,
    ) -> Var {
        let src = self.value(a);
        assert_eq!(weights.len(), adj.n_edges(), "one weight per adjacency edge");
        assert!(
            adj.max_target_bound() <= src.rows(),
            "adjacency references row beyond input"
        );
        let cols = src.cols();
        let mut value = Tensor::zeros(adj.n_rows(), cols);
        let mut e = 0usize;
        for i in 0..adj.n_rows() {
            let out_row = value.row_slice_mut(i);
            for &j in adj.neighbors(i) {
                let w = weights[e];
                e += 1;
                if w == 0.0 {
                    continue;
                }
                for (o, &v) in out_row.iter_mut().zip(src.row_slice(j as usize)) {
                    *o += w * v;
                }
            }
        }
        let ng = self.needs(a);
        self.push(value, Op::ScatterWeighted(a, adj, weights), ng)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_cols requires at least one input");
        let rows = self.value(vars[0]).rows();
        let total_cols: usize = vars.iter().map(|&v| self.value(v).cols()).sum();
        let mut value = Tensor::zeros(rows, total_cols);
        let mut offset = 0;
        for &v in vars {
            let t = self.value(v);
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            let c = t.cols();
            for r in 0..rows {
                value.row_slice_mut(r)[offset..offset + c].copy_from_slice(t.row_slice(r));
            }
            offset += c;
        }
        let ng = self.any_needs(vars);
        self.push(value, Op::ConcatCols(vars.to_vec()), ng)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = self.value(a);
        assert!(start <= end && end <= src.cols(), "slice out of bounds");
        let rows = src.rows();
        let mut value = Tensor::zeros(rows, end - start);
        for r in 0..rows {
            value.row_slice_mut(r).copy_from_slice(&src.row_slice(r)[start..end]);
        }
        let ng = self.needs(a);
        self.push(value, Op::SliceCols(a, start, end), ng)
    }

    /// Shape reinterpretation preserving element order.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let value = self.value(a).reshaped(rows, cols);
        let ng = self.needs(a);
        self.push(value, Op::Reshape(a), ng)
    }

    /// Sum of all elements as a `1 × 1` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        let ng = self.needs(a);
        self.push(value, Op::SumAll(a), ng)
    }

    /// Mean of all elements as a `1 × 1` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let value = Tensor::scalar(t.sum() / t.len() as f32);
        let ng = self.needs(a);
        self.push(value, Op::MeanAll(a), ng)
    }

    /// Row-wise numerically stable softmax.
    pub fn row_softmax(&mut self, a: Var) -> Var {
        let value = softmax_rows(self.value(a));
        let ng = self.needs(a);
        self.push(value, Op::RowSoftmax(a), ng)
    }

    /// Batched attention read-out: with `v` of shape `(N·C) × D` and `alpha`
    /// of shape `N × C`, produces `out` of shape `N × D` with
    /// `out[n] = Σ_c alpha[n, c] · v[n·C + c, :]`.
    pub fn block_weighted_sum(&mut self, v: Var, alpha: Var) -> Var {
        let (n, c) = self.value(alpha).shape();
        let (vc_rows, d) = self.value(v).shape();
        assert_eq!(vc_rows, n * c, "v rows must equal alpha rows x cols");
        let mut value = Tensor::zeros(n, d);
        {
            let vt = self.value(v);
            let at = self.value(alpha);
            for ni in 0..n {
                let out_row = value.row_slice_mut(ni);
                for ci in 0..c {
                    let w = at.get(ni, ci);
                    if w == 0.0 {
                        continue;
                    }
                    for (o, &x) in out_row.iter_mut().zip(vt.row_slice(ni * c + ci)) {
                        *o += w * x;
                    }
                }
            }
        }
        let ng = self.any_needs(&[v, alpha]);
        self.push(value, Op::BlockWeightedSum { v, alpha }, ng)
    }

    /// Mean softmax cross-entropy of `logits` (`N × K`) against class
    /// indices `targets` (`len N`, each `< K`).
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: Rc<Vec<u32>>) -> Var {
        let lt = self.value(logits);
        assert_eq!(lt.rows(), targets.len(), "one target per logits row");
        let probs = softmax_rows(lt);
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let p = probs.get(i, t as usize).max(1e-12);
            loss -= f64::from(p.ln());
        }
        let value = Tensor::scalar((loss / targets.len() as f64) as f32);
        let ng = self.needs(logits);
        self.push(value, Op::SoftmaxCrossEntropy { logits, targets }, ng)
    }

    /// Mean focal loss `-(1 - p_t)^γ log p_t` against class indices.
    pub fn focal_loss(&mut self, logits: Var, targets: Rc<Vec<u32>>, gamma: f32) -> Var {
        let lt = self.value(logits);
        assert_eq!(lt.rows(), targets.len(), "one target per logits row");
        let probs = softmax_rows(lt);
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let p = probs.get(i, t as usize).clamp(1e-12, 1.0);
            loss -= f64::from((1.0 - p).powf(gamma) * p.ln());
        }
        let value = Tensor::scalar((loss / targets.len() as f64) as f32);
        let ng = self.needs(logits);
        self.push(value, Op::FocalLoss { logits, targets, gamma }, ng)
    }

    /// Mean squared error of an `N × 1` prediction column against targets.
    pub fn mse_loss(&mut self, pred: Var, targets: Rc<Vec<f32>>) -> Var {
        let pt = self.value(pred);
        assert_eq!(pt.shape(), (targets.len(), 1), "pred must be N x 1");
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let d = f64::from(pt.get(i, 0) - t);
            loss += d * d;
        }
        let value = Tensor::scalar((loss / targets.len().max(1) as f64) as f32);
        let ng = self.needs(pred);
        self.push(value, Op::MseLoss { pred, targets }, ng)
    }

    // ---- backward ---------------------------------------------------------

    fn accumulate(&mut self, v: Var, delta: Tensor) {
        if !self.needs(v) {
            return;
        }
        let node = &mut self.nodes[v.idx()];
        match &mut node.grad {
            Some(g) => g.add_assign(&delta),
            None => node.grad = Some(delta),
        }
    }

    /// Run reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        self.nodes[loss.idx()].grad = Some(Tensor::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            let grad = self.nodes[i].grad.clone().expect("just checked");
            let op = self.nodes[i].op.clone();
            self.backprop_one(Var(i as u32), &grad, &op);
        }
    }

    fn backprop_one(&mut self, out: Var, grad: &Tensor, op: &Op) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.needs(*a) {
                    let da = grad.matmul_nt(self.value(*b));
                    self.accumulate(*a, da);
                }
                if self.needs(*b) {
                    let db = self.value(*a).matmul_tn(grad);
                    self.accumulate(*b, db);
                }
            }
            Op::Add(a, b) => {
                self.accumulate(*a, grad.clone());
                self.accumulate(*b, grad.clone());
            }
            Op::AddRowBroadcast(a, bias) => {
                self.accumulate(*a, grad.clone());
                if self.needs(*bias) {
                    let cols = grad.cols();
                    let mut db = Tensor::zeros(1, cols);
                    for r in 0..grad.rows() {
                        for (o, &g) in db.as_mut_slice().iter_mut().zip(grad.row_slice(r)) {
                            *o += g;
                        }
                    }
                    self.accumulate(*bias, db);
                }
            }
            Op::Sub(a, b) => {
                self.accumulate(*a, grad.clone());
                self.accumulate(*b, grad.map(|v| -v));
            }
            Op::MulElem(a, b) => {
                if self.needs(*a) {
                    let mut da = grad.clone();
                    let bv = self.value(*b).as_slice().to_vec();
                    for (g, b) in da.as_mut_slice().iter_mut().zip(bv) {
                        *g *= b;
                    }
                    self.accumulate(*a, da);
                }
                if self.needs(*b) {
                    let mut db = grad.clone();
                    let av = self.value(*a).as_slice().to_vec();
                    for (g, a) in db.as_mut_slice().iter_mut().zip(av) {
                        *g *= a;
                    }
                    self.accumulate(*b, db);
                }
            }
            Op::Scale(a, k) => {
                let k = *k;
                self.accumulate(*a, grad.map(|v| v * k));
            }
            Op::AddN(vars) => {
                for &v in vars {
                    self.accumulate(v, grad.clone());
                }
            }
            Op::Relu(a) => {
                let mask: Vec<f32> =
                    self.value(out).as_slice().iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }).collect();
                let mut da = grad.clone();
                for (g, m) in da.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
                self.accumulate(*a, da);
            }
            Op::Tanh(a) => {
                let outv = self.value(out).as_slice().to_vec();
                let mut da = grad.clone();
                for (g, o) in da.as_mut_slice().iter_mut().zip(outv) {
                    *g *= 1.0 - o * o;
                }
                self.accumulate(*a, da);
            }
            Op::Sigmoid(a) => {
                let outv = self.value(out).as_slice().to_vec();
                let mut da = grad.clone();
                for (g, o) in da.as_mut_slice().iter_mut().zip(outv) {
                    *g *= o * (1.0 - o);
                }
                self.accumulate(*a, da);
            }
            Op::GatherRows(a, idx) => {
                if self.needs(*a) {
                    let (rows, cols) = self.value(*a).shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for (i, &j) in idx.iter().enumerate() {
                        let dst = da.row_slice_mut(j as usize);
                        for (o, &g) in dst.iter_mut().zip(grad.row_slice(i)) {
                            *o += g;
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::ScatterMean(a, adj) => {
                if self.needs(*a) {
                    let (rows, cols) = self.value(*a).shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for i in 0..adj.n_rows() {
                        let neigh = adj.neighbors(i);
                        if neigh.is_empty() {
                            continue;
                        }
                        let inv = 1.0 / neigh.len() as f32;
                        for &j in neigh {
                            let dst = da.row_slice_mut(j as usize);
                            for (o, &g) in dst.iter_mut().zip(grad.row_slice(i)) {
                                *o += g * inv;
                            }
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::ScatterWeighted(a, adj, weights) => {
                if self.needs(*a) {
                    let (rows, cols) = self.value(*a).shape();
                    let mut da = Tensor::zeros(rows, cols);
                    let mut e = 0usize;
                    for i in 0..adj.n_rows() {
                        for &j in adj.neighbors(i) {
                            let w = weights[e];
                            e += 1;
                            if w == 0.0 {
                                continue;
                            }
                            let dst = da.row_slice_mut(j as usize);
                            for (o, &g) in dst.iter_mut().zip(grad.row_slice(i)) {
                                *o += w * g;
                            }
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::ConcatCols(vars) => {
                let mut offset = 0;
                for &v in vars {
                    let c = self.value(v).cols();
                    if self.needs(v) {
                        let rows = grad.rows();
                        let mut dv = Tensor::zeros(rows, c);
                        for r in 0..rows {
                            dv.row_slice_mut(r).copy_from_slice(&grad.row_slice(r)[offset..offset + c]);
                        }
                        self.accumulate(v, dv);
                    }
                    offset += c;
                }
            }
            Op::SliceCols(a, start, _end) => {
                if self.needs(*a) {
                    let (rows, cols) = self.value(*a).shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let g = grad.row_slice(r);
                        da.row_slice_mut(r)[*start..*start + g.len()].copy_from_slice(g);
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::Reshape(a) => {
                if self.needs(*a) {
                    let (rows, cols) = self.value(*a).shape();
                    self.accumulate(*a, grad.reshaped(rows, cols));
                }
            }
            Op::SumAll(a) => {
                let g = grad.item();
                let (rows, cols) = self.value(*a).shape();
                self.accumulate(*a, Tensor::full(rows, cols, g));
            }
            Op::MeanAll(a) => {
                let (rows, cols) = self.value(*a).shape();
                let g = grad.item() / (rows * cols) as f32;
                self.accumulate(*a, Tensor::full(rows, cols, g));
            }
            Op::RowSoftmax(a) => {
                if self.needs(*a) {
                    let outv = self.value(out).clone();
                    let mut da = Tensor::zeros(outv.rows(), outv.cols());
                    for r in 0..outv.rows() {
                        let s = outv.row_slice(r);
                        let g = grad.row_slice(r);
                        let dot: f32 = s.iter().zip(g).map(|(&si, &gi)| si * gi).sum();
                        for ((o, &si), &gi) in da.row_slice_mut(r).iter_mut().zip(s).zip(g) {
                            *o = si * (gi - dot);
                        }
                    }
                    self.accumulate(*a, da);
                }
            }
            Op::BlockWeightedSum { v, alpha } => {
                let (n, c) = self.value(*alpha).shape();
                let d = self.value(*v).cols();
                if self.needs(*v) {
                    let at = self.value(*alpha).clone();
                    let mut dv = Tensor::zeros(n * c, d);
                    for ni in 0..n {
                        let g = grad.row_slice(ni);
                        for ci in 0..c {
                            let w = at.get(ni, ci);
                            if w == 0.0 {
                                continue;
                            }
                            for (o, &gi) in dv.row_slice_mut(ni * c + ci).iter_mut().zip(g) {
                                *o += w * gi;
                            }
                        }
                    }
                    self.accumulate(*v, dv);
                }
                if self.needs(*alpha) {
                    let vt = self.value(*v).clone();
                    let mut dalpha = Tensor::zeros(n, c);
                    for ni in 0..n {
                        let g = grad.row_slice(ni);
                        for ci in 0..c {
                            let dot: f32 =
                                vt.row_slice(ni * c + ci).iter().zip(g).map(|(&x, &gi)| x * gi).sum();
                            dalpha.set(ni, ci, dot);
                        }
                    }
                    self.accumulate(*alpha, dalpha);
                }
            }
            Op::SoftmaxCrossEntropy { logits, targets } => {
                if self.needs(*logits) {
                    let probs = softmax_rows(self.value(*logits));
                    let n = targets.len() as f32;
                    let scale = grad.item() / n;
                    let mut dl = probs;
                    for (i, &t) in targets.iter().enumerate() {
                        let row = dl.row_slice_mut(i);
                        row[t as usize] -= 1.0;
                        for g in row.iter_mut() {
                            *g *= scale;
                        }
                    }
                    self.accumulate(*logits, dl);
                }
            }
            Op::FocalLoss { logits, targets, gamma } => {
                if self.needs(*logits) {
                    let probs = softmax_rows(self.value(*logits));
                    let n = targets.len() as f32;
                    let scale = grad.item() / n;
                    let gamma = *gamma;
                    let mut dl = Tensor::zeros(probs.rows(), probs.cols());
                    for (i, &t) in targets.iter().enumerate() {
                        let t = t as usize;
                        let p_row = probs.row_slice(i);
                        let pt = p_row[t].clamp(1e-12, 1.0 - 1e-7);
                        // dL/dp_t for L = -(1-p)^g ln p
                        let dl_dpt = gamma * (1.0 - pt).powf(gamma - 1.0) * pt.ln()
                            - (1.0 - pt).powf(gamma) / pt;
                        let out_row = dl.row_slice_mut(i);
                        for (k, (&pk, o)) in p_row.iter().zip(out_row.iter_mut()).enumerate() {
                            let dpt_dzk = if k == t { pt * (1.0 - pt) } else { -pt * pk };
                            *o = scale * dl_dpt * dpt_dzk;
                        }
                    }
                    self.accumulate(*logits, dl);
                }
            }
            Op::MseLoss { pred, targets } => {
                if self.needs(*pred) {
                    let n = targets.len().max(1) as f32;
                    let scale = 2.0 * grad.item() / n;
                    let pt = self.value(*pred).clone();
                    let mut dp = Tensor::zeros(pt.rows(), 1);
                    for (i, &t) in targets.iter().enumerate() {
                        dp.set(i, 0, scale * (pt.get(i, 0) - t));
                    }
                    self.accumulate(*pred, dp);
                }
            }
        }
    }
}

/// Numerically stable row-wise softmax of a tensor.
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    for r in 0..t.rows() {
        let row = out.row_slice_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_idx(v: Vec<u32>) -> Rc<Vec<u32>> {
        Rc::new(v)
    }

    #[test]
    fn matmul_backward_matches_hand_derivation() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.param(Tensor::from_vec(2, 1, vec![5.0, 6.0]));
        tape.freeze();
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss);
        // d(sum(A·b))/dA = 1 · bᵀ per row; /db = colsum over A rows.
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn relu_masks_negative_gradients() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        tape.freeze();
        let r = tape.relu(a);
        let loss = tape.sum_all(r);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gather_rows_scatters_gradient_back() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        tape.freeze();
        let g = tape.gather_rows(a, rc_idx(vec![2, 0, 2]));
        let loss = tape.sum_all(g);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn scatter_mean_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(3, 1, vec![3.0, 6.0, 9.0]));
        tape.freeze();
        let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]));
        let m = tape.scatter_mean(a, adj);
        assert_eq!(tape.value(m).as_slice(), &[7.5, 0.0, 3.0]);
        let loss = tape.sum_all(m);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0, 0.5, 0.5]);
    }

    #[test]
    fn scatter_weighted_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_vec(3, 1, vec![2.0, 4.0, 8.0]));
        tape.freeze();
        let adj = Rc::new(Adjacency::from_lists(&[vec![1, 2], vec![], vec![0]]));
        let w = Rc::new(vec![0.5, 0.25, 2.0]);
        let out = tape.scatter_weighted(a, adj, w);
        // out[0] = 0.5*4 + 0.25*8 = 4; out[1] = 0; out[2] = 2*2 = 4
        assert_eq!(tape.value(out).as_slice(), &[4.0, 0.0, 4.0]);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        // d a[0] = 2 (via out[2]); d a[1] = 0.5; d a[2] = 0.25
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[2.0, 0.5, 0.25]);
    }

    #[test]
    fn scatter_weighted_with_unit_weights_matches_sum() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let adj = Rc::new(Adjacency::from_lists(&[vec![0, 1]]));
        let out = tape.scatter_weighted(a, adj, Rc::new(vec![1.0, 1.0]));
        assert_eq!(tape.value(out).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_cross_entropy_matches_manual_value() {
        let mut tape = Tape::new();
        let logits = tape.param(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        tape.freeze();
        let loss = tape.softmax_cross_entropy(logits, rc_idx(vec![1]));
        assert!((tape.value(loss).item() - 0.5f32.ln().abs()).abs() < 1e-6);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        assert!((g.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((g.get(0, 1) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn focal_loss_reduces_to_ce_at_gamma_zero() {
        let make = |gamma: Option<f32>| {
            let mut tape = Tape::new();
            let logits = tape.param(Tensor::from_vec(2, 3, vec![0.3, -0.1, 0.7, 1.0, 0.0, -1.0]));
            tape.freeze();
            let t = rc_idx(vec![2, 0]);
            let loss = match gamma {
                Some(g) => tape.focal_loss(logits, t, g),
                None => tape.softmax_cross_entropy(logits, t),
            };
            tape.backward(loss);
            (tape.value(loss).item(), tape.grad(logits).unwrap().clone())
        };
        let (l_focal, g_focal) = make(Some(0.0));
        let (l_ce, g_ce) = make(None);
        assert!((l_focal - l_ce).abs() < 1e-5);
        for (a, b) in g_focal.as_slice().iter().zip(g_ce.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut tape = Tape::new();
        let pred = tape.param(Tensor::from_vec(2, 1, vec![1.0, 3.0]));
        tape.freeze();
        let loss = tape.mse_loss(pred, Rc::new(vec![0.0, 1.0]));
        assert!((tape.value(loss).item() - 2.5).abs() < 1e-6);
        tape.backward(loss);
        assert_eq!(tape.grad(pred).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn block_weighted_sum_selects_blocks() {
        let mut tape = Tape::new();
        // 2 samples, 2 columns, dim 2
        let v = tape.param(Tensor::from_vec(4, 2, vec![1., 0., 0., 1., 2., 2., 3., 3.]));
        let alpha = tape.param(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.5, 0.5]));
        tape.freeze();
        let out = tape.block_weighted_sum(v, alpha);
        assert_eq!(tape.value(out).as_slice(), &[1.0, 0.0, 2.5, 2.5]);
        let loss = tape.sum_all(out);
        tape.backward(loss);
        assert_eq!(tape.grad(alpha).unwrap().as_slice(), &[1.0, 1.0, 4.0, 6.0]);
        assert_eq!(tape.grad(v).unwrap().as_slice(), &[1.0, 1.0, 0.0, 0.0, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn reset_truncates_to_parameters() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::scalar(2.0));
        tape.freeze();
        let b = tape.scale(a, 3.0);
        let loss = tape.sum_all(b);
        tape.backward(loss);
        assert!(tape.grad(a).is_some());
        tape.reset();
        assert!(tape.grad(a).is_none());
        assert_eq!(tape.param_count(), 1);
        // the tape is usable again after reset
        let c = tape.scale(a, 5.0);
        assert_eq!(tape.value(c).item(), 10.0);
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = tape.row_softmax(a);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_inputs_receive_no_gradient() {
        let mut tape = Tape::new();
        let p = tape.param(Tensor::scalar(1.0));
        tape.freeze();
        let c = tape.input(Tensor::scalar(4.0));
        let prod = tape.mul_elem(p, c);
        let loss = tape.sum_all(prod);
        tape.backward(loss);
        assert_eq!(tape.grad(p).unwrap().item(), 4.0);
        assert!(tape.grad(c).is_none());
    }
}

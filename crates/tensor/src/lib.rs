//! # grimp-tensor
//!
//! Dense `f32` tensors with tape-based reverse-mode automatic
//! differentiation — the learning substrate for the GRIMP reproduction.
//!
//! The crate is deliberately small and dependency-light: a [`Tensor`] is a
//! row-major matrix, a [`Tape`] is an arena of operation nodes whose backward
//! rules are match arms (no closures), and the ops cover exactly what the
//! GRIMP architecture needs — dense layers, GraphSAGE neighbor aggregation
//! ([`Tape::scatter_mean`]), embedding lookup ([`Tape::gather_rows`]),
//! batched attention read-out ([`Tape::block_weighted_sum`]) and the dual
//! losses of the multi-task head (softmax cross-entropy / focal loss for
//! categorical tasks, MSE for numerical tasks).
//!
//! ## Example
//!
//! ```
//! use grimp_tensor::{Tape, Tensor, Adam, Mlp};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::rc::Rc;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut tape = Tape::new();
//! let mlp = Mlp::new(&mut tape, &[2, 8, 2], &mut rng);
//! tape.freeze();
//! let mut adam = Adam::new(0.05);
//! for _ in 0..50 {
//!     let x = tape.input(Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]));
//!     let logits = mlp.forward(&mut tape, x);
//!     let loss = tape.softmax_cross_entropy(logits, Rc::new(vec![0, 1, 1, 0]));
//!     tape.backward(loss);
//!     adam.step(&mut tape);
//!     tape.reset();
//! }
//! ```

#![warn(missing_docs)]

mod adjacency;
pub mod backend;
pub mod checkpoint;
pub mod gradcheck;
pub mod init;
mod nn;
mod optim;
mod tape;
mod tensor;
mod workspace;

pub use adjacency::Adjacency;
pub use backend::{make_backend, BackendKind, ParallelBackend, SerialBackend, TensorBackend};
pub use checkpoint::{ByteReader, ByteWriter, CheckpointError};
pub use gradcheck::{check_gradients, GradCheckReport};
pub use nn::{Dense, Mlp};
pub use optim::{Adam, AdamState, Sgd};
pub use tape::{
    block_weighted_sum_into, scatter_mean_into, scatter_weighted_into, softmax_rows,
    softmax_rows_in_place, BackwardStats, Tape, Var,
};
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};

//! Property-based tests of the graph substrate: structural invariants of
//! the heterogeneous table graph and of the embedding generators.

use grimp_graph::{train_embdi, EmbdiConfig, FastTextLike, GraphConfig, NodeLabel, TableGraph};
use grimp_table::{ColumnKind, Schema, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_table() -> impl Strategy<Value = Table> {
    let cell = prop_oneof![
        4 => (0u32..6).prop_map(Some),
        1 => Just(None),
    ];
    proptest::collection::vec(
        (cell.clone(), cell, proptest::option::of(-50i32..50)),
        1..30,
    )
    .prop_map(|rows| {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
            ("x", ColumnKind::Numerical),
        ]);
        let mut t = Table::empty(schema);
        for (a, b, x) in rows {
            let a = a.map(|v| format!("a{v}"));
            let b = b.map(|v| format!("b{v}"));
            let x = x.map(|v| format!("{}", v as f64 / 2.0));
            t.push_str_row(&[a.as_deref(), b.as_deref(), x.as_deref()]);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn graph_structure_invariants(t in arb_table()) {
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        // node layout: RIDs first
        prop_assert_eq!(g.n_rids(), t.n_rows());
        for i in 0..g.n_rids() {
            prop_assert!(matches!(g.label(i), NodeLabel::Rid(r) if *r as usize == i));
        }
        // edge count = non-missing cells
        let non_missing = t.n_rows() * t.n_columns() - t.n_missing();
        prop_assert_eq!(g.n_edges(), non_missing);
        // every edge references a valid RID and a cell node of its own type
        for ty in 0..g.n_edge_types() {
            for &(rid, cell) in &g.edges_of(ty).pairs {
                prop_assert!((rid as usize) < g.n_rids());
                match g.label(cell as usize) {
                    NodeLabel::Cell { col, .. } => prop_assert_eq!(*col as usize, ty),
                    _ => prop_assert!(false, "edge target is not a cell node"),
                }
            }
        }
    }

    #[test]
    fn cell_nodes_are_unique_per_column_value(t in arb_table()) {
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        // distinct cell-node count per column equals the column's distinct
        // (canonicalized) value count
        for j in 0..t.n_columns() {
            let mut keys: Vec<String> = (0..t.n_rows())
                .filter_map(|i| grimp_graph::value_key(&t, i, j, 4))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(g.n_column_cells(j), keys.len());
        }
    }

    #[test]
    fn excluding_cells_only_removes_their_edges(t in arb_table(), sel in proptest::collection::vec((0usize..30, 0usize..3), 0..8)) {
        let excluded: Vec<(usize, usize)> = sel
            .into_iter()
            .filter(|&(i, j)| i < t.n_rows() && j < t.n_columns() && !t.is_missing(i, j))
            .collect();
        let full = TableGraph::build(&t, GraphConfig::default(), &[]);
        let pruned = TableGraph::build(&t, GraphConfig::default(), &excluded);
        let distinct_excluded: std::collections::HashSet<(usize, usize)> =
            excluded.iter().copied().collect();
        prop_assert_eq!(full.n_edges(), pruned.n_edges() + distinct_excluded.len());
        // node sets identical (candidates must survive exclusion)
        prop_assert_eq!(full.n_nodes(), pruned.n_nodes());
    }

    #[test]
    fn delta_built_graph_is_bit_identical_to_from_scratch(
        base in arb_table(),
        delta in arb_table(),
        sel in proptest::collection::vec((0usize..60, 0usize..3), 0..8),
    ) {
        // Concatenate: the delta table's rows are pushed onto the base.
        let mut cat = base.clone();
        for i in 0..delta.n_rows() {
            let row: Vec<Option<String>> = (0..delta.n_columns())
                .map(|j| (!delta.is_missing(i, j)).then(|| delta.display(i, j)))
                .collect();
            let row: Vec<Option<&str>> = row.iter().map(|v| v.as_deref()).collect();
            cat.push_str_row(&row);
        }
        let excluded: Vec<(usize, usize)> = sel
            .into_iter()
            .filter(|&(i, j)| i < cat.n_rows() && j < cat.n_columns())
            .collect();
        let base_excluded: Vec<(usize, usize)> = excluded
            .iter()
            .copied()
            .filter(|&(i, _)| i < base.n_rows())
            .collect();

        let mut grown = TableGraph::build(&base, GraphConfig::default(), &base_excluded);
        grown.append_rows(&cat, &excluded).unwrap();
        let scratch = TableGraph::build(&cat, GraphConfig::default(), &excluded);

        prop_assert_eq!(scratch.n_nodes(), grown.n_nodes());
        for n in 0..scratch.n_nodes() {
            prop_assert_eq!(scratch.label(n), grown.label(n), "node {}", n);
        }
        for c in 0..scratch.n_edge_types() {
            prop_assert_eq!(
                &scratch.edges_of(c).pairs,
                &grown.edges_of(c).pairs,
                "column {}",
                c
            );
            let a: Vec<(String, u32)> = scratch
                .column_cells(c)
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            let b: Vec<(String, u32)> = grown
                .column_cells(c)
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            prop_assert_eq!(a, b, "cell index of column {}", c);
        }
    }

    #[test]
    fn fasttext_is_deterministic_and_normalized(word in "[a-z0-9]{1,12}", dim in 4usize..64, seed in 0u64..50) {
        let ft = FastTextLike::new(dim, seed);
        let a = ft.embed(&word);
        let b = ft.embed(&word);
        prop_assert_eq!(&a, &b);
        let norm: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn embdi_vectors_are_finite_unit_or_zero(t in arb_table(), seed in 0u64..20) {
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let cfg = EmbdiConfig { walks_per_node: 2, walk_length: 6, epochs: 1, ..Default::default() };
        let emb = train_embdi(&g, &t, &cfg, &mut StdRng::seed_from_u64(seed));
        for n in 0..g.n_nodes() {
            let v = emb.node(n);
            prop_assert!(v.iter().all(|x| x.is_finite()));
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            // unit (trained) or zero (isolated node never visited)
            prop_assert!(norm < 1.0 + 1e-3, "norm {}", norm);
        }
    }
}

//! The heterogeneous quasi-bipartite table graph of §3.2.
//!
//! Each tuple is a **RID node**; each distinct (attribute, value) pair is a
//! **cell node** — the same surface value appearing in two attributes gets
//! two nodes (disambiguation). RID and cell nodes are connected by a typed
//! edge whose type is the attribute. `∅` cells contribute no edges, and the
//! caller can exclude additional `(row, col)` cells (validation samples, per
//! §3.6: "We remove all edges incident in the validation step from the graph
//! representation before training").

use std::collections::HashMap;

use grimp_table::{Table, Value};

/// What a graph node represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeLabel {
    /// The record-id node of tuple `row`.
    Rid(u32),
    /// The cell node of a distinct value within one attribute.
    Cell {
        /// Owning attribute index.
        col: u32,
        /// Canonical text of the value (numericals rounded per config).
        text: String,
    },
}

/// Construction options.
#[derive(Clone, Copy, Debug)]
pub struct GraphConfig {
    /// Decimal places used to canonicalize numerical values into cell-node
    /// keys. The paper rounds reals "to a pre-defined number of decimal
    /// places (8 places by default)"; we default to 4 to keep distinct-node
    /// counts close to the published Table 1 scales (see DESIGN.md §8).
    pub numeric_decimals: usize,
    /// Optional cap on distinct-value cell nodes per attribute, applied as
    /// a frequency cutoff: only the most frequent values keep their nodes
    /// (ties broken by first occurrence, so the result is deterministic).
    /// Capped-out values contribute no edges and stop being imputation
    /// candidates — the memory-budget downscaling ladder sets this under
    /// pressure. `None` keeps every distinct value (the paper's graph).
    pub max_cells_per_column: Option<usize>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            numeric_decimals: 4,
            max_cells_per_column: None,
        }
    }
}

/// One typed edge list: pairs `(rid_node, cell_node)` of one attribute.
#[derive(Clone, Debug, Default)]
pub struct TypedEdges {
    /// `(rid node id, cell node id)` pairs.
    pub pairs: Vec<(u32, u32)>,
}

/// The heterogeneous table graph.
#[derive(Clone, Debug)]
pub struct TableGraph {
    n_rows: usize,
    n_cols: usize,
    labels: Vec<NodeLabel>,
    /// Per column: canonical value text → cell node id.
    cell_index: Vec<HashMap<String, u32>>,
    /// Per column: the typed edge list.
    edges: Vec<TypedEdges>,
    config: GraphConfig,
}

/// Canonical text key of a non-null value.
pub fn value_key(table: &Table, row: usize, col: usize, decimals: usize) -> Option<String> {
    match table.get(row, col) {
        Value::Null => None,
        Value::Cat(_) => Some(table.display(row, col)),
        Value::Num(v) => Some(format_rounded(v, decimals)),
    }
}

/// Round-and-format a numerical value the way cell-node keys do.
pub fn format_rounded(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

impl TableGraph {
    /// Build the graph from a dirty table, excluding the given cells (in
    /// addition to `∅` cells, which never produce edges).
    pub fn build(table: &Table, config: GraphConfig, excluded: &[(usize, usize)]) -> Self {
        let n_rows = table.n_rows();
        let n_cols = table.n_columns();
        let excluded: std::collections::HashSet<(usize, usize)> =
            excluded.iter().copied().collect();
        let mut labels: Vec<NodeLabel> = (0..n_rows).map(|i| NodeLabel::Rid(i as u32)).collect();
        let mut cell_index: Vec<HashMap<String, u32>> = vec![HashMap::new(); n_cols];
        let mut edges: Vec<TypedEdges> = vec![TypedEdges::default(); n_cols];

        // First, make sure every value in every attribute domain has a node,
        // even if all its occurrences are excluded — imputation candidates
        // must exist as nodes so they can be scored. Under a cell-node cap
        // only the most frequent values survive (frequency cutoff, ties by
        // first occurrence); node ids still follow first-seen order, so an
        // uncapped build is bit-identical to the historical layout.
        for (col, index) in cell_index.iter_mut().enumerate() {
            let mut order: Vec<String> = Vec::new();
            let mut counts: HashMap<String, usize> = HashMap::new();
            for row in 0..n_rows {
                if let Some(key) = value_key(table, row, col, config.numeric_decimals) {
                    use std::collections::hash_map::Entry;
                    match counts.entry(key) {
                        Entry::Occupied(mut e) => *e.get_mut() += 1,
                        Entry::Vacant(e) => {
                            order.push(e.key().clone());
                            e.insert(1);
                        }
                    }
                }
            }
            let kept: Vec<usize> = match config.max_cells_per_column {
                Some(cap) if order.len() > cap => {
                    let mut ranked: Vec<usize> = (0..order.len()).collect();
                    ranked.sort_by_key(|&i| (std::cmp::Reverse(counts[order[i].as_str()]), i));
                    ranked.truncate(cap);
                    ranked.sort_unstable();
                    ranked
                }
                _ => (0..order.len()).collect(),
            };
            for i in kept {
                let key = order[i].clone();
                let id = labels.len() as u32;
                labels.push(NodeLabel::Cell {
                    col: col as u32,
                    text: key.clone(),
                });
                index.insert(key, id);
            }
        }
        // Then add the typed edges for non-excluded cells. Values capped
        // out of the node set simply contribute no edge.
        for row in 0..n_rows {
            for col in 0..n_cols {
                if excluded.contains(&(row, col)) {
                    continue;
                }
                if let Some(key) = value_key(table, row, col, config.numeric_decimals) {
                    if let Some(&cell) = cell_index[col].get(&key) {
                        edges[col].pairs.push((row as u32, cell));
                    }
                }
            }
        }
        TableGraph {
            n_rows,
            n_cols,
            labels,
            cell_index,
            edges,
            config,
        }
    }

    /// [`TableGraph::build`] wrapped in a [`grimp_obs::names::GRAPH_BUILD`]
    /// span, also emitting node/edge counters into the trace.
    pub fn build_traced(
        table: &Table,
        config: GraphConfig,
        excluded: &[(usize, usize)],
        trace: &mut grimp_obs::Trace<'_>,
    ) -> Self {
        use grimp_obs::names;
        let span = trace.enter(names::GRAPH_BUILD, 0);
        let graph = Self::build(table, config, excluded);
        trace.counter(names::GRAPH_NODES, 0, graph.n_nodes() as u64);
        trace.counter(names::GRAPH_EDGES, 0, graph.n_edges() as u64);
        trace.exit(names::GRAPH_BUILD, 0, span);
        graph
    }

    /// Total node count (RID + cell nodes).
    pub fn n_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of RID nodes (= table rows). RID node ids are `0..n_rids()`.
    pub fn n_rids(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes (= edge types).
    pub fn n_edge_types(&self) -> usize {
        self.n_cols
    }

    /// Total number of typed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.iter().map(|e| e.pairs.len()).sum()
    }

    /// Node label.
    pub fn label(&self, node: usize) -> &NodeLabel {
        &self.labels[node]
    }

    /// The cell node of a canonical value text within a column, if any.
    pub fn cell_node(&self, col: usize, key: &str) -> Option<u32> {
        self.cell_index[col].get(key).copied()
    }

    /// The cell node of a table cell's current value, if non-null.
    pub fn cell_node_of(&self, table: &Table, row: usize, col: usize) -> Option<u32> {
        value_key(table, row, col, self.config.numeric_decimals)
            .and_then(|k| self.cell_node(col, &k))
    }

    /// All cell nodes of one attribute with their canonical texts, in
    /// ascending node-id order. Deterministic ordering matters: consumers
    /// sum floats over this iterator and build sampling structures from it,
    /// so HashMap iteration order must not leak out.
    pub fn column_cells(&self, col: usize) -> impl Iterator<Item = (&str, u32)> {
        let mut cells: Vec<(&str, u32)> = self.cell_index[col]
            .iter()
            .map(|(k, &v)| (k.as_str(), v))
            .collect();
        cells.sort_unstable_by_key(|&(_, v)| v);
        cells.into_iter()
    }

    /// Number of distinct cell nodes of an attribute.
    pub fn n_column_cells(&self, col: usize) -> usize {
        self.cell_index[col].len()
    }

    /// Typed edge list of one attribute.
    pub fn edges_of(&self, col: usize) -> &TypedEdges {
        &self.edges[col]
    }

    /// The construction config.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Symmetric per-type neighbor lists over all nodes: entry `t` maps every
    /// node to its neighbors through edges of type `t` (RID → cells of
    /// column `t`; cell of column `t` → RIDs). The GNN turns these into CSR
    /// adjacencies.
    pub fn neighbor_lists(&self) -> Vec<Vec<Vec<u32>>> {
        let n = self.n_nodes();
        let mut per_type: Vec<Vec<Vec<u32>>> = Vec::with_capacity(self.n_cols);
        for t in 0..self.n_cols {
            let mut lists = vec![Vec::new(); n];
            for &(rid, cell) in &self.edges[t].pairs {
                lists[rid as usize].push(cell);
                lists[cell as usize].push(rid);
            }
            per_type.push(lists);
        }
        per_type
    }

    /// Degree of a node summed over all edge types.
    pub fn total_degree(&self, node: u32) -> usize {
        self.edges
            .iter()
            .flat_map(|e| e.pairs.iter())
            .filter(|&&(r, c)| r == node || c == node)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{ColumnKind, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("country", ColumnKind::Categorical),
            ("year", ColumnKind::Numerical),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![Some("FR"), Some("2015")],
                vec![Some("FR"), Some("2014")],
                vec![None, Some("2015")],
            ],
        )
    }

    #[test]
    fn node_layout_is_rids_then_cells() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        assert_eq!(g.n_rids(), 3);
        // cells: FR (country), 2015, 2014 (year)
        assert_eq!(g.n_nodes(), 3 + 1 + 2);
        assert_eq!(g.label(0), &NodeLabel::Rid(0));
        assert!(matches!(g.label(3), NodeLabel::Cell { .. }));
    }

    #[test]
    fn null_cells_contribute_no_edges() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        // country edges: rows 0, 1 only; year edges: rows 0, 1, 2.
        assert_eq!(g.edges_of(0).pairs.len(), 2);
        assert_eq!(g.edges_of(1).pairs.len(), 3);
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn same_value_in_two_columns_gets_two_nodes() {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(schema, &[vec![Some("x"), Some("x")]]);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let na = g.cell_node(0, "x").unwrap();
        let nb = g.cell_node(1, "x").unwrap();
        assert_ne!(na, nb, "values must be disambiguated per attribute");
    }

    #[test]
    fn excluded_cells_keep_nodes_but_lose_edges() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[(0, 0), (1, 0)]);
        // FR node still exists (it is a candidate for imputation)…
        assert!(g.cell_node(0, "FR").is_some());
        // …but no country edges remain.
        assert_eq!(g.edges_of(0).pairs.len(), 0);
    }

    #[test]
    fn numeric_values_are_rounded_into_keys() {
        let schema = Schema::from_pairs(&[("x", ColumnKind::Numerical)]);
        let t = Table::from_rows(schema, &[vec![Some("1.00001")], vec![Some("1.00002")]]);
        let g = TableGraph::build(
            &t,
            GraphConfig {
                numeric_decimals: 4,
                ..GraphConfig::default()
            },
            &[],
        );
        // both round to "1.0000" → a single cell node
        assert_eq!(g.n_column_cells(0), 1);
        let g8 = TableGraph::build(
            &t,
            GraphConfig {
                numeric_decimals: 8,
                ..GraphConfig::default()
            },
            &[],
        );
        assert_eq!(g8.n_column_cells(0), 2);
    }

    /// 12 rows of column "v": value "a" ×6, "b" ×4, "c" ×1, "d" ×1
    /// (c before d), next to a low-cardinality anchor column.
    fn skewed_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("v", ColumnKind::Categorical),
            ("k", ColumnKind::Categorical),
        ]);
        let vs = ["a", "a", "b", "a", "c", "b", "a", "d", "b", "a", "b", "a"];
        let mut t = Table::empty(schema);
        for (i, v) in vs.iter().enumerate() {
            let k = if i % 2 == 0 { "k0" } else { "k1" };
            t.push_str_row(&[Some(v), Some(k)]);
        }
        t
    }

    #[test]
    fn cell_node_cap_keeps_the_most_frequent_values() {
        let t = skewed_table();
        let cfg = GraphConfig {
            max_cells_per_column: Some(2),
            ..GraphConfig::default()
        };
        let g = TableGraph::build(&t, cfg, &[]);
        assert_eq!(g.n_column_cells(0), 2);
        assert!(g.cell_node(0, "a").is_some());
        assert!(g.cell_node(0, "b").is_some());
        assert!(g.cell_node(0, "c").is_none());
        assert!(g.cell_node(0, "d").is_none());
        // Columns under the cap are untouched.
        assert_eq!(g.n_column_cells(1), 2);
        // Capped-out cells resolve to no node and contribute no edges:
        // 10 "a"/"b" edges survive in column 0, all 12 in column 1.
        assert_eq!(g.cell_node_of(&t, 4, 0), None);
        assert_eq!(g.edges_of(0).pairs.len(), 10);
        assert_eq!(g.edges_of(1).pairs.len(), 12);
    }

    #[test]
    fn cell_node_cap_breaks_frequency_ties_by_first_occurrence() {
        let t = skewed_table();
        let cfg = GraphConfig {
            max_cells_per_column: Some(3),
            ..GraphConfig::default()
        };
        let g = TableGraph::build(&t, cfg, &[]);
        // "c" and "d" both appear once; "c" appears first and wins slot 3.
        assert!(g.cell_node(0, "c").is_some());
        assert!(g.cell_node(0, "d").is_none());
    }

    #[test]
    fn uncapped_build_is_identical_to_a_generous_cap() {
        let t = skewed_table();
        let free = TableGraph::build(&t, GraphConfig::default(), &[]);
        let capped = TableGraph::build(
            &t,
            GraphConfig {
                max_cells_per_column: Some(100),
                ..GraphConfig::default()
            },
            &[],
        );
        assert_eq!(free.n_nodes(), capped.n_nodes());
        for n in 0..free.n_nodes() {
            assert_eq!(free.label(n), capped.label(n), "node {n}");
        }
        for c in 0..2 {
            assert_eq!(free.edges_of(c).pairs, capped.edges_of(c).pairs);
        }
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        for lists in g.neighbor_lists() {
            for (node, neigh) in lists.iter().enumerate() {
                for &m in neigh {
                    assert!(
                        lists[m as usize].contains(&(node as u32)),
                        "edge {node} -> {m} missing its reverse"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_node_of_resolves_current_values() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        assert_eq!(g.cell_node_of(&t, 0, 0), g.cell_node(0, "FR"));
        assert_eq!(g.cell_node_of(&t, 2, 0), None);
    }
}

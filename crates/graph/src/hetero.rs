//! The heterogeneous quasi-bipartite table graph of §3.2.
//!
//! Each tuple is a **RID node**; each distinct (attribute, value) pair is a
//! **cell node** — the same surface value appearing in two attributes gets
//! two nodes (disambiguation). RID and cell nodes are connected by a typed
//! edge whose type is the attribute. `∅` cells contribute no edges, and the
//! caller can exclude additional `(row, col)` cells (validation samples, per
//! §3.6: "We remove all edges incident in the validation step from the graph
//! representation before training").

use std::collections::HashMap;

use grimp_table::{Table, Value};

/// What a graph node represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeLabel {
    /// The record-id node of tuple `row`.
    Rid(u32),
    /// The cell node of a distinct value within one attribute.
    Cell {
        /// Owning attribute index.
        col: u32,
        /// Canonical text of the value (numericals rounded per config).
        text: String,
    },
}

/// Construction options.
#[derive(Clone, Copy, Debug)]
pub struct GraphConfig {
    /// Decimal places used to canonicalize numerical values into cell-node
    /// keys. The paper rounds reals "to a pre-defined number of decimal
    /// places (8 places by default)"; we default to 4 to keep distinct-node
    /// counts close to the published Table 1 scales (see DESIGN.md §8).
    pub numeric_decimals: usize,
    /// Optional cap on distinct-value cell nodes per attribute, applied as
    /// a frequency cutoff: only the most frequent values keep their nodes
    /// (ties broken by first occurrence, so the result is deterministic).
    /// Capped-out values contribute no edges and stop being imputation
    /// candidates — the memory-budget downscaling ladder sets this under
    /// pressure. `None` keeps every distinct value (the paper's graph).
    pub max_cells_per_column: Option<usize>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            numeric_decimals: 4,
            max_cells_per_column: None,
        }
    }
}

/// Why [`TableGraph::append_rows`] refused to apply a delta. Both cases
/// mean "rebuild from scratch instead"; neither leaves the graph modified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphAppendError {
    /// The graph was built with a `max_cells_per_column` frequency cutoff;
    /// appended rows shift the cutoff, so delta/scratch identity cannot be
    /// guaranteed.
    CappedGraph,
    /// The concatenated table does not extend this graph's table (fewer
    /// rows, or a different column count).
    ShapeMismatch {
        /// Rows the graph was built over.
        graph_rows: usize,
        /// Columns the graph was built over.
        graph_cols: usize,
        /// Rows of the offered table.
        table_rows: usize,
        /// Columns of the offered table.
        table_cols: usize,
    },
}

impl std::fmt::Display for GraphAppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphAppendError::CappedGraph => {
                write!(f, "cannot append rows to a value-node-capped graph")
            }
            GraphAppendError::ShapeMismatch {
                graph_rows,
                graph_cols,
                table_rows,
                table_cols,
            } => write!(
                f,
                "table {table_rows}x{table_cols} does not extend the \
                 graph's {graph_rows}x{graph_cols} table"
            ),
        }
    }
}

impl std::error::Error for GraphAppendError {}

/// One typed edge list: pairs `(rid_node, cell_node)` of one attribute.
#[derive(Clone, Debug, Default)]
pub struct TypedEdges {
    /// `(rid node id, cell node id)` pairs.
    pub pairs: Vec<(u32, u32)>,
}

/// The heterogeneous table graph.
#[derive(Clone, Debug)]
pub struct TableGraph {
    n_rows: usize,
    n_cols: usize,
    labels: Vec<NodeLabel>,
    /// Per column: canonical value text → cell node id.
    cell_index: Vec<HashMap<String, u32>>,
    /// Per column: the typed edge list.
    edges: Vec<TypedEdges>,
    config: GraphConfig,
}

/// Canonical text key of a non-null value.
pub fn value_key(table: &Table, row: usize, col: usize, decimals: usize) -> Option<String> {
    match table.get(row, col) {
        Value::Null => None,
        Value::Cat(_) => Some(table.display(row, col)),
        Value::Num(v) => Some(format_rounded(v, decimals)),
    }
}

/// Round-and-format a numerical value the way cell-node keys do.
pub fn format_rounded(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

impl TableGraph {
    /// Build the graph from a dirty table, excluding the given cells (in
    /// addition to `∅` cells, which never produce edges).
    pub fn build(table: &Table, config: GraphConfig, excluded: &[(usize, usize)]) -> Self {
        let n_rows = table.n_rows();
        let n_cols = table.n_columns();
        let excluded: std::collections::HashSet<(usize, usize)> =
            excluded.iter().copied().collect();
        let mut labels: Vec<NodeLabel> = (0..n_rows).map(|i| NodeLabel::Rid(i as u32)).collect();
        let mut cell_index: Vec<HashMap<String, u32>> = vec![HashMap::new(); n_cols];
        let mut edges: Vec<TypedEdges> = vec![TypedEdges::default(); n_cols];

        // First, make sure every value in every attribute domain has a node,
        // even if all its occurrences are excluded — imputation candidates
        // must exist as nodes so they can be scored. Under a cell-node cap
        // only the most frequent values survive (frequency cutoff, ties by
        // first occurrence); node ids still follow first-seen order, so an
        // uncapped build is bit-identical to the historical layout.
        for (col, index) in cell_index.iter_mut().enumerate() {
            let mut order: Vec<String> = Vec::new();
            let mut counts: HashMap<String, usize> = HashMap::new();
            for row in 0..n_rows {
                if let Some(key) = value_key(table, row, col, config.numeric_decimals) {
                    use std::collections::hash_map::Entry;
                    match counts.entry(key) {
                        Entry::Occupied(mut e) => *e.get_mut() += 1,
                        Entry::Vacant(e) => {
                            order.push(e.key().clone());
                            e.insert(1);
                        }
                    }
                }
            }
            let kept: Vec<usize> = match config.max_cells_per_column {
                Some(cap) if order.len() > cap => {
                    let mut ranked: Vec<usize> = (0..order.len()).collect();
                    ranked.sort_by_key(|&i| (std::cmp::Reverse(counts[order[i].as_str()]), i));
                    ranked.truncate(cap);
                    ranked.sort_unstable();
                    ranked
                }
                _ => (0..order.len()).collect(),
            };
            for i in kept {
                let key = order[i].clone();
                let id = labels.len() as u32;
                labels.push(NodeLabel::Cell {
                    col: col as u32,
                    text: key.clone(),
                });
                index.insert(key, id);
            }
        }
        // Then add the typed edges for non-excluded cells. Values capped
        // out of the node set simply contribute no edge.
        for row in 0..n_rows {
            for col in 0..n_cols {
                if excluded.contains(&(row, col)) {
                    continue;
                }
                if let Some(key) = value_key(table, row, col, config.numeric_decimals) {
                    if let Some(&cell) = cell_index[col].get(&key) {
                        edges[col].pairs.push((row as u32, cell));
                    }
                }
            }
        }
        TableGraph {
            n_rows,
            n_cols,
            labels,
            cell_index,
            edges,
            config,
        }
    }

    /// [`TableGraph::build`] wrapped in a [`grimp_obs::names::GRAPH_BUILD`]
    /// span, also emitting node/edge counters into the trace.
    pub fn build_traced(
        table: &Table,
        config: GraphConfig,
        excluded: &[(usize, usize)],
        trace: &mut grimp_obs::Trace<'_>,
    ) -> Self {
        use grimp_obs::names;
        let span = trace.enter(names::GRAPH_BUILD, 0);
        let graph = Self::build(table, config, excluded);
        trace.counter(names::GRAPH_NODES, 0, graph.n_nodes() as u64);
        trace.counter(names::GRAPH_EDGES, 0, graph.n_edges() as u64);
        trace.exit(names::GRAPH_BUILD, 0, span);
        graph
    }

    /// Chunked variant of [`TableGraph::build`]: rows are processed in
    /// blocks of `chunk_rows`, so the transient per-pass state touched at
    /// any moment is bounded by the chunk instead of the whole table. The
    /// output is **bit-identical** to `build` — per-column first-seen order
    /// only depends on row order, which chunk iteration preserves — so the
    /// sampled training path can use it without perturbing node ids.
    pub fn build_chunked(
        table: &Table,
        config: GraphConfig,
        excluded: &[(usize, usize)],
        chunk_rows: usize,
    ) -> Self {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let n_rows = table.n_rows();
        let n_cols = table.n_columns();
        let excluded: std::collections::HashSet<(usize, usize)> =
            excluded.iter().copied().collect();
        let mut labels: Vec<NodeLabel> = (0..n_rows).map(|i| NodeLabel::Rid(i as u32)).collect();
        let mut cell_index: Vec<HashMap<String, u32>> = vec![HashMap::new(); n_cols];
        let mut edges: Vec<TypedEdges> = vec![TypedEdges::default(); n_cols];

        // Pass 1 — domain discovery, one chunk of rows at a time. Counts are
        // order-independent and first-seen order per column follows row
        // order, exactly as in the monolithic pass.
        let mut order: Vec<Vec<String>> = vec![Vec::new(); n_cols];
        let mut counts: Vec<HashMap<String, usize>> = vec![HashMap::new(); n_cols];
        let mut start = 0;
        while start < n_rows {
            let end = (start + chunk_rows).min(n_rows);
            for row in start..end {
                for col in 0..n_cols {
                    if let Some(key) = value_key(table, row, col, config.numeric_decimals) {
                        use std::collections::hash_map::Entry;
                        match counts[col].entry(key) {
                            Entry::Occupied(mut e) => *e.get_mut() += 1,
                            Entry::Vacant(e) => {
                                order[col].push(e.key().clone());
                                e.insert(1);
                            }
                        }
                    }
                }
            }
            start = end;
        }
        // Node assignment — same frequency-cutoff and first-seen tie-break
        // as `build`, column by column so ids interleave identically.
        for (col, index) in cell_index.iter_mut().enumerate() {
            let order = &order[col];
            let counts = &counts[col];
            let kept: Vec<usize> = match config.max_cells_per_column {
                Some(cap) if order.len() > cap => {
                    let mut ranked: Vec<usize> = (0..order.len()).collect();
                    ranked.sort_by_key(|&i| (std::cmp::Reverse(counts[order[i].as_str()]), i));
                    ranked.truncate(cap);
                    ranked.sort_unstable();
                    ranked
                }
                _ => (0..order.len()).collect(),
            };
            for i in kept {
                let key = order[i].clone();
                let id = labels.len() as u32;
                labels.push(NodeLabel::Cell {
                    col: col as u32,
                    text: key.clone(),
                });
                index.insert(key, id);
            }
        }
        // Pass 2 — edges, chunk by chunk, in the same row-major order as
        // the monolithic edge pass.
        let mut start = 0;
        while start < n_rows {
            let end = (start + chunk_rows).min(n_rows);
            for row in start..end {
                for col in 0..n_cols {
                    if excluded.contains(&(row, col)) {
                        continue;
                    }
                    if let Some(key) = value_key(table, row, col, config.numeric_decimals) {
                        if let Some(&cell) = cell_index[col].get(&key) {
                            edges[col].pairs.push((row as u32, cell));
                        }
                    }
                }
            }
            start = end;
        }
        TableGraph {
            n_rows,
            n_cols,
            labels,
            cell_index,
            edges,
            config,
        }
    }

    /// [`TableGraph::build_chunked`] wrapped in a
    /// [`grimp_obs::names::GRAPH_BUILD`] span, mirroring
    /// [`TableGraph::build_traced`].
    pub fn build_chunked_traced(
        table: &Table,
        config: GraphConfig,
        excluded: &[(usize, usize)],
        chunk_rows: usize,
        trace: &mut grimp_obs::Trace<'_>,
    ) -> Self {
        use grimp_obs::names;
        let span = trace.enter(names::GRAPH_BUILD, 0);
        let graph = Self::build_chunked(table, config, excluded, chunk_rows);
        trace.counter(names::GRAPH_NODES, 0, graph.n_nodes() as u64);
        trace.counter(names::GRAPH_EDGES, 0, graph.n_edges() as u64);
        trace.exit(names::GRAPH_BUILD, 0, span);
        graph
    }

    /// Append the trailing rows of `concat` (everything past this graph's
    /// current row count) as a graph delta: new RID nodes, value-node
    /// dictionary growth for first-seen values, and CSR segment append of
    /// the new rows' edges — without rescanning the base rows.
    ///
    /// `concat` must be the base table this graph was built from with the
    /// new rows pushed after it (same columns, same leading rows). The
    /// result is **bit-identical** to a from-scratch [`TableGraph::build`]
    /// of `concat`: a from-scratch build numbers all `n + k` RIDs first and
    /// then every column's cells in first-seen order, so the delta renumbers
    /// the existing cell nodes (RID ids are unchanged) — old cell node `v`
    /// of column `c` shifts by `k + Σ_{c' < c} new_count[c']` — and slots
    /// each column's newly seen values behind its old ones. Edge lists keep
    /// their per-column row-major order with remapped cell ids, then the
    /// appended rows' edges follow.
    ///
    /// `excluded` lists `(row, col)` cells (in `concat` coordinates) that
    /// must not contribute edges; entries for base rows are ignored (the
    /// base build already handled its own exclusions).
    ///
    /// # Errors
    /// [`GraphAppendError::CappedGraph`] when the graph was built with a
    /// `max_cells_per_column` cap — appended rows change the frequency
    /// cutoff, so a capped graph cannot guarantee delta/scratch identity
    /// and the caller must rebuild instead.
    /// [`GraphAppendError::ShapeMismatch`] when `concat` has fewer rows or
    /// a different column count than the graph.
    pub fn append_rows(
        &mut self,
        concat: &Table,
        excluded: &[(usize, usize)],
    ) -> Result<(), GraphAppendError> {
        if self.config.max_cells_per_column.is_some() {
            return Err(GraphAppendError::CappedGraph);
        }
        if concat.n_rows() < self.n_rows || concat.n_columns() != self.n_cols {
            return Err(GraphAppendError::ShapeMismatch {
                graph_rows: self.n_rows,
                graph_cols: self.n_cols,
                table_rows: concat.n_rows(),
                table_cols: concat.n_columns(),
            });
        }
        let base_rows = self.n_rows;
        let k = concat.n_rows() - base_rows;
        if k == 0 {
            return Ok(());
        }
        let excluded: std::collections::HashSet<(usize, usize)> = excluded
            .iter()
            .copied()
            .filter(|&(row, _)| row >= base_rows)
            .collect();

        // Discover each column's newly seen values in appended-row scan
        // order — the order a from-scratch build would first see them in.
        let mut new_keys: Vec<Vec<String>> = vec![Vec::new(); self.n_cols];
        for row in base_rows..concat.n_rows() {
            for (col, keys) in new_keys.iter_mut().enumerate() {
                if let Some(key) = value_key(concat, row, col, self.config.numeric_decimals) {
                    if !self.cell_index[col].contains_key(&key) && !keys.contains(&key) {
                        keys.push(key);
                    }
                }
            }
        }

        // Per-column shift of the existing cell ids: the k new RIDs push
        // every cell node back, and each earlier column's new values push
        // later columns back further.
        let mut shifts: Vec<u32> = Vec::with_capacity(self.n_cols);
        let mut acc = k as u32;
        for keys in &new_keys {
            shifts.push(acc);
            acc += keys.len() as u32;
        }

        // Rebuild the label vector in from-scratch order: all RIDs, then
        // per column its old cells followed by its new ones.
        let old_labels = std::mem::take(&mut self.labels);
        let total = old_labels.len() + k + new_keys.iter().map(Vec::len).sum::<usize>();
        self.labels = Vec::with_capacity(total);
        self.labels
            .extend((0..concat.n_rows()).map(|i| NodeLabel::Rid(i as u32)));
        let mut old_cells = old_labels.into_iter().skip(base_rows);
        for (col, keys) in new_keys.iter().enumerate() {
            for _ in 0..self.cell_index[col].len() {
                self.labels
                    .push(old_cells.next().expect("old cell label present"));
            }
            for key in keys {
                self.labels.push(NodeLabel::Cell {
                    col: col as u32,
                    text: key.clone(),
                });
            }
        }

        // Remap the value index and the existing edges (RID ids are
        // unchanged; only cell ids shift), then register the new values.
        let mut next_new_id: Vec<u32> = Vec::with_capacity(self.n_cols);
        {
            let mut base = concat.n_rows() as u32;
            for (col, keys) in new_keys.iter().enumerate() {
                base += self.cell_index[col].len() as u32;
                next_new_id.push(base);
                base += keys.len() as u32;
            }
        }
        for (col, index) in self.cell_index.iter_mut().enumerate() {
            for id in index.values_mut() {
                *id += shifts[col];
            }
            for (j, key) in new_keys[col].iter().enumerate() {
                index.insert(key.clone(), next_new_id[col] + j as u32);
            }
        }
        for (col, e) in self.edges.iter_mut().enumerate() {
            for (_, cell) in e.pairs.iter_mut() {
                *cell += shifts[col];
            }
        }

        // CSR segment append: the new rows' edges, in the same row-major
        // order the from-scratch edge pass would emit them.
        for row in base_rows..concat.n_rows() {
            for col in 0..self.n_cols {
                if excluded.contains(&(row, col)) {
                    continue;
                }
                if let Some(key) = value_key(concat, row, col, self.config.numeric_decimals) {
                    if let Some(&cell) = self.cell_index[col].get(&key) {
                        self.edges[col].pairs.push((row as u32, cell));
                    }
                }
            }
        }
        self.n_rows = concat.n_rows();
        Ok(())
    }

    /// Total node count (RID + cell nodes).
    pub fn n_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of RID nodes (= table rows). RID node ids are `0..n_rids()`.
    pub fn n_rids(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes (= edge types).
    pub fn n_edge_types(&self) -> usize {
        self.n_cols
    }

    /// Total number of typed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.iter().map(|e| e.pairs.len()).sum()
    }

    /// Node label.
    pub fn label(&self, node: usize) -> &NodeLabel {
        &self.labels[node]
    }

    /// The cell node of a canonical value text within a column, if any.
    pub fn cell_node(&self, col: usize, key: &str) -> Option<u32> {
        self.cell_index[col].get(key).copied()
    }

    /// The cell node of a table cell's current value, if non-null.
    pub fn cell_node_of(&self, table: &Table, row: usize, col: usize) -> Option<u32> {
        value_key(table, row, col, self.config.numeric_decimals)
            .and_then(|k| self.cell_node(col, &k))
    }

    /// All cell nodes of one attribute with their canonical texts, in
    /// ascending node-id order. Deterministic ordering matters: consumers
    /// sum floats over this iterator and build sampling structures from it,
    /// so HashMap iteration order must not leak out.
    pub fn column_cells(&self, col: usize) -> impl Iterator<Item = (&str, u32)> {
        let mut cells: Vec<(&str, u32)> = self.cell_index[col]
            .iter()
            .map(|(k, &v)| (k.as_str(), v))
            .collect();
        cells.sort_unstable_by_key(|&(_, v)| v);
        cells.into_iter()
    }

    /// Number of distinct cell nodes of an attribute.
    pub fn n_column_cells(&self, col: usize) -> usize {
        self.cell_index[col].len()
    }

    /// Typed edge list of one attribute.
    pub fn edges_of(&self, col: usize) -> &TypedEdges {
        &self.edges[col]
    }

    /// The construction config.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Symmetric per-type neighbor lists over all nodes: entry `t` maps every
    /// node to its neighbors through edges of type `t` (RID → cells of
    /// column `t`; cell of column `t` → RIDs). The GNN turns these into CSR
    /// adjacencies.
    pub fn neighbor_lists(&self) -> Vec<Vec<Vec<u32>>> {
        let n = self.n_nodes();
        let mut per_type: Vec<Vec<Vec<u32>>> = Vec::with_capacity(self.n_cols);
        for t in 0..self.n_cols {
            let mut lists = vec![Vec::new(); n];
            for &(rid, cell) in &self.edges[t].pairs {
                lists[rid as usize].push(cell);
                lists[cell as usize].push(rid);
            }
            per_type.push(lists);
        }
        per_type
    }

    /// Degree of a node summed over all edge types.
    pub fn total_degree(&self, node: u32) -> usize {
        self.edges
            .iter()
            .flat_map(|e| e.pairs.iter())
            .filter(|&&(r, c)| r == node || c == node)
            .count()
    }

    /// Per-type CSR adjacencies over all nodes — the packed form of
    /// [`TableGraph::neighbor_lists`] (same symmetric edges, same
    /// deterministic per-node neighbor order). The neighbor sampler reads
    /// these instead of the nested lists so each epoch's resampling is a
    /// cache-friendly linear scan.
    pub fn csr_adjacency(&self) -> Vec<TypeCsr> {
        let n = self.n_nodes();
        self.edges
            .iter()
            .map(|e| {
                let mut offsets = vec![0u32; n + 1];
                for &(rid, cell) in &e.pairs {
                    offsets[rid as usize + 1] += 1;
                    offsets[cell as usize + 1] += 1;
                }
                for i in 0..n {
                    offsets[i + 1] += offsets[i];
                }
                let mut neighbors = vec![0u32; offsets[n] as usize];
                let mut cursor = offsets.clone();
                for &(rid, cell) in &e.pairs {
                    neighbors[cursor[rid as usize] as usize] = cell;
                    cursor[rid as usize] += 1;
                    neighbors[cursor[cell as usize] as usize] = rid;
                    cursor[cell as usize] += 1;
                }
                TypeCsr { offsets, neighbors }
            })
            .collect()
    }
}

/// Compressed-sparse-row adjacency of one edge type, symmetric like
/// [`TableGraph::neighbor_lists`]: RID nodes point at the column's cell
/// nodes and vice versa.
#[derive(Clone, Debug)]
pub struct TypeCsr {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbor ids, per-node order matching the edge list.
    neighbors: Vec<u32>,
}

impl TypeCsr {
    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of `node` through this edge type.
    pub fn degree(&self, node: usize) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    /// The neighbors of `node` through this edge type.
    pub fn neighbors_of(&self, node: usize) -> &[u32] {
        &self.neighbors[self.offsets[node] as usize..self.offsets[node + 1] as usize]
    }
}

/// SplitMix64 — the statelessly seedable mixer the sampler derives its
/// per-(epoch, type, node) streams from. Deliberately independent of the
/// training RNG so enabling sampling cannot shift the main draw order.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-epoch neighbor sampler over [`TypeCsr`] edge sets.
///
/// For every epoch it produces per-type neighbor lists shaped exactly like
/// [`TableGraph::neighbor_lists`], but with every node's neighborhood capped
/// at `fanout` via reservoir sampling (uniform without replacement). The
/// random stream of a node is derived purely from `(seed, epoch, type,
/// node)` with SplitMix64, so the sample is:
///
/// - **reproducible** — same seed + epoch ⇒ bit-identical lists, on any
///   backend and at any thread count;
/// - **epoch-indexed** — consecutive epochs see different neighborhoods,
///   which is what makes the expectation over epochs cover every edge;
/// - **isolated** — no draws are taken from the training RNG, so full-batch
///   runs are unaffected by the sampler's existence.
///
/// Output buffers are allocated once in [`NeighborSampler::new`] (capacity
/// `min(degree, fanout)` per node, which is invariant across epochs) and
/// refilled in place: after the first call to
/// [`NeighborSampler::sample_epoch`] no further allocation happens — the
/// grow-once contract the training loop's 0-allocs invariant relies on.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    seed: u64,
    fanout: usize,
    csr: Vec<TypeCsr>,
    lists: Vec<Vec<Vec<u32>>>,
}

impl NeighborSampler {
    /// Snapshot the graph's CSR edge sets and pre-size the per-epoch output
    /// buffers. `fanout` must be positive.
    pub fn new(graph: &TableGraph, seed: u64, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        let csr = graph.csr_adjacency();
        let n = graph.n_nodes();
        let lists = csr
            .iter()
            .map(|t| {
                (0..n)
                    .map(|v| Vec::with_capacity(t.degree(v).min(fanout)))
                    .collect()
            })
            .collect();
        NeighborSampler {
            seed,
            fanout,
            csr,
            lists,
        }
    }

    /// The fanout cap the sampler was built with.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Resample every node's neighborhood for `epoch`, refilling the
    /// internal buffers. Returns the total number of directed sampled
    /// edges (the sum of all list lengths).
    pub fn sample_epoch(&mut self, epoch: u64) -> u64 {
        let mut total = 0u64;
        for (t, csr) in self.csr.iter().enumerate() {
            let out = &mut self.lists[t];
            for (v, list) in out.iter_mut().enumerate() {
                let neigh = csr.neighbors_of(v);
                list.clear();
                if neigh.len() <= self.fanout {
                    list.extend_from_slice(neigh);
                } else {
                    // Reservoir sampling with a per-(seed, epoch, type,
                    // node) stream: uniform without replacement, O(degree),
                    // and entirely within the preallocated capacity.
                    let mut state = self.seed;
                    state = splitmix64(state ^ epoch);
                    state = splitmix64(state ^ t as u64);
                    state = splitmix64(state ^ v as u64);
                    list.extend_from_slice(&neigh[..self.fanout]);
                    for (i, &cand) in neigh.iter().enumerate().skip(self.fanout) {
                        state = splitmix64(state);
                        let j = (state % (i as u64 + 1)) as usize;
                        if j < self.fanout {
                            list[j] = cand;
                        }
                    }
                }
                total += list.len() as u64;
            }
        }
        total
    }

    /// The sampled per-type neighbor lists of the last
    /// [`NeighborSampler::sample_epoch`] call, shaped like
    /// [`TableGraph::neighbor_lists`].
    pub fn lists(&self) -> &[Vec<Vec<u32>>] {
        &self.lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{ColumnKind, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("country", ColumnKind::Categorical),
            ("year", ColumnKind::Numerical),
        ]);
        Table::from_rows(
            schema,
            &[
                vec![Some("FR"), Some("2015")],
                vec![Some("FR"), Some("2014")],
                vec![None, Some("2015")],
            ],
        )
    }

    #[test]
    fn node_layout_is_rids_then_cells() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        assert_eq!(g.n_rids(), 3);
        // cells: FR (country), 2015, 2014 (year)
        assert_eq!(g.n_nodes(), 3 + 1 + 2);
        assert_eq!(g.label(0), &NodeLabel::Rid(0));
        assert!(matches!(g.label(3), NodeLabel::Cell { .. }));
    }

    #[test]
    fn null_cells_contribute_no_edges() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        // country edges: rows 0, 1 only; year edges: rows 0, 1, 2.
        assert_eq!(g.edges_of(0).pairs.len(), 2);
        assert_eq!(g.edges_of(1).pairs.len(), 3);
        assert_eq!(g.n_edges(), 5);
    }

    #[test]
    fn same_value_in_two_columns_gets_two_nodes() {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(schema, &[vec![Some("x"), Some("x")]]);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let na = g.cell_node(0, "x").unwrap();
        let nb = g.cell_node(1, "x").unwrap();
        assert_ne!(na, nb, "values must be disambiguated per attribute");
    }

    #[test]
    fn excluded_cells_keep_nodes_but_lose_edges() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[(0, 0), (1, 0)]);
        // FR node still exists (it is a candidate for imputation)…
        assert!(g.cell_node(0, "FR").is_some());
        // …but no country edges remain.
        assert_eq!(g.edges_of(0).pairs.len(), 0);
    }

    #[test]
    fn numeric_values_are_rounded_into_keys() {
        let schema = Schema::from_pairs(&[("x", ColumnKind::Numerical)]);
        let t = Table::from_rows(schema, &[vec![Some("1.00001")], vec![Some("1.00002")]]);
        let g = TableGraph::build(
            &t,
            GraphConfig {
                numeric_decimals: 4,
                ..GraphConfig::default()
            },
            &[],
        );
        // both round to "1.0000" → a single cell node
        assert_eq!(g.n_column_cells(0), 1);
        let g8 = TableGraph::build(
            &t,
            GraphConfig {
                numeric_decimals: 8,
                ..GraphConfig::default()
            },
            &[],
        );
        assert_eq!(g8.n_column_cells(0), 2);
    }

    /// 12 rows of column "v": value "a" ×6, "b" ×4, "c" ×1, "d" ×1
    /// (c before d), next to a low-cardinality anchor column.
    fn skewed_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("v", ColumnKind::Categorical),
            ("k", ColumnKind::Categorical),
        ]);
        let vs = ["a", "a", "b", "a", "c", "b", "a", "d", "b", "a", "b", "a"];
        let mut t = Table::empty(schema);
        for (i, v) in vs.iter().enumerate() {
            let k = if i % 2 == 0 { "k0" } else { "k1" };
            t.push_str_row(&[Some(v), Some(k)]);
        }
        t
    }

    #[test]
    fn cell_node_cap_keeps_the_most_frequent_values() {
        let t = skewed_table();
        let cfg = GraphConfig {
            max_cells_per_column: Some(2),
            ..GraphConfig::default()
        };
        let g = TableGraph::build(&t, cfg, &[]);
        assert_eq!(g.n_column_cells(0), 2);
        assert!(g.cell_node(0, "a").is_some());
        assert!(g.cell_node(0, "b").is_some());
        assert!(g.cell_node(0, "c").is_none());
        assert!(g.cell_node(0, "d").is_none());
        // Columns under the cap are untouched.
        assert_eq!(g.n_column_cells(1), 2);
        // Capped-out cells resolve to no node and contribute no edges:
        // 10 "a"/"b" edges survive in column 0, all 12 in column 1.
        assert_eq!(g.cell_node_of(&t, 4, 0), None);
        assert_eq!(g.edges_of(0).pairs.len(), 10);
        assert_eq!(g.edges_of(1).pairs.len(), 12);
    }

    #[test]
    fn cell_node_cap_breaks_frequency_ties_by_first_occurrence() {
        let t = skewed_table();
        let cfg = GraphConfig {
            max_cells_per_column: Some(3),
            ..GraphConfig::default()
        };
        let g = TableGraph::build(&t, cfg, &[]);
        // "c" and "d" both appear once; "c" appears first and wins slot 3.
        assert!(g.cell_node(0, "c").is_some());
        assert!(g.cell_node(0, "d").is_none());
    }

    #[test]
    fn uncapped_build_is_identical_to_a_generous_cap() {
        let t = skewed_table();
        let free = TableGraph::build(&t, GraphConfig::default(), &[]);
        let capped = TableGraph::build(
            &t,
            GraphConfig {
                max_cells_per_column: Some(100),
                ..GraphConfig::default()
            },
            &[],
        );
        assert_eq!(free.n_nodes(), capped.n_nodes());
        for n in 0..free.n_nodes() {
            assert_eq!(free.label(n), capped.label(n), "node {n}");
        }
        for c in 0..2 {
            assert_eq!(free.edges_of(c).pairs, capped.edges_of(c).pairs);
        }
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        for lists in g.neighbor_lists() {
            for (node, neigh) in lists.iter().enumerate() {
                for &m in neigh {
                    assert!(
                        lists[m as usize].contains(&(node as u32)),
                        "edge {node} -> {m} missing its reverse"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_node_of_resolves_current_values() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        assert_eq!(g.cell_node_of(&t, 0, 0), g.cell_node(0, "FR"));
        assert_eq!(g.cell_node_of(&t, 2, 0), None);
    }

    fn assert_graphs_identical(a: &TableGraph, b: &TableGraph) {
        assert_eq!(a.n_nodes(), b.n_nodes());
        for n in 0..a.n_nodes() {
            assert_eq!(a.label(n), b.label(n), "node {n}");
        }
        assert_eq!(a.n_edge_types(), b.n_edge_types());
        for c in 0..a.n_edge_types() {
            assert_eq!(a.edges_of(c).pairs, b.edges_of(c).pairs, "column {c}");
        }
    }

    #[test]
    fn chunked_build_is_bit_identical_to_monolithic() {
        let t = skewed_table();
        let mono = TableGraph::build(&t, GraphConfig::default(), &[]);
        for chunk in [1, 2, 5, 12, 100] {
            let chunked = TableGraph::build_chunked(&t, GraphConfig::default(), &[], chunk);
            assert_graphs_identical(&mono, &chunked);
        }
    }

    #[test]
    fn chunked_build_matches_under_cap_and_exclusions() {
        let t = skewed_table();
        let cfg = GraphConfig {
            max_cells_per_column: Some(2),
            ..GraphConfig::default()
        };
        let excluded = [(0, 0), (3, 1), (7, 0)];
        let mono = TableGraph::build(&t, cfg, &excluded);
        let chunked = TableGraph::build_chunked(&t, cfg, &excluded, 3);
        assert_graphs_identical(&mono, &chunked);
    }

    /// Push `rows` onto a clone of `base` and return the concatenation.
    fn concat(base: &Table, rows: &[Vec<Option<&str>>]) -> Table {
        let mut t = base.clone();
        for row in rows {
            t.push_str_row(row);
        }
        t
    }

    #[test]
    fn append_rows_matches_from_scratch_build() {
        let base = table();
        let cat = concat(
            &base,
            &[
                vec![Some("IT"), Some("2015")], // new country, old year
                vec![Some("FR"), None],         // old country, null
                vec![Some("IT"), Some("1999")], // both new in their columns
            ],
        );
        let mut delta = TableGraph::build(&base, GraphConfig::default(), &[]);
        delta.append_rows(&cat, &[]).unwrap();
        let scratch = TableGraph::build(&cat, GraphConfig::default(), &[]);
        assert_graphs_identical(&scratch, &delta);
        assert_eq!(delta.n_rids(), 6);
        assert_eq!(delta.cell_node(0, "IT"), scratch.cell_node(0, "IT"));
    }

    #[test]
    fn append_rows_respects_appended_row_exclusions() {
        let base = table();
        let cat = concat(&base, &[vec![Some("IT"), Some("2015")]]);
        // Excluding a base cell is a no-op (already handled at base build);
        // excluding an appended cell drops its edge but keeps the node.
        let excluded = [(0, 0), (3, 0)];
        let mut delta = TableGraph::build(&base, GraphConfig::default(), &[]);
        delta.append_rows(&cat, &excluded).unwrap();
        let scratch = TableGraph::build(&cat, GraphConfig::default(), &[(3, 0)]);
        assert_graphs_identical(&scratch, &delta);
        assert!(delta.cell_node(0, "IT").is_some());
        assert!(!delta.edges_of(0).pairs.iter().any(|&(r, _)| r == 3));
    }

    #[test]
    fn append_rows_of_zero_rows_is_a_no_op() {
        let base = table();
        let mut delta = TableGraph::build(&base, GraphConfig::default(), &[]);
        delta.append_rows(&base, &[]).unwrap();
        let scratch = TableGraph::build(&base, GraphConfig::default(), &[]);
        assert_graphs_identical(&scratch, &delta);
    }

    #[test]
    fn append_rows_rejects_capped_and_mismatched_graphs() {
        let base = table();
        let cat = concat(&base, &[vec![Some("IT"), Some("2015")]]);
        let cfg = GraphConfig {
            max_cells_per_column: Some(2),
            ..GraphConfig::default()
        };
        let mut capped = TableGraph::build(&base, cfg, &[]);
        assert_eq!(
            capped.append_rows(&cat, &[]),
            Err(GraphAppendError::CappedGraph)
        );
        let mut g = TableGraph::build(&cat, GraphConfig::default(), &[]);
        assert!(matches!(
            g.append_rows(&base, &[]),
            Err(GraphAppendError::ShapeMismatch { .. })
        ));
        // A rejected append leaves the graph untouched.
        let scratch = TableGraph::build(&cat, GraphConfig::default(), &[]);
        assert_graphs_identical(&scratch, &g);
    }

    #[test]
    fn chained_appends_match_one_from_scratch_build() {
        let base = skewed_table();
        let step1 = {
            let mut t = base.clone();
            t.push_str_row(&[Some("e"), Some("k0")]);
            t.push_str_row(&[Some("a"), Some("k2")]);
            t
        };
        let step2 = {
            let mut t = step1.clone();
            t.push_str_row(&[None, Some("k2")]);
            t.push_str_row(&[Some("f"), None]);
            t
        };
        let mut delta = TableGraph::build(&base, GraphConfig::default(), &[]);
        delta.append_rows(&step1, &[]).unwrap();
        delta.append_rows(&step2, &[]).unwrap();
        let scratch = TableGraph::build(&step2, GraphConfig::default(), &[]);
        assert_graphs_identical(&scratch, &delta);
    }

    #[test]
    fn csr_adjacency_matches_neighbor_lists() {
        let g = TableGraph::build(&skewed_table(), GraphConfig::default(), &[]);
        let lists = g.neighbor_lists();
        let csr = g.csr_adjacency();
        assert_eq!(lists.len(), csr.len());
        for (t, type_csr) in csr.iter().enumerate() {
            assert_eq!(type_csr.n_nodes(), g.n_nodes());
            for (v, list) in lists[t].iter().enumerate() {
                assert_eq!(
                    type_csr.neighbors_of(v),
                    list.as_slice(),
                    "type {t} node {v}"
                );
                assert_eq!(type_csr.degree(v), list.len());
            }
        }
    }

    #[test]
    fn sampler_caps_fanout_and_subsets_the_true_neighborhood() {
        let g = TableGraph::build(&skewed_table(), GraphConfig::default(), &[]);
        let full = g.neighbor_lists();
        let fanout = 2;
        let mut s = NeighborSampler::new(&g, 7, fanout);
        let total = s.sample_epoch(0);
        let mut seen = 0u64;
        for (t, lists) in s.lists().iter().enumerate() {
            for (v, list) in lists.iter().enumerate() {
                assert!(list.len() <= fanout, "type {t} node {v} exceeds fanout");
                assert_eq!(list.len(), full[t][v].len().min(fanout));
                for &m in list {
                    assert!(full[t][v].contains(&m), "sampled edge not in graph");
                }
                // sampling without replacement: no duplicate neighbors
                // beyond what the true multiset already contains
                let mut sorted = list.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), list.len(), "duplicate sampled neighbor");
                seen += list.len() as u64;
            }
        }
        assert_eq!(total, seen);
    }

    #[test]
    fn sampler_is_deterministic_per_epoch_and_varies_across_epochs() {
        let g = TableGraph::build(&skewed_table(), GraphConfig::default(), &[]);
        let mut a = NeighborSampler::new(&g, 42, 2);
        let mut b = NeighborSampler::new(&g, 42, 2);
        a.sample_epoch(3);
        b.sample_epoch(3);
        assert_eq!(a.lists(), b.lists(), "same seed + epoch must agree");

        // replaying an epoch after sampling others reproduces it exactly
        let third: Vec<Vec<Vec<u32>>> = a.lists().to_vec();
        a.sample_epoch(4);
        a.sample_epoch(9);
        a.sample_epoch(3);
        assert_eq!(a.lists(), third.as_slice(), "epoch replay must be stable");

        // different epochs (or seeds) must not all collapse to one sample
        b.sample_epoch(4);
        assert_ne!(a.lists(), b.lists(), "epochs 3 and 4 sampled identically");
        let mut c = NeighborSampler::new(&g, 43, 2);
        c.sample_epoch(3);
        assert_ne!(a.lists(), c.lists(), "seeds 42 and 43 sampled identically");
    }

    #[test]
    fn sampler_keeps_small_neighborhoods_whole() {
        let g = TableGraph::build(&table(), GraphConfig::default(), &[]);
        let full = g.neighbor_lists();
        // fanout larger than any degree: the sample is the full graph
        let mut s = NeighborSampler::new(&g, 0, 64);
        let total = s.sample_epoch(0);
        assert_eq!(s.lists(), full.as_slice());
        assert_eq!(
            total,
            full.iter().flatten().map(|l| l.len() as u64).sum::<u64>()
        );
    }
}

//! Initial node features for the GNN (paper §3.4, "Pre-Trained Features").
//!
//! Three strategies: random initialization, FastText-substitute hashed
//! n-gram embeddings (GRIMP-FT), and EMBDI local embeddings (GRIMP-E). In
//! every case, a RID node's vector is the average of its cells' vectors and
//! each attribute's vector (used by the attention matrices `Q`) is the
//! average of the vectors of the values in the attribute.

use rand::Rng;

use grimp_table::Table;

use crate::embdi::{train_embdi, EmbdiConfig};
use crate::fasttext::{l2_normalize, FastTextLike};
use crate::hetero::{NodeLabel, TableGraph};

/// Which pre-trained feature strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSource {
    /// Random unit vectors.
    Random,
    /// Hashed character-n-gram embeddings (FastText substitute, GRIMP-FT).
    FastText,
    /// EMBDI random-walk skip-gram embeddings (GRIMP-E).
    Embdi,
}

impl FeatureSource {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSource::Random => "rand",
            FeatureSource::FastText => "ft",
            FeatureSource::Embdi => "embdi",
        }
    }
}

/// Initial features for every graph node plus per-attribute vectors.
#[derive(Clone, Debug)]
pub struct NodeFeatures {
    /// Dimensionality of every vector.
    pub dim: usize,
    /// Row-major `n_nodes × dim` feature matrix.
    pub node_matrix: Vec<f32>,
    /// Row-major `n_cols × dim` attribute matrix (for attention `Q`).
    pub attribute_matrix: Vec<f32>,
}

impl NodeFeatures {
    /// Feature vector of node `n`.
    pub fn node(&self, n: usize) -> &[f32] {
        &self.node_matrix[n * self.dim..(n + 1) * self.dim]
    }

    /// Feature vector of attribute `j`.
    pub fn attribute(&self, j: usize) -> &[f32] {
        &self.attribute_matrix[j * self.dim..(j + 1) * self.dim]
    }
}

/// Build initial features for `graph` using `source`.
///
/// For [`FeatureSource::Embdi`], `embdi_cfg` controls the walk/SGNS stage
/// (its `dim` field is overridden by `dim`).
pub fn build_features(
    graph: &TableGraph,
    table: &Table,
    source: FeatureSource,
    dim: usize,
    embdi_cfg: &EmbdiConfig,
    rng: &mut impl Rng,
) -> NodeFeatures {
    match source {
        FeatureSource::Random => random_features(graph, dim, rng),
        FeatureSource::FastText => fasttext_features(graph, dim, rng.gen()),
        FeatureSource::Embdi => {
            let cfg = EmbdiConfig { dim, ..*embdi_cfg };
            let emb = train_embdi(graph, table, &cfg, rng);
            NodeFeatures {
                dim,
                node_matrix: emb.node_vectors,
                attribute_matrix: emb.attribute_vectors,
            }
        }
    }
}

/// [`build_features`] wrapped in a [`grimp_obs::names::FEATURE_INIT`] span,
/// also emitting the feature dimensionality as a counter.
pub fn build_features_traced(
    graph: &TableGraph,
    table: &Table,
    source: FeatureSource,
    dim: usize,
    embdi_cfg: &EmbdiConfig,
    rng: &mut impl Rng,
    trace: &mut grimp_obs::Trace<'_>,
) -> NodeFeatures {
    use grimp_obs::names;
    let span = trace.enter(names::FEATURE_INIT, 0);
    let features = build_features(graph, table, source, dim, embdi_cfg, rng);
    trace.counter(names::FEATURE_DIM, 0, features.dim as u64);
    trace.exit(names::FEATURE_INIT, 0, span);
    features
}

fn random_features(graph: &TableGraph, dim: usize, rng: &mut impl Rng) -> NodeFeatures {
    let n = graph.n_nodes();
    let mut node_matrix: Vec<f32> = (0..n * dim).map(|_| rng.gen::<f32>() - 0.5).collect();
    for chunk in node_matrix.chunks_mut(dim) {
        l2_normalize(chunk);
    }
    let attribute_matrix = average_attribute_vectors(graph, dim, &node_matrix);
    NodeFeatures {
        dim,
        node_matrix,
        attribute_matrix,
    }
}

/// FastText-substitute features with an explicit seed. Unlike
/// [`build_features`], this is **inductive**: the same `(dim, seed)` maps
/// the same value text to the same vector on *any* graph, which is what
/// lets a trained model be reused on unseen tables.
pub fn fasttext_features(graph: &TableGraph, dim: usize, seed: u64) -> NodeFeatures {
    let ft = FastTextLike::new(dim, seed);
    let n = graph.n_nodes();
    let mut node_matrix = vec![0.0f32; n * dim];
    // Cell nodes: embed their text.
    for node in 0..n {
        if let NodeLabel::Cell { text, .. } = graph.label(node) {
            node_matrix[node * dim..(node + 1) * dim].copy_from_slice(&ft.embed(text));
        }
    }
    // RID nodes: average of connected cell vectors.
    let mut counts = vec![0usize; graph.n_rids()];
    for t in 0..graph.n_edge_types() {
        for &(rid, cell) in &graph.edges_of(t).pairs {
            let (rid, cell) = (rid as usize, cell as usize);
            for d in 0..dim {
                node_matrix[rid * dim + d] += node_matrix[cell * dim + d];
            }
            counts[rid] += 1;
        }
    }
    for rid in 0..graph.n_rids() {
        let chunk = &mut node_matrix[rid * dim..(rid + 1) * dim];
        if counts[rid] > 0 {
            let inv = 1.0 / counts[rid] as f32;
            chunk.iter_mut().for_each(|v| *v *= inv);
        }
        l2_normalize(chunk);
    }
    let attribute_matrix = average_attribute_vectors(graph, dim, &node_matrix);
    NodeFeatures {
        dim,
        node_matrix,
        attribute_matrix,
    }
}

/// Attribute vector = mean of the attribute's cell-node vectors.
fn average_attribute_vectors(graph: &TableGraph, dim: usize, node_matrix: &[f32]) -> Vec<f32> {
    let n_cols = graph.n_edge_types();
    let mut attr = vec![0.0f32; n_cols * dim];
    for t in 0..n_cols {
        let mut count = 0usize;
        for (_, cell) in graph.column_cells(t) {
            let cell = cell as usize;
            for d in 0..dim {
                attr[t * dim + d] += node_matrix[cell * dim + d];
            }
            count += 1;
        }
        let chunk = &mut attr[t * dim..(t + 1) * dim];
        if count > 0 {
            let inv = 1.0 / count as f32;
            chunk.iter_mut().for_each(|v| *v *= inv);
        }
        l2_normalize(chunk);
    }
    attr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::GraphConfig;
    use grimp_table::{ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        Table::from_rows(
            schema,
            &[
                vec![Some("alpha"), Some("1.0")],
                vec![Some("beta"), Some("2.0")],
                vec![None, Some("1.0")],
            ],
        )
    }

    #[test]
    fn all_sources_produce_full_feature_sets() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        for source in [
            FeatureSource::Random,
            FeatureSource::FastText,
            FeatureSource::Embdi,
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let f = build_features(&g, &t, source, 16, &EmbdiConfig::default(), &mut rng);
            assert_eq!(f.dim, 16);
            assert_eq!(f.node_matrix.len(), g.n_nodes() * 16, "{source:?}");
            assert_eq!(f.attribute_matrix.len(), 2 * 16, "{source:?}");
            assert!(f.node_matrix.iter().all(|v| v.is_finite()), "{source:?}");
        }
    }

    #[test]
    fn fasttext_rid_features_average_their_cells() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let f = fasttext_features(&g, 16, 42);
        // RID 2 is connected only to the "1.0000" cell of column x, so its
        // vector equals that cell's (both unit-normalized).
        let cell = g.cell_node_of(&t, 2, 1).unwrap() as usize;
        for d in 0..16 {
            assert!((f.node(2)[d] - f.node(cell)[d]).abs() < 1e-5);
        }
    }

    #[test]
    fn rows_sharing_values_have_similar_fasttext_features() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let f = fasttext_features(&g, 32, 42);
        let cos = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(&x, &y)| x * y).sum() };
        // rows 0 and 2 share the value 1.0 in column x; rows 1 and 2 share none
        let sim_02 = cos(f.node(0), f.node(2));
        let sim_12 = cos(f.node(1), f.node(2));
        assert!(sim_02 > sim_12, "{sim_02} <= {sim_12}");
    }

    #[test]
    fn random_features_are_unit_norm() {
        let t = table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let f = random_features(&g, 8, &mut StdRng::seed_from_u64(1));
        for n in 0..g.n_nodes() {
            let norm: f32 = f.node(n).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }
}

//! # grimp-graph
//!
//! The graph substrate of the GRIMP reproduction:
//!
//! - [`TableGraph`] — the heterogeneous quasi-bipartite graph of §3.2
//!   (RID nodes + attribute-disambiguated cell nodes, one typed edge set per
//!   attribute, validation/test edges removable);
//! - [`FastTextLike`] — hashed character-n-gram embeddings substituting the
//!   pre-trained FastText features of GRIMP-FT (see DESIGN.md §3);
//! - [`train_embdi`] — EMBDI-style weighted random walks + skip-gram with
//!   negative sampling, including GRIMP's "possible imputation" null edges
//!   (GRIMP-E);
//! - [`build_features`] — the three feature-initialization strategies of
//!   §3.4 behind one API.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod embdi;
pub mod fasttext;
pub mod features;
pub mod hetero;

pub use embdi::{train_embdi, EmbdiConfig, EmbdiEmbeddings};
pub use fasttext::FastTextLike;
pub use features::{
    build_features, build_features_traced, fasttext_features, FeatureSource, NodeFeatures,
};
pub use hetero::{
    format_rounded, value_key, GraphAppendError, GraphConfig, NeighborSampler, NodeLabel,
    TableGraph, TypeCsr, TypedEdges,
};

//! FastText-substitute pre-trained features: hashed character-n-gram
//! embeddings.
//!
//! The paper's GRIMP-FT variant initializes node features with FastText
//! vectors. Pre-trained FastText is unavailable offline, so we keep exactly
//! the mechanism that matters for imputation — *subword* composition, which
//! maps surface-similar strings (typos, shared prefixes/suffixes, numbers
//! with common digits) to nearby vectors — and drop the corpus pre-training:
//! each character n-gram (n ∈ 3..=5, plus the whole token with boundary
//! markers) hashes to a deterministic pseudo-random vector; a string's
//! embedding is the L2-normalized sum of its n-gram vectors. See DESIGN.md §3
//! for the substitution rationale.

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 step: turns a hash into a stream of pseudo-random u64s.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Accumulate the deterministic vector of one n-gram into `acc`.
fn add_ngram_vector(acc: &mut [f32], gram: &[u8], seed: u64) {
    let mut state = fnv1a(gram, seed);
    for slot in acc.iter_mut() {
        let r = splitmix64(&mut state);
        // map to roughly N(0, 1) via sum of two uniforms − 1 (cheap, smooth)
        let u1 = (r >> 32) as f32 / u32::MAX as f32;
        let u2 = (r & 0xffff_ffff) as f32 / u32::MAX as f32;
        *slot += u1 + u2 - 1.0;
    }
}

/// Hashed n-gram embedding generator.
#[derive(Clone, Copy, Debug)]
pub struct FastTextLike {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Hash seed; different seeds give independent embedding spaces.
    pub seed: u64,
}

impl FastTextLike {
    /// A generator with the given dimensionality and seed.
    pub fn new(dim: usize, seed: u64) -> Self {
        FastTextLike { dim, seed }
    }

    /// Embed one token. Deterministic in `(text, dim, seed)`.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        // boundary-marked token, as FastText does with `<word>`
        let marked: Vec<u8> = format!("<{text}>").into_bytes();
        add_ngram_vector(&mut acc, &marked, self.seed);
        for n in 3..=5usize {
            if marked.len() < n {
                break;
            }
            for gram in marked.windows(n) {
                add_ngram_vector(&mut acc, gram, self.seed);
            }
        }
        l2_normalize(&mut acc);
        acc
    }

    /// Cosine similarity of two embedded tokens.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        let va = self.embed(a);
        let vb = self.embed(b);
        va.iter().zip(&vb).map(|(&x, &y)| x * y).sum()
    }
}

/// Normalize a vector to unit L2 norm in place (no-op on the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic() {
        let ft = FastTextLike::new(32, 7);
        assert_eq!(ft.embed("France"), ft.embed("France"));
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let a = FastTextLike::new(32, 1).embed("France");
        let b = FastTextLike::new(32, 2).embed("France");
        assert_ne!(a, b);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let ft = FastTextLike::new(64, 0);
        for word in ["a", "hello", "12345.678", ""] {
            let v = ft.embed(word);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "norm of {word:?} = {norm}");
        }
    }

    #[test]
    fn typo_stays_closer_than_unrelated_word() {
        // the property the typo-robustness experiment relies on
        let ft = FastTextLike::new(64, 0);
        let typo_sim = ft.similarity("imputation", "imputaxtion");
        let unrelated_sim = ft.similarity("imputation", "zebra");
        assert!(
            typo_sim > unrelated_sim + 0.2,
            "typo sim {typo_sim} vs unrelated {unrelated_sim}"
        );
    }

    #[test]
    fn shared_digits_make_numbers_similar() {
        let ft = FastTextLike::new(64, 0);
        let near = ft.similarity("2015.0000", "2014.0000");
        let far = ft.similarity("2015.0000", "7.5000");
        assert!(near > far, "near {near} far {far}");
    }
}

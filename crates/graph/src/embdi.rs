//! EMBDI-style local embeddings: weighted random walks over a tripartite
//! (RID — cell — attribute) graph, trained with skip-gram negative sampling.
//!
//! This implements the paper's second feature-initialization strategy
//! (§3.4, "local embeddings"), including GRIMP's extension of the EMBDI
//! graph with **"possible imputation" edges**: for every `∅` cell
//! `t_i[A_j]`, the RID node of `t_i` is connected to *every* value node in
//! `Dom(A_j)`, each edge weighted by the value's frequency in `A_j`, so the
//! walk corpus is aware that the missing cell could take any domain value
//! (frequent values more likely).

use rand::Rng;

use grimp_table::Table;

use crate::fasttext::l2_normalize;
use crate::hetero::TableGraph;

/// Hyperparameters of the EMBDI embedding stage.
#[derive(Clone, Copy, Debug)]
pub struct EmbdiConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Random walks started from every node.
    pub walks_per_node: usize,
    /// Steps per walk.
    pub walk_length: usize,
    /// Skip-gram window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10 %).
    pub lr: f32,
}

impl Default for EmbdiConfig {
    fn default() -> Self {
        EmbdiConfig {
            dim: 32,
            walks_per_node: 8,
            walk_length: 14,
            window: 2,
            negatives: 3,
            epochs: 3,
            lr: 0.05,
        }
    }
}

/// Trained EMBDI embeddings aligned to a [`TableGraph`]'s nodes plus one
/// vector per attribute.
#[derive(Clone, Debug)]
pub struct EmbdiEmbeddings {
    /// Dimensionality of every vector.
    pub dim: usize,
    /// One vector per graph node (RIDs then cells), row-major.
    pub node_vectors: Vec<f32>,
    /// One vector per attribute, row-major.
    pub attribute_vectors: Vec<f32>,
}

impl EmbdiEmbeddings {
    /// Embedding of graph node `n`.
    pub fn node(&self, n: usize) -> &[f32] {
        &self.node_vectors[n * self.dim..(n + 1) * self.dim]
    }

    /// Embedding of attribute `j`.
    pub fn attribute(&self, j: usize) -> &[f32] {
        &self.attribute_vectors[j * self.dim..(j + 1) * self.dim]
    }
}

/// Weighted adjacency of the walk graph.
struct WalkGraph {
    /// Per node: neighbor ids and cumulative weights for sampling.
    neighbors: Vec<Vec<u32>>,
    cumweights: Vec<Vec<f32>>,
}

impl WalkGraph {
    fn add_edge(&mut self, a: u32, b: u32, w: f32) {
        self.push_half(a, b, w);
        self.push_half(b, a, w);
    }

    fn push_half(&mut self, from: u32, to: u32, w: f32) {
        let nb = &mut self.neighbors[from as usize];
        let cw = &mut self.cumweights[from as usize];
        let prev = cw.last().copied().unwrap_or(0.0);
        nb.push(to);
        cw.push(prev + w);
    }

    fn sample_neighbor(&self, node: u32, rng: &mut impl Rng) -> Option<u32> {
        let cw = &self.cumweights[node as usize];
        let total = *cw.last()?;
        let x = rng.gen_range(0.0..total);
        let idx = cw.partition_point(|&c| c <= x).min(cw.len() - 1);
        Some(self.neighbors[node as usize][idx])
    }
}

fn build_walk_graph(graph: &TableGraph, table: &Table) -> WalkGraph {
    let n_cols = graph.n_edge_types();
    let n_total = graph.n_nodes() + n_cols; // + attribute nodes
    let mut wg = WalkGraph {
        neighbors: vec![Vec::new(); n_total],
        cumweights: vec![Vec::new(); n_total],
    };
    // RID — cell edges.
    for t in 0..n_cols {
        for &(rid, cell) in &graph.edges_of(t).pairs {
            wg.add_edge(rid, cell, 1.0);
        }
    }
    // cell — attribute edges.
    for t in 0..n_cols {
        let attr_node = (graph.n_nodes() + t) as u32;
        for (_, cell) in graph.column_cells(t) {
            wg.add_edge(cell, attr_node, 1.0);
        }
    }
    // "possible imputation" edges for null cells, frequency-weighted.
    // BTreeMap keeps edge insertion order deterministic (it feeds the
    // cumulative-weight sampler).
    for t in 0..n_cols {
        // occurrence counts per cell node of this column
        let mut freq: std::collections::BTreeMap<u32, f32> = std::collections::BTreeMap::new();
        for &(_, cell) in &graph.edges_of(t).pairs {
            *freq.entry(cell).or_insert(0.0) += 1.0;
        }
        if freq.is_empty() {
            continue;
        }
        for row in 0..table.n_rows() {
            if !table.is_missing(row, t) {
                continue;
            }
            for (&cell, &f) in &freq {
                wg.add_edge(row as u32, cell, f);
            }
        }
    }
    wg
}

/// Train EMBDI embeddings for the nodes of `graph` (built over `table`).
pub fn train_embdi(
    graph: &TableGraph,
    table: &Table,
    cfg: &EmbdiConfig,
    rng: &mut impl Rng,
) -> EmbdiEmbeddings {
    let n_cols = graph.n_edge_types();
    let n_total = graph.n_nodes() + n_cols;
    let wg = build_walk_graph(graph, table);

    // Generate the walk corpus.
    let mut corpus: Vec<Vec<u32>> = Vec::with_capacity(n_total * cfg.walks_per_node);
    for start in 0..n_total as u32 {
        for _ in 0..cfg.walks_per_node {
            let mut walk = Vec::with_capacity(cfg.walk_length);
            let mut node = start;
            walk.push(node);
            for _ in 1..cfg.walk_length {
                match wg.sample_neighbor(node, rng) {
                    Some(next) => {
                        node = next;
                        walk.push(node);
                    }
                    None => break,
                }
            }
            if walk.len() > 1 {
                corpus.push(walk);
            }
        }
    }

    // SGNS. "in" vectors are the embeddings we keep; "out" vectors are the
    // context side.
    let dim = cfg.dim;
    let mut vin: Vec<f32> = (0..n_total * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
        .collect();
    let mut vout: Vec<f32> = vec![0.0; n_total * dim];
    let total_steps = (cfg.epochs * corpus.len()).max(1);
    let mut step = 0usize;
    let mut grad = vec![0.0f32; dim];
    for _epoch in 0..cfg.epochs {
        for walk in &corpus {
            let lr = cfg.lr * (1.0 - 0.9 * step as f32 / total_steps as f32);
            step += 1;
            for (pos, &center) in walk.iter().enumerate() {
                let lo = pos.saturating_sub(cfg.window);
                let hi = (pos + cfg.window + 1).min(walk.len());
                for (ctx_pos, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    sgns_pair(
                        &mut vin,
                        &mut vout,
                        dim,
                        center as usize,
                        context as usize,
                        cfg.negatives,
                        n_total,
                        lr,
                        rng,
                        &mut grad,
                    );
                }
            }
        }
    }

    // Normalize and split node/attribute vectors.
    let mut node_vectors = vin[..graph.n_nodes() * dim].to_vec();
    let mut attribute_vectors = vin[graph.n_nodes() * dim..].to_vec();
    for chunk in node_vectors.chunks_mut(dim) {
        l2_normalize(chunk);
    }
    for chunk in attribute_vectors.chunks_mut(dim) {
        l2_normalize(chunk);
    }
    EmbdiEmbeddings {
        dim,
        node_vectors,
        attribute_vectors,
    }
}

#[allow(clippy::too_many_arguments)]
fn sgns_pair(
    vin: &mut [f32],
    vout: &mut [f32],
    dim: usize,
    center: usize,
    context: usize,
    negatives: usize,
    n_total: usize,
    lr: f32,
    rng: &mut impl Rng,
    grad: &mut [f32],
) {
    grad.iter_mut().for_each(|g| *g = 0.0);
    let c0 = center * dim;
    // positive pair + negatives
    for k in 0..=negatives {
        let (target, label) = if k == 0 {
            (context, 1.0f32)
        } else {
            (rng.gen_range(0..n_total), 0.0f32)
        };
        let t0 = target * dim;
        let dot: f32 = (0..dim).map(|d| vin[c0 + d] * vout[t0 + d]).sum();
        let pred = 1.0 / (1.0 + (-dot).exp());
        let g = (pred - label) * lr;
        for d in 0..dim {
            grad[d] += g * vout[t0 + d];
            vout[t0 + d] -= g * vin[c0 + d];
        }
    }
    for d in 0..dim {
        vin[c0 + d] -= grad[d];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::GraphConfig;
    use grimp_table::{ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clustered_table() -> Table {
        // Two clusters of co-occurring values.
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let mut rows = Vec::new();
        for _ in 0..20 {
            rows.push(vec![Some("a1"), Some("b1")]);
            rows.push(vec![Some("a2"), Some("b2")]);
        }
        Table::from_rows(schema, &rows)
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    #[test]
    fn cooccurring_values_embed_closer_than_non_cooccurring() {
        let t = clustered_table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let mut rng = StdRng::seed_from_u64(11);
        let emb = train_embdi(&g, &t, &EmbdiConfig::default(), &mut rng);
        let a1 = g.cell_node(0, "a1").unwrap() as usize;
        let b1 = g.cell_node(1, "b1").unwrap() as usize;
        let b2 = g.cell_node(1, "b2").unwrap() as usize;
        let same = cosine(emb.node(a1), emb.node(b1));
        let diff = cosine(emb.node(a1), emb.node(b2));
        assert!(same > diff, "same-cluster {same} <= cross-cluster {diff}");
    }

    #[test]
    fn vectors_are_produced_for_all_nodes_and_attributes() {
        let t = clustered_table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let emb = train_embdi(
            &g,
            &t,
            &EmbdiConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(emb.node_vectors.len(), g.n_nodes() * emb.dim);
        assert_eq!(emb.attribute_vectors.len(), 2 * emb.dim);
        assert!(emb.node_vectors.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn null_cells_get_possible_edges() {
        let schema = Schema::from_pairs(&[
            ("a", ColumnKind::Categorical),
            ("b", ColumnKind::Categorical),
        ]);
        let t = Table::from_rows(schema, &[vec![Some("x"), Some("p")], vec![Some("y"), None]]);
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let wg = build_walk_graph(&g, &t);
        // RID 1 has a null in column b: it must be connected to b's only
        // value node "p" through a possible-imputation edge (plus its own
        // value edge in column a).
        let p_node = g.cell_node(1, "p").unwrap();
        assert!(wg.neighbors[1].contains(&p_node));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let t = clustered_table();
        let g = TableGraph::build(&t, GraphConfig::default(), &[]);
        let cfg = EmbdiConfig {
            epochs: 1,
            ..Default::default()
        };
        let a = train_embdi(&g, &t, &cfg, &mut StdRng::seed_from_u64(5));
        let b = train_embdi(&g, &t, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.node_vectors, b.node_vectors);
    }
}

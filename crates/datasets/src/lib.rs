//! # grimp-datasets
//!
//! Synthetic regenerations of the ten datasets of the GRIMP paper's
//! evaluation (Table 1): Adult, Australian, Contraceptive, Credit, Flare,
//! IMDB, Mammogram, Tax, Thoracic and Tic-Tac-Toe.
//!
//! The real files are not redistributable offline; each generator matches
//! the published row/column/type counts, FD sets (Adult: 2, Tax: 6) and the
//! per-column value-frequency shapes that §5 of the paper shows govern
//! imputation difficulty. See DESIGN.md §3.
//!
//! ```
//! use grimp_datasets::{generate, DatasetId};
//! let adult = generate(DatasetId::Adult, 0);
//! assert_eq!(adult.table.n_rows(), 3016);
//! assert_eq!(adult.fds.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod generate;
pub mod spec;

pub use generate::{generate, generate_large, Dataset};
pub use spec::{CatSpec, DatasetId, DatasetSpec, NumSpec};

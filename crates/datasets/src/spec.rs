//! Generator specifications for the ten evaluation datasets.
//!
//! The real UCI/IMDB/Tax files are not redistributable in this offline
//! environment, so each dataset is regenerated synthetically to match the
//! published Table 1 statistics: row count, column counts per kind, FD sets,
//! and — because §5 shows these drive imputation difficulty — the
//! value-frequency *shape* of each column (domain size and Zipf skew).
//! See DESIGN.md §3 for the substitution rationale.

/// Specification of one categorical column.
#[derive(Clone, Copy, Debug)]
pub struct CatSpec {
    /// Domain size (distinct values).
    pub domain: usize,
    /// Zipf exponent of the value-frequency distribution
    /// (0 = uniform, 1+ = heavily skewed).
    pub zipf: f64,
    /// Whether the column tracks the latent row cluster (making it
    /// predictable from other tracking columns).
    pub clustered: bool,
    /// When set, the column is the conclusion of an FD whose premise is the
    /// column at this index (within the *categorical* column list): its
    /// value is a deterministic function of the premise value.
    pub fd_of: Option<usize>,
    /// Share surface value names with other columns using the same pool id
    /// (`None` = column-private names). Lets Tic-Tac-Toe reproduce its tiny
    /// table-wide distinct count.
    pub shared_pool: Option<usize>,
}

impl CatSpec {
    /// A plain clustered column.
    pub const fn plain(domain: usize, zipf: f64) -> Self {
        CatSpec {
            domain,
            zipf,
            clustered: true,
            fd_of: None,
            shared_pool: None,
        }
    }

    /// An independent (non-clustered) column.
    pub const fn noise(domain: usize, zipf: f64) -> Self {
        CatSpec {
            domain,
            zipf,
            clustered: false,
            fd_of: None,
            shared_pool: None,
        }
    }

    /// A column functionally determined by categorical column `premise`.
    pub const fn fd(domain: usize, premise: usize) -> Self {
        CatSpec {
            domain,
            zipf: 0.8,
            clustered: false,
            fd_of: Some(premise),
            shared_pool: None,
        }
    }
}

/// Specification of one numerical column.
#[derive(Clone, Copy, Debug)]
pub struct NumSpec {
    /// Gaussian spread around the cluster mean.
    pub spread: f64,
    /// Quantization step (controls the distinct count).
    pub step: f64,
    /// Whether the column tracks the latent row cluster.
    pub clustered: bool,
}

impl NumSpec {
    /// A clustered numerical column.
    pub const fn plain(spread: f64, step: f64) -> Self {
        NumSpec {
            spread,
            step,
            clustered: true,
        }
    }
}

/// Full generator spec of one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Full name.
    pub name: &'static str,
    /// Table 1 abbreviation.
    pub abbr: &'static str,
    /// Row count (as published).
    pub rows: usize,
    /// Latent clusters inducing inter-column correlation.
    pub clusters: usize,
    /// Categorical columns.
    pub cat: Vec<CatSpec>,
    /// Numerical columns.
    pub num: Vec<NumSpec>,
    /// FDs as (premise categorical index, conclusion categorical index)
    /// pairs — must be consistent with the `fd_of` fields.
    pub fd_pairs: Vec<(usize, usize)>,
}

impl DatasetSpec {
    /// Total column count.
    pub fn n_columns(&self) -> usize {
        self.cat.len() + self.num.len()
    }
}

/// The ten datasets of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// UCI Adult (census income), 2 FDs.
    Adult,
    /// UCI Australian credit approval.
    Australian,
    /// UCI Contraceptive method choice.
    Contraceptive,
    /// UCI Credit approval.
    Credit,
    /// UCI Solar Flare.
    Flare,
    /// IMDB movies.
    Imdb,
    /// UCI Mammographic mass.
    Mammogram,
    /// Synthetic Tax (data-repair benchmark), 6 FDs.
    Tax,
    /// UCI Thoracic surgery.
    Thoracic,
    /// UCI Tic-Tac-Toe endgame.
    TicTacToe,
}

impl DatasetId {
    /// All ten datasets in the paper's Table 1 order.
    pub const ALL: [DatasetId; 10] = [
        DatasetId::Adult,
        DatasetId::Australian,
        DatasetId::Contraceptive,
        DatasetId::Credit,
        DatasetId::Flare,
        DatasetId::Imdb,
        DatasetId::Mammogram,
        DatasetId::Tax,
        DatasetId::Thoracic,
        DatasetId::TicTacToe,
    ];

    /// The generator spec matching this dataset's Table 1 row.
    pub fn spec(self) -> DatasetSpec {
        match self {
            // 3016 rows, 9 cat + 5 num, 289 distinct, 2 FDs, S≈2.6 K≈13.
            DatasetId::Adult => DatasetSpec {
                name: "Adult",
                abbr: "AD",
                rows: 3016,
                clusters: 6,
                cat: vec![
                    CatSpec::plain(9, 1.2),  // workclass
                    CatSpec::plain(16, 1.1), // education
                    CatSpec::fd(7, 1),       // education group ← education (FD 1)
                    CatSpec::plain(15, 1.2), // occupation
                    CatSpec::plain(6, 1.3),  // relationship
                    CatSpec::plain(5, 1.8),  // race
                    CatSpec::plain(2, 0.6),  // sex
                    CatSpec::plain(42, 2.2), // native country (head-heavy)
                    CatSpec::fd(20, 7),      // region ← country (FD 2)
                ],
                num: vec![
                    NumSpec::plain(12.0, 1.0), // age
                    NumSpec::plain(2.5, 1.0),  // education-num
                    NumSpec::plain(30.0, 5.0), // hours
                    NumSpec::plain(800.0, 100.0),
                    NumSpec::plain(400.0, 100.0),
                ],
                fd_pairs: vec![(1, 2), (7, 8)],
            },
            // 690 rows, 9 cat + 6 num, 957 distinct (mostly from numerics).
            DatasetId::Australian => DatasetSpec {
                name: "Australian",
                abbr: "AU",
                rows: 690,
                clusters: 4,
                cat: vec![
                    CatSpec::plain(2, 0.5),
                    CatSpec::plain(3, 1.0),
                    CatSpec::plain(4, 1.2),
                    CatSpec::plain(14, 1.5),
                    CatSpec::plain(9, 1.4),
                    CatSpec::plain(2, 0.8),
                    CatSpec::plain(3, 1.1),
                    CatSpec::plain(2, 0.4),
                    CatSpec::plain(2, 0.7),
                ],
                num: vec![
                    NumSpec::plain(11.0, 0.25),
                    NumSpec::plain(5.0, 0.125),
                    NumSpec::plain(4.0, 0.25),
                    NumSpec::plain(100.0, 1.0),
                    NumSpec::plain(1500.0, 1.0),
                    NumSpec::plain(3.0, 0.5),
                ],
                fd_pairs: vec![],
            },
            // 1473 rows, 8 cat + 2 num, 65 distinct, flat distributions.
            DatasetId::Contraceptive => DatasetSpec {
                name: "Contraceptive",
                abbr: "CO",
                rows: 1473,
                clusters: 3,
                cat: vec![
                    CatSpec::plain(4, 0.3),
                    CatSpec::plain(4, 0.3),
                    CatSpec::plain(2, 0.2),
                    CatSpec::plain(2, 0.3),
                    CatSpec::plain(4, 0.4),
                    CatSpec::plain(4, 0.3),
                    CatSpec::plain(2, 0.2),
                    CatSpec::plain(3, 0.4),
                ],
                num: vec![NumSpec::plain(8.0, 1.0), NumSpec::plain(3.5, 1.0)],
                fd_pairs: vec![],
            },
            // 653 rows, 10 cat + 6 num, 918 distinct.
            DatasetId::Credit => DatasetSpec {
                name: "Credit",
                abbr: "CR",
                rows: 653,
                clusters: 4,
                cat: vec![
                    CatSpec::plain(2, 0.5),
                    CatSpec::plain(3, 1.2),
                    CatSpec::plain(4, 1.3),
                    CatSpec::plain(14, 1.6),
                    CatSpec::plain(9, 1.5),
                    CatSpec::plain(2, 0.7),
                    CatSpec::plain(2, 0.6),
                    CatSpec::plain(3, 1.0),
                    CatSpec::plain(2, 0.5),
                    CatSpec::plain(2, 0.4),
                ],
                num: vec![
                    NumSpec::plain(12.0, 0.25),
                    NumSpec::plain(5.0, 0.125),
                    NumSpec::plain(4.0, 0.25),
                    NumSpec::plain(6.0, 1.0),
                    NumSpec::plain(150.0, 1.0),
                    NumSpec::plain(1000.0, 1.0),
                ],
                fd_pairs: vec![],
            },
            // 1066 rows, 10 cat + 3 num, 34 distinct, very flat.
            DatasetId::Flare => DatasetSpec {
                name: "Flare",
                abbr: "FL",
                rows: 1066,
                clusters: 3,
                cat: vec![
                    CatSpec::plain(6, 0.8),
                    CatSpec::plain(6, 0.9),
                    CatSpec::plain(4, 0.7),
                    CatSpec::plain(2, 1.5),
                    CatSpec::plain(3, 1.8),
                    CatSpec::plain(2, 1.2),
                    CatSpec::plain(2, 2.0),
                    CatSpec::plain(2, 2.2),
                    CatSpec::plain(2, 1.6),
                    CatSpec::plain(2, 2.5),
                ],
                num: vec![
                    NumSpec::plain(0.8, 1.0),
                    NumSpec::plain(0.5, 1.0),
                    NumSpec::plain(0.4, 1.0),
                ],
                fd_pairs: vec![],
            },
            // 4529 rows, 9 cat + 2 num, 9829 distinct: near-unique titles
            // and names, high N+, low F+.
            DatasetId::Imdb => DatasetSpec {
                name: "IMDB",
                abbr: "IM",
                rows: 4529,
                clusters: 8,
                cat: vec![
                    CatSpec::noise(8000, 0.1), // title: almost unique
                    CatSpec::plain(1900, 1.0), // director: head stars repeat
                    CatSpec::plain(2600, 1.0), // lead actor
                    CatSpec::plain(23, 1.4),   // genre
                    CatSpec::plain(60, 1.8),   // country
                    CatSpec::plain(40, 1.9),   // language
                    CatSpec::plain(320, 1.5),  // studio
                    CatSpec::plain(12, 0.9),   // rating class
                    CatSpec::plain(95, 1.0),   // year as category
                ],
                num: vec![NumSpec::plain(1.2, 0.1), NumSpec::plain(45.0, 1.0)],
                fd_pairs: vec![],
            },
            // 830 rows, 5 cat + 1 num, 93 distinct.
            DatasetId::Mammogram => DatasetSpec {
                name: "Mammogram",
                abbr: "MM",
                rows: 830,
                clusters: 2,
                cat: vec![
                    CatSpec::plain(5, 0.9),
                    CatSpec::plain(4, 0.8),
                    CatSpec::plain(5, 0.7),
                    CatSpec::plain(4, 1.1),
                    CatSpec::plain(2, 0.4),
                ],
                num: vec![NumSpec::plain(14.0, 1.0)],
                fd_pairs: vec![],
            },
            // 5000 rows, 5 cat + 7 num, 910 distinct, 6 FDs over 10 attrs.
            DatasetId::Tax => DatasetSpec {
                name: "Tax",
                abbr: "TA",
                rows: 5000,
                clusters: 10,
                cat: vec![
                    CatSpec::plain(180, 1.4), // zip
                    CatSpec::fd(60, 0),       // city ← zip
                    CatSpec::fd(25, 1),       // state ← city (zip → state transitively)
                    CatSpec::fd(50, 0),       // area code ← zip
                    CatSpec::fd(12, 2),       // region ← state
                ],
                num: vec![
                    NumSpec::plain(20000.0, 1000.0), // salary
                    NumSpec::plain(3.0, 0.25),       // rate
                    NumSpec::plain(1500.0, 100.0),
                    NumSpec::plain(700.0, 100.0),
                    NumSpec::plain(2.0, 0.5),
                    NumSpec::plain(40.0, 1.0),
                    NumSpec::plain(12.0, 1.0),
                ],
                // six FDs, all holding by the zip→city→state→region chain:
                // zip→city, zip→state, zip→areacode, city→state,
                // state→region, city→region.
                fd_pairs: vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 4), (1, 4)],
            },
            // 470 rows, 14 cat + 3 num, 255 distinct, dominated by binary
            // attributes with one frequent value (high F+, K≈-1.3).
            DatasetId::Thoracic => DatasetSpec {
                name: "Thoracic",
                abbr: "TH",
                rows: 470,
                clusters: 2,
                cat: vec![
                    CatSpec::plain(7, 0.8),
                    CatSpec::plain(3, 1.0),
                    CatSpec::plain(4, 1.2),
                    CatSpec::plain(2, 1.6),
                    CatSpec::plain(2, 1.9),
                    CatSpec::plain(2, 2.1),
                    CatSpec::plain(2, 1.7),
                    CatSpec::plain(2, 2.3),
                    CatSpec::plain(2, 1.5),
                    CatSpec::plain(2, 2.0),
                    CatSpec::plain(2, 1.8),
                    CatSpec::plain(2, 2.4),
                    CatSpec::plain(4, 1.3),
                    CatSpec::plain(2, 1.4),
                ],
                num: vec![
                    NumSpec::plain(0.9, 0.01),
                    NumSpec::plain(0.8, 0.01),
                    NumSpec::plain(8.5, 1.0),
                ],
                fd_pairs: vec![],
            },
            // 958 rows, 9 cat + 0 num, 5 distinct table-wide: board columns
            // share the x/o/b surface pool, the class column its own 2.
            DatasetId::TicTacToe => DatasetSpec {
                name: "Tic-Tac-Toe",
                abbr: "TT",
                rows: 958,
                clusters: 2,
                cat: {
                    let mut cols: Vec<CatSpec> = (0..8)
                        .map(|_| CatSpec {
                            domain: 3,
                            zipf: 0.25,
                            clustered: true,
                            fd_of: None,
                            shared_pool: Some(0),
                        })
                        .collect();
                    cols.push(CatSpec {
                        domain: 2,
                        zipf: 0.3,
                        clustered: true,
                        fd_of: None,
                        shared_pool: Some(1),
                    });
                    cols
                },
                num: vec![],
                fd_pairs: vec![],
            },
        }
    }

    /// Table 1 abbreviation.
    pub fn abbr(self) -> &'static str {
        self.spec().abbr
    }

    /// Full name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Column counts straight from the paper's Table 1.
    const TABLE_1_SHAPE: [(DatasetId, usize, usize, usize, usize); 10] = [
        (DatasetId::Adult, 3016, 14, 9, 5),
        (DatasetId::Australian, 690, 15, 9, 6),
        (DatasetId::Contraceptive, 1473, 10, 8, 2),
        (DatasetId::Credit, 653, 16, 10, 6),
        (DatasetId::Flare, 1066, 13, 10, 3),
        (DatasetId::Imdb, 4529, 11, 9, 2),
        (DatasetId::Mammogram, 830, 6, 5, 1),
        (DatasetId::Tax, 5000, 12, 5, 7),
        (DatasetId::Thoracic, 470, 17, 14, 3),
        (DatasetId::TicTacToe, 958, 9, 9, 0),
    ];

    #[test]
    fn specs_match_table_1_shapes() {
        for (id, rows, cols, n_cat, n_num) in TABLE_1_SHAPE {
            let s = id.spec();
            assert_eq!(s.rows, rows, "{:?} rows", id);
            assert_eq!(s.n_columns(), cols, "{:?} columns", id);
            assert_eq!(s.cat.len(), n_cat, "{:?} categorical", id);
            assert_eq!(s.num.len(), n_num, "{:?} numerical", id);
        }
    }

    #[test]
    fn fd_counts_match_table_1() {
        assert_eq!(DatasetId::Adult.spec().fd_pairs.len(), 2);
        assert_eq!(DatasetId::Tax.spec().fd_pairs.len(), 6);
        for id in DatasetId::ALL {
            if !matches!(id, DatasetId::Adult | DatasetId::Tax) {
                assert!(id.spec().fd_pairs.is_empty(), "{id:?} should have no FDs");
            }
        }
    }

    #[test]
    fn fd_of_fields_are_consistent() {
        for id in DatasetId::ALL {
            let s = id.spec();
            for c in &s.cat {
                if let Some(p) = c.fd_of {
                    assert!(p < s.cat.len(), "{id:?} fd premise out of range");
                }
            }
        }
    }
}

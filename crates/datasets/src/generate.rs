//! The synthetic dataset generator.
//!
//! Every row draws a latent cluster; clustered columns encode the cluster
//! (making them mutually predictive — the structure imputers must learn),
//! FD columns are deterministic functions of their premise, and value
//! frequencies follow per-column Zipf distributions so the §5 difficulty
//! metrics (`S_avg`, `K_avg`, `F+`, `N+`) land in each dataset's published
//! regime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grimp_table::{ColumnKind, ColumnMeta, FdSet, FunctionalDependency, Schema, Table, Value};

use crate::spec::{DatasetId, DatasetSpec, NumSpec};

/// A generated dataset: the clean table plus its declared FDs.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Full name.
    pub name: &'static str,
    /// Table 1 abbreviation.
    pub abbr: &'static str,
    /// The clean (no missing values) table.
    pub table: Table,
    /// Declared functional dependencies (column indices into `table`).
    pub fds: FdSet,
}

/// Sample from a Zipf distribution with exponent `s` over `0..n` ranks.
fn zipf_sample(n: usize, s: f64, rng: &mut impl Rng) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // Inverse-CDF over precomputable weights would need state; for the
    // generator's scale a rejection-free cumulative scan is fine because n
    // is at most a few thousand and rows are bounded.
    let total: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let mut x = rng.gen_range(0.0..total);
    for k in 1..=n {
        let w = 1.0 / (k as f64).powf(s);
        if x < w {
            return k - 1;
        }
        x -= w;
    }
    n - 1
}

/// Deterministic FD mapping: conclusion value index for a premise value.
fn fd_map(premise_value: usize, conclusion_domain: usize) -> usize {
    // multiplicative hashing gives a fixed, surjective-ish mapping
    (premise_value.wrapping_mul(0x9E37_79B9) >> 7) % conclusion_domain
}

/// Surface name of a categorical value.
fn value_name(pool: Option<usize>, col: usize, v: usize) -> String {
    match pool {
        // shared pools reproduce table-wide tiny vocabularies (Tic-Tac-Toe)
        Some(0) => ["x", "o", "b"][v % 3].to_string(),
        Some(1) => ["positive", "negative"][v % 2].to_string(),
        Some(p) => format!("p{p}_v{v}"),
        None => format!("c{col}_v{v}"),
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate a dataset from its spec. Deterministic in `(id, seed)`.
pub fn generate(id: DatasetId, seed: u64) -> Dataset {
    let spec = id.spec();
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x51_7c_c1_b7));
    let table = generate_table(&spec, &mut rng);
    let fds = FdSet {
        fds: spec
            .fd_pairs
            .iter()
            .map(|&(lhs, rhs)| FunctionalDependency::new(vec![lhs], rhs))
            .collect(),
    };
    Dataset {
        name: spec.name,
        abbr: spec.abbr,
        table,
        fds,
    }
}

/// Generate a scaling-benchmark table: `rows` rows over a fixed 5-column
/// schema — three low-cardinality clustered categoricals (one the FD
/// conclusion of the first) and two numericals. Deterministic in
/// `(rows, seed)`.
///
/// Unlike the paper datasets, the row count is a free parameter: the
/// bounded vocabularies keep the value-node count (and therefore the GNN
/// parameter count) fixed while rows — and with them the RID-node and edge
/// counts — grow without bound. That makes it the right probe for the
/// neighbor-sampled training path, whose promise is exactly that peak
/// memory stops scaling with rows.
pub fn generate_large(rows: usize, seed: u64) -> Dataset {
    const CLUSTERS: usize = 6;
    const DOM0: usize = 12;
    const DOM1: usize = 8;
    const DOM2: usize = 6; // FD conclusion of cat0
    const AFFINITY: f64 = 0.6;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a_b6_e5_7d);
    let schema = Schema::new(vec![
        ColumnMeta {
            name: "cat0".into(),
            kind: ColumnKind::Categorical,
        },
        ColumnMeta {
            name: "cat1".into(),
            kind: ColumnKind::Categorical,
        },
        ColumnMeta {
            name: "cat2".into(),
            kind: ColumnKind::Categorical,
        },
        ColumnMeta {
            name: "num0".into(),
            kind: ColumnKind::Numerical,
        },
        ColumnMeta {
            name: "num1".into(),
            kind: ColumnKind::Numerical,
        },
    ]);
    let mut table = Table::empty(schema);
    for _ in 0..rows {
        let cluster = rng.gen_range(0..CLUSTERS);
        let v0 = if rng.gen::<f64>() < AFFINITY {
            cluster % DOM0
        } else {
            zipf_sample(DOM0, 1.2, &mut rng)
        };
        let v1 = if rng.gen::<f64>() < AFFINITY {
            cluster % DOM1
        } else {
            zipf_sample(DOM1, 1.2, &mut rng)
        };
        let v2 = fd_map(v0, DOM2);
        let base = (cluster as f64 - (CLUSTERS - 1) as f64 / 2.0) * 3.0;
        let n0 = ((base + gaussian(&mut rng)) * 4.0).round() / 4.0;
        let n1 = ((v0 as f64 + gaussian(&mut rng) * 0.5) * 4.0).round() / 4.0;
        let row = vec![
            Value::Cat(table.intern(0, &format!("c0_v{v0}"))),
            Value::Cat(table.intern(1, &format!("c1_v{v1}"))),
            Value::Cat(table.intern(2, &format!("c2_v{v2}"))),
            Value::Num(n0),
            Value::Num(n1),
        ];
        table.push_value_row(&row);
    }
    Dataset {
        name: "Scaling synthetic",
        abbr: "XL",
        table,
        fds: FdSet {
            fds: vec![FunctionalDependency::new(vec![0], 2)],
        },
    }
}

fn generate_table(spec: &DatasetSpec, rng: &mut StdRng) -> Table {
    let mut columns: Vec<ColumnMeta> = Vec::with_capacity(spec.n_columns());
    for (j, _) in spec.cat.iter().enumerate() {
        columns.push(ColumnMeta {
            name: format!("cat{j}"),
            kind: ColumnKind::Categorical,
        });
    }
    for (j, _) in spec.num.iter().enumerate() {
        columns.push(ColumnMeta {
            name: format!("num{j}"),
            kind: ColumnKind::Numerical,
        });
    }
    let schema = Schema::new(columns);
    let mut table = Table::empty(schema);

    /// Cluster affinity: probability that a clustered column emits its
    /// cluster's preferred value instead of a global Zipf draw. This is the
    /// inter-column signal imputers learn from.
    const AFFINITY: f64 = 0.55;

    let n_cat = spec.cat.len();
    let mut cat_values = vec![0usize; n_cat];
    for _row in 0..spec.rows {
        let cluster = rng.gen_range(0..spec.clusters);
        // First pass: non-FD columns.
        for (j, c) in spec.cat.iter().enumerate() {
            if c.fd_of.is_some() {
                continue;
            }
            // Preferred values live in the Zipf head (low ranks): affinity
            // mass then stacks on already-frequent values, reproducing the
            // published head-heavy skew/kurtosis profiles.
            let preferred = cluster % c.domain.min(spec.clusters).max(1);
            cat_values[j] = if c.clustered && rng.gen::<f64>() < AFFINITY {
                preferred
            } else {
                zipf_sample(c.domain, c.zipf, rng)
            };
        }
        // Second pass: FD conclusions (premises may themselves be FDs of
        // earlier columns, so resolve in index order — specs list premises
        // before conclusions).
        for (j, c) in spec.cat.iter().enumerate() {
            if let Some(p) = c.fd_of {
                cat_values[j] = fd_map(cat_values[p], c.domain);
            }
        }
        // Intern on demand so dictionaries only hold observed values
        // (domains like IMDB titles are much larger than one sample).
        let mut row: Vec<Value> = Vec::with_capacity(spec.n_columns());
        for (j, (&v, c)) in cat_values.iter().zip(&spec.cat).enumerate() {
            let code = table.intern(j, &value_name(c.shared_pool, j, v));
            row.push(Value::Cat(code));
        }
        for n in &spec.num {
            row.push(Value::Num(sample_numeric(n, cluster, spec.clusters, rng)));
        }
        table.push_value_row(&row);
    }
    table
}

fn sample_numeric(spec: &NumSpec, cluster: usize, n_clusters: usize, rng: &mut impl Rng) -> f64 {
    let center = if spec.clustered {
        // spread cluster means across ±2 spreads
        let t = if n_clusters > 1 {
            cluster as f64 / (n_clusters - 1) as f64
        } else {
            0.5
        };
        (t - 0.5) * 4.0 * spec.spread
    } else {
        0.0
    };
    let raw = center + gaussian(rng) * spec.spread;
    (raw / spec.step).round() * spec.step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetId::Mammogram, 42);
        let b = generate(DatasetId::Mammogram, 42);
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetId::Mammogram, 1);
        let b = generate(DatasetId::Mammogram, 2);
        assert_ne!(a.table, b.table);
    }

    #[test]
    fn tables_are_clean_and_correctly_shaped() {
        for id in DatasetId::ALL {
            let d = generate(id, 7);
            let spec = id.spec();
            assert_eq!(d.table.n_rows(), spec.rows, "{id:?}");
            assert_eq!(d.table.n_columns(), spec.n_columns(), "{id:?}");
            assert_eq!(d.table.n_missing(), 0, "{id:?} must be clean");
        }
    }

    #[test]
    fn declared_fds_hold_exactly() {
        for id in [DatasetId::Adult, DatasetId::Tax] {
            let d = generate(id, 3);
            for fd in &d.fds.fds {
                assert!(
                    fd.holds_on(&d.table),
                    "{id:?}: FD {:?} -> {} violated",
                    fd.lhs,
                    fd.rhs
                );
            }
        }
    }

    #[test]
    fn tictactoe_has_tiny_surface_vocabulary() {
        let d = generate(DatasetId::TicTacToe, 5);
        let mut surface: std::collections::HashSet<String> = Default::default();
        for i in 0..d.table.n_rows() {
            for j in 0..d.table.n_columns() {
                surface.insert(d.table.display(i, j));
            }
        }
        assert_eq!(surface.len(), 5, "x, o, b, positive, negative");
    }

    #[test]
    fn imdb_is_mostly_unique_in_title_column() {
        let d = generate(DatasetId::Imdb, 9);
        let distinct = d.table.column(0).n_distinct();
        assert!(
            distinct as f64 > d.table.n_rows() as f64 * 0.5,
            "IMDB titles should be mostly unique: {distinct}/{}",
            d.table.n_rows()
        );
    }

    #[test]
    fn large_generator_is_deterministic_and_scales_rows_not_vocabulary() {
        let a = generate_large(2_000, 5);
        let b = generate_large(2_000, 5);
        assert_eq!(a.table, b.table);
        assert_eq!(a.table.n_rows(), 2_000);
        assert_eq!(a.table.n_columns(), 5);
        assert_eq!(a.table.n_missing(), 0);
        for fd in &a.fds.fds {
            assert!(fd.holds_on(&a.table), "declared FD must hold");
        }
        // the point of the generator: 10x the rows, same vocabulary
        let big = generate_large(20_000, 5);
        let vocab = |t: &Table| (0..3).map(|j| t.column(j).n_distinct()).sum::<usize>();
        assert_eq!(vocab(&a.table), vocab(&big.table));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_sample(10, 1.5, &mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 5,
            "rank 0 must dominate: {counts:?}"
        );
    }

    #[test]
    fn clustered_columns_are_mutually_informative() {
        // mutual predictability is what imputers exploit: check that the
        // most common co-occurrence is far above chance
        let d = generate(DatasetId::Contraceptive, 11);
        let t = &d.table;
        let mut joint = std::collections::HashMap::<(u32, u32), usize>::new();
        for i in 0..t.n_rows() {
            let a = t.get(i, 0).as_cat().unwrap();
            let b = t.get(i, 1).as_cat().unwrap();
            *joint.entry((a, b)).or_default() += 1;
        }
        let max_joint = *joint.values().max().unwrap() as f64 / t.n_rows() as f64;
        // chance for independent near-uniform 4x4 would be ~1/16
        assert!(max_joint > 0.12, "columns look independent: {max_joint}");
    }
}

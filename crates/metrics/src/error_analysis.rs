//! Rare-value error analysis (paper §5, Figures 11–12).
//!
//! For one attribute, group the injected test cells by their true value,
//! sort values by descending frequency, and report each method's fraction
//! of *wrong* imputations per value next to the expected fraction
//! `E_v = 1 − f_v` (the paper's frequency-based error model).

use grimp_table::{CorruptionLog, Table, Value};

/// One row of the per-value error distribution (one value of one attribute).
#[derive(Clone, Debug)]
pub struct ValueErrorRow {
    /// Surface text of the value.
    pub value: String,
    /// Relative frequency `f_v` of the value in the clean column.
    pub frequency: f64,
    /// The expected wrong fraction `E_v = 1 − f_v`.
    pub expected_wrong: f64,
    /// Injected test cells whose truth is this value.
    pub n_test_cells: usize,
    /// Per method (aligned with the input order): fraction of those cells
    /// imputed wrongly (`None` when the value never occurs among test
    /// cells).
    pub wrong_fraction: Vec<Option<f64>>,
}

/// Compute the per-value error distribution of attribute `col`.
///
/// `methods` pairs each method name with its imputed table. Values are
/// returned sorted by descending frequency (rare values last, as on the
/// paper's x-axes).
pub fn per_value_errors(
    clean: &Table,
    log: &CorruptionLog,
    methods: &[(&str, &Table)],
    col: usize,
) -> Vec<ValueErrorRow> {
    // frequencies over the clean column
    let mut counts: std::collections::HashMap<String, usize> = Default::default();
    let mut total = 0usize;
    for i in 0..clean.n_rows() {
        if let Value::Null = clean.get(i, col) {
            continue;
        }
        *counts.entry(clean.display(i, col)).or_default() += 1;
        total += 1;
    }
    let mut values: Vec<(String, usize)> = counts.into_iter().collect();
    values.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    values
        .into_iter()
        .map(|(value, count)| {
            let frequency = count as f64 / total.max(1) as f64;
            let test_cells: Vec<&grimp_table::InjectedCell> = log
                .cells_in_column(col)
                .filter(|c| truth_text(clean, c) == value)
                .collect();
            let wrong_fraction = methods
                .iter()
                .map(|(_, imputed)| {
                    if test_cells.is_empty() {
                        return None;
                    }
                    let wrong = test_cells
                        .iter()
                        .filter(|c| imputed.display(c.row, c.col) != value)
                        .count();
                    Some(wrong as f64 / test_cells.len() as f64)
                })
                .collect();
            ValueErrorRow {
                value,
                frequency,
                expected_wrong: 1.0 - frequency,
                n_test_cells: test_cells.len(),
                wrong_fraction,
            }
        })
        .collect()
}

fn truth_text(clean: &Table, cell: &grimp_table::InjectedCell) -> String {
    match cell.truth {
        Value::Cat(code) => clean.dictionary(cell.col)[code as usize].clone(),
        Value::Num(v) => format!("{v}"),
        Value::Null => unreachable!("log never stores null truths"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{inject_mcar, ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_table() -> Table {
        let schema = Schema::from_pairs(&[("c", ColumnKind::Categorical)]);
        let mut t = Table::empty(schema);
        for i in 0..100 {
            // "f" 90 times, "t" 10 times — the Thoracic PRE8 situation
            t.push_str_row(&[Some(if i < 90 { "f" } else { "t" })]);
        }
        t
    }

    #[test]
    fn values_sorted_by_descending_frequency() {
        let clean = skewed_table();
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.2, &mut StdRng::seed_from_u64(0));
        let rows = per_value_errors(&clean, &log, &[], 0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, "f");
        assert!((rows[0].frequency - 0.9).abs() < 1e-9);
        assert!((rows[0].expected_wrong - 0.1).abs() < 1e-9);
        assert_eq!(rows[1].value, "t");
        assert!((rows[1].expected_wrong - 0.9).abs() < 1e-9);
    }

    #[test]
    fn mode_imputer_fails_exactly_on_rare_values() {
        // the paper's headline finding in miniature: a mode imputer gets
        // every frequent value right and every rare value wrong
        let clean = skewed_table();
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.3, &mut StdRng::seed_from_u64(1));
        let mut mode_filled = dirty.clone();
        for (i, j) in dirty.missing_cells() {
            let m = dirty.mode(j).unwrap();
            mode_filled.set(i, j, Value::Cat(m));
        }
        let rows = per_value_errors(&clean, &log, &[("mode", &mode_filled)], 0);
        let f_row = rows.iter().find(|r| r.value == "f").unwrap();
        let t_row = rows.iter().find(|r| r.value == "t").unwrap();
        assert_eq!(f_row.wrong_fraction[0], Some(0.0));
        if t_row.n_test_cells > 0 {
            assert_eq!(t_row.wrong_fraction[0], Some(1.0));
        }
    }

    #[test]
    fn untested_values_report_none() {
        let clean = skewed_table();
        let log = CorruptionLog::default();
        let rows = per_value_errors(&clean, &log, &[("x", &clean)], 0);
        assert!(rows.iter().all(|r| r.wrong_fraction[0].is_none()));
    }
}

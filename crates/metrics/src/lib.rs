//! # grimp-metrics
//!
//! Evaluation machinery for the GRIMP reproduction:
//!
//! - [`evaluate`] — categorical accuracy + normalized numerical RMSE over
//!   injected test cells (paper §2);
//! - [`dataset_stats`] — the Table 1 difficulty statistics (`S_avg`,
//!   `K_avg`, `F+_avg`, `N+_avg`, distinct surface values);
//! - [`pearson`] / [`average_ranks`] — Table 4 correlations and the §4.2
//!   method ranking;
//! - [`per_value_errors`] — the Figures 11–12 rare-value error analysis
//!   with the expected-error model `E_v = 1 − f_v`.

#![warn(missing_docs)]

pub mod accuracy;
pub mod correlation;
pub mod error_analysis;
pub mod stats;

pub use accuracy::{evaluate, ColumnEval, EvalResult};
pub use correlation::{average_ranks, pearson, ranks_from_scores};
pub use error_analysis::{per_value_errors, ValueErrorRow};
pub use stats::{dataset_stats, frequent_value_metrics, kurtosis, skewness, DatasetStats};

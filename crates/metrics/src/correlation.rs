//! Pearson correlation and method ranking (paper Table 4 and the
//! "average rank 1.6" claim of §4.2).

/// Pearson correlation coefficient `ρ` of two equal-length samples.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 1e-18 || syy <= 1e-18 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Per-dataset ranks of methods from their scores (higher score = rank 1).
/// Ties share the average of their positional ranks.
pub fn ranks_from_scores(scores: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // positions i..=j are tied: average rank
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Average rank of each method across datasets; `scores[d][m]` is method
/// `m`'s score on dataset `d` (higher is better).
pub fn average_ranks(scores: &[Vec<f64>]) -> Vec<f64> {
    assert!(!scores.is_empty(), "need at least one dataset");
    let n_methods = scores[0].len();
    let mut sums = vec![0.0; n_methods];
    for row in scores {
        assert_eq!(row.len(), n_methods, "ragged score matrix");
        for (s, r) in sums.iter_mut().zip(ranks_from_scores(row)) {
            *s += r;
        }
    }
    sums.iter_mut().for_each(|s| *s /= scores.len() as f64);
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_anticorrelated_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ranks_order_descending_scores() {
        let r = ranks_from_scores(&[0.9, 0.5, 0.7]);
        assert_eq!(r, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn tied_scores_share_average_rank() {
        let r = ranks_from_scores(&[0.5, 0.5, 0.1]);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn average_ranks_across_datasets() {
        let scores = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let avg = average_ranks(&scores);
        assert_eq!(avg, vec![1.5, 1.5]);
    }
}

//! Imputation quality metrics (paper §2): categorical accuracy and
//! numerical RMSE, measured over the injected (test) cells only.

use grimp_table::{ColumnKind, CorruptionLog, Table, Value};

/// Per-column evaluation detail.
#[derive(Clone, Debug)]
pub struct ColumnEval {
    /// Column index.
    pub col: usize,
    /// Column kind.
    pub kind: ColumnKind,
    /// Injected cells in this column.
    pub total: usize,
    /// Correct categorical imputations.
    pub correct: usize,
    /// Sum of squared errors on the std-normalized scale (numerical).
    pub sse: f64,
}

/// Evaluation of one imputed table against the ground truth.
#[derive(Clone, Debug, Default)]
pub struct EvalResult {
    /// Categorical test cells.
    pub cat_total: usize,
    /// Correct categorical imputations.
    pub cat_correct: usize,
    /// Numerical test cells.
    pub num_total: usize,
    /// Summed squared error over numerical test cells, each normalized by
    /// its clean column's standard deviation (so RMSE is comparable across
    /// columns and datasets).
    pub num_sse: f64,
    /// Cells the algorithm left missing (contract violations; counted as
    /// wrong).
    pub left_missing: usize,
    /// Per-column breakdown.
    pub per_column: Vec<ColumnEval>,
}

impl EvalResult {
    /// Categorical imputation accuracy in `[0, 1]` (`None` with no
    /// categorical test cells).
    pub fn accuracy(&self) -> Option<f64> {
        (self.cat_total > 0).then(|| self.cat_correct as f64 / self.cat_total as f64)
    }

    /// Normalized RMSE over numerical test cells (`None` with none).
    pub fn rmse(&self) -> Option<f64> {
        (self.num_total > 0).then(|| (self.num_sse / self.num_total as f64).sqrt())
    }
}

/// Standard deviation of a clean numerical column (≥ tiny epsilon).
fn column_std(clean: &Table, j: usize) -> f64 {
    let vals: Vec<f64> = (0..clean.n_rows())
        .filter_map(|i| clean.get(i, j).as_num())
        .collect();
    if vals.is_empty() {
        return 1.0;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
    var.sqrt().max(1e-9)
}

/// Evaluate `imputed` against the truth recorded in `log`.
///
/// Categorical cells compare by display string (robust to dictionary
/// extensions made by the imputer); numerical cells contribute normalized
/// squared error. Cells left missing count as wrong (and as the column
/// std for numericals).
pub fn evaluate(clean: &Table, imputed: &Table, log: &CorruptionLog) -> EvalResult {
    let mut result = EvalResult::default();
    let mut per_column: Vec<ColumnEval> = (0..clean.n_columns())
        .map(|j| ColumnEval {
            col: j,
            kind: clean.schema().column(j).kind,
            total: 0,
            correct: 0,
            sse: 0.0,
        })
        .collect();
    let stds: Vec<f64> = (0..clean.n_columns())
        .map(|j| match clean.schema().column(j).kind {
            ColumnKind::Numerical => column_std(clean, j),
            ColumnKind::Categorical => 1.0,
        })
        .collect();

    for cell in &log.cells {
        let (i, j) = (cell.row, cell.col);
        let entry = &mut per_column[j];
        entry.total += 1;
        let predicted = imputed.get(i, j);
        match (cell.truth, predicted) {
            (Value::Cat(_), Value::Null) | (Value::Num(_), Value::Null) => {
                result.left_missing += 1;
                match cell.truth {
                    Value::Cat(_) => result.cat_total += 1,
                    Value::Num(_) => {
                        result.num_total += 1;
                        result.num_sse += 1.0; // one column-std of error
                        entry.sse += 1.0;
                    }
                    Value::Null => unreachable!("log never stores null truths"),
                }
            }
            (Value::Cat(t), Value::Cat(_)) => {
                result.cat_total += 1;
                // compare by surface string: imputers may extend dictionaries
                let truth_str = &clean.dictionary(j)[t as usize];
                if imputed.display(i, j) == *truth_str {
                    result.cat_correct += 1;
                    entry.correct += 1;
                }
            }
            (Value::Num(t), Value::Num(p)) => {
                result.num_total += 1;
                let e = (t - p) / stds[j];
                result.num_sse += e * e;
                entry.sse += e * e;
            }
            (t, p) => panic!("kind mismatch at ({i}, {j}): truth {t:?}, predicted {p:?}"),
        }
    }
    result.per_column = per_column;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{inject_mcar, ColumnKind, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Table, Table, CorruptionLog) {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let mut clean = Table::empty(schema);
        for i in 0..20 {
            let c = format!("v{}", i % 2);
            clean.push_str_row(&[Some(&c), Some(&format!("{}", i as f64))]);
        }
        let mut dirty = clean.clone();
        let log = inject_mcar(&mut dirty, 0.3, &mut StdRng::seed_from_u64(0));
        (clean, dirty, log)
    }

    #[test]
    fn perfect_imputation_scores_one_and_zero() {
        let (clean, _dirty, log) = setup();
        let result = evaluate(&clean, &clean, &log);
        assert_eq!(result.accuracy(), Some(1.0));
        assert_eq!(result.rmse(), Some(0.0));
        assert_eq!(result.left_missing, 0);
    }

    #[test]
    fn left_missing_cells_count_as_wrong() {
        let (clean, dirty, log) = setup();
        let result = evaluate(&clean, &dirty, &log);
        assert_eq!(result.left_missing, log.len());
        assert_eq!(result.accuracy(), Some(0.0));
    }

    #[test]
    fn rmse_is_normalized_by_column_std() {
        let (clean, _dirty, log) = setup();
        // impute every numeric with clean value + one std
        let std = column_std(&clean, 1);
        let mut imputed = clean.clone();
        for c in &log.cells {
            if c.col == 1 {
                let t = c.truth.as_num().unwrap();
                imputed.set(c.row, c.col, Value::Num(t + std));
            }
        }
        let result = evaluate(&clean, &imputed, &log);
        assert!((result.rmse().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_column_totals_sum_to_overall() {
        let (clean, _dirty, log) = setup();
        let result = evaluate(&clean, &clean, &log);
        let total: usize = result.per_column.iter().map(|c| c.total).sum();
        assert_eq!(total, log.len());
    }

    #[test]
    fn dictionary_extensions_do_not_break_comparison() {
        let (clean, dirty, log) = setup();
        let mut imputed = dirty.clone();
        // intern an unrelated value first, then impute correctly by string
        imputed.intern(0, "zzz");
        for c in &log.cells {
            match c.truth {
                Value::Cat(code) => {
                    let s = clean.dictionary(0)[code as usize].clone();
                    let code = imputed.intern(0, &s);
                    imputed.set(c.row, c.col, Value::Cat(code));
                }
                Value::Num(v) => imputed.set(c.row, c.col, Value::Num(v)),
                Value::Null => unreachable!(),
            }
        }
        let result = evaluate(&clean, &imputed, &log);
        assert_eq!(result.accuracy(), Some(1.0));
    }
}

//! Dataset difficulty statistics (paper §5, Table 1).
//!
//! All four metrics are computed over each column's *value-frequency
//! distribution* (the counts of its distinct values), then averaged over
//! columns:
//!
//! - `S_avg` — Fisher–Pearson coefficient of skewness,
//! - `K_avg` — Fisher (excess) kurtosis,
//! - `F+_avg` — fraction of rows holding *frequent* values (count above the
//!   90 % quantile of counts in the column),
//! - `N+_avg` — number of distinct frequent values.

use std::collections::HashMap;

use grimp_table::{Table, Value};

/// The Table 1 statistics of one dataset.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Categorical columns.
    pub n_cat: usize,
    /// Numerical columns.
    pub n_num: usize,
    /// Distinct surface values over the whole table (the paper's
    /// "Distinct").
    pub distinct: usize,
    /// Average skewness of column value-frequency distributions.
    pub s_avg: f64,
    /// Average excess kurtosis of column value-frequency distributions.
    pub k_avg: f64,
    /// Average fraction of rows holding frequent values.
    pub f_plus_avg: f64,
    /// Average count of distinct frequent values.
    pub n_plus_avg: f64,
}

/// Value counts of one column (over non-null cells).
fn value_counts(table: &Table, j: usize) -> Vec<usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for i in 0..table.n_rows() {
        if let Value::Null = table.get(i, j) {
            continue;
        }
        *counts.entry(table.display(i, j)).or_default() += 1;
    }
    counts.into_values().collect()
}

/// Fisher–Pearson skewness `g1 = m3 / m2^{3/2}` of a sample
/// (0 for degenerate samples).
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n;
    let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
    if m2 <= 1e-18 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Fisher (excess) kurtosis `g2 = m4 / m2² − 3` of a sample
/// (0 for degenerate samples).
pub fn kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n;
    let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    if m2 <= 1e-18 {
        0.0
    } else {
        m4 / (m2 * m2) - 3.0
    }
}

/// The 90 % quantile (by the nearest-rank method) of a count sample.
fn quantile_90(counts: &[usize]) -> usize {
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * 0.9).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// `(F+, N+)` of one column: frequent values are those whose count exceeds
/// the 90 % quantile of counts.
pub fn frequent_value_metrics(counts: &[usize]) -> (f64, f64) {
    if counts.is_empty() {
        return (0.0, 0.0);
    }
    let threshold = quantile_90(counts);
    let total: usize = counts.iter().sum();
    let frequent: Vec<usize> = counts.iter().copied().filter(|&c| c > threshold).collect();
    // With a single dominant quantile (e.g., uniform columns) nothing
    // strictly exceeds it: fall back to values at the quantile, so a
    // uniform binary column reports its (both) frequent values.
    let frequent = if frequent.is_empty() {
        counts.iter().copied().filter(|&c| c >= threshold).collect()
    } else {
        frequent
    };
    let f_plus = frequent.iter().sum::<usize>() as f64 / total.max(1) as f64;
    let n_plus = frequent.len() as f64;
    (f_plus, n_plus)
}

/// Compute every Table 1 statistic for a table.
pub fn dataset_stats(table: &Table) -> DatasetStats {
    let cols = table.n_columns();
    let mut surface: std::collections::HashSet<String> = Default::default();
    for j in 0..cols {
        for i in 0..table.n_rows() {
            if !table.is_missing(i, j) {
                surface.insert(table.display(i, j));
            }
        }
    }
    let mut s_sum = 0.0;
    let mut k_sum = 0.0;
    let mut f_sum = 0.0;
    let mut n_sum = 0.0;
    for j in 0..cols {
        let counts = value_counts(table, j);
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        s_sum += skewness(&xs);
        k_sum += kurtosis(&xs);
        let (f_plus, n_plus) = frequent_value_metrics(&counts);
        f_sum += f_plus;
        n_sum += n_plus;
    }
    let c = cols.max(1) as f64;
    DatasetStats {
        rows: table.n_rows(),
        cols,
        n_cat: table.schema().categorical_indices().len(),
        n_num: table.schema().numerical_indices().len(),
        distinct: surface.len(),
        s_avg: s_sum / c,
        k_avg: k_sum / c,
        f_plus_avg: f_sum / c,
        n_plus_avg: n_sum / c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_table::{ColumnKind, Schema};

    #[test]
    fn skewness_of_symmetric_sample_is_zero() {
        assert!(skewness(&[1.0, 2.0, 3.0]).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_tracks_tail_direction() {
        assert!(skewness(&[1.0, 1.0, 1.0, 10.0]) > 1.0);
        assert!(skewness(&[10.0, 10.0, 10.0, 1.0]) < -1.0);
    }

    #[test]
    fn kurtosis_of_uniform_counts_is_negative() {
        // flat distributions have negative excess kurtosis, like the
        // paper's Flare/Thoracic/Tic-Tac-Toe rows
        let k = kurtosis(&[5.0, 6.0, 5.0, 6.0, 5.0, 6.0]);
        assert!(k < 0.0, "kurtosis {k}");
    }

    #[test]
    fn degenerate_samples_do_not_nan() {
        assert_eq!(skewness(&[2.0, 2.0, 2.0]), 0.0);
        assert_eq!(kurtosis(&[2.0]), 0.0);
        assert_eq!(skewness(&[]), 0.0);
    }

    #[test]
    fn frequent_metrics_on_skewed_column() {
        // one dominant value out of five
        let counts = [96, 1, 1, 1, 1];
        let (f_plus, n_plus) = frequent_value_metrics(&counts);
        assert!((f_plus - 0.96).abs() < 1e-9);
        assert_eq!(n_plus, 1.0);
    }

    #[test]
    fn stats_over_a_small_table() {
        let schema =
            Schema::from_pairs(&[("c", ColumnKind::Categorical), ("x", ColumnKind::Numerical)]);
        let t = Table::from_rows(
            schema,
            &[
                vec![Some("a"), Some("1")],
                vec![Some("a"), Some("2")],
                vec![Some("b"), Some("1")],
            ],
        );
        let s = dataset_stats(&t);
        assert_eq!(s.rows, 3);
        assert_eq!(s.cols, 2);
        assert_eq!(s.n_cat, 1);
        assert_eq!(s.n_num, 1);
        assert_eq!(s.distinct, 4); // a, b, 1, 2
        assert!(s.f_plus_avg > 0.0);
    }
}

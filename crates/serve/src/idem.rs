//! The durable `Idempotency-Key` journal for `POST /append`.
//!
//! A client that retries an append after a crash (its own, or the
//! server's) must not double-apply its rows. The journal records, next to
//! the append WAL in the checkpoint directory, two facts per key — both
//! durable *before* the step they guard:
//!
//! 1. a **pending** record (key + CRC of the request body) before any
//!    model work, so a replayed key is recognized across a server restart;
//! 2. a **done** record (key + the exact response body) before the served
//!    generation swaps, so a replayed key after success is answered from
//!    the journal instead of re-appending.
//!
//! The file format mirrors `grimp.wal`: an 8-byte magic + version header,
//! then CRC-framed records (`[len][crc][payload]`). Every write goes
//! through [`atomic_write`] (tmp + rename), so a crash leaves either the
//! old journal or the new one — never a torn file; the decoder still
//! tolerates a torn tail by keeping the intact prefix, like the WAL
//! reader. The ordering guarantee against double-apply is:
//!
//! - **crash before the done record** → the server restarts serving the
//!   *base* table, so rerunning the append (reconciled through
//!   `Pipeline::append`'s pending-WAL state machine) converges to
//!   base + delta exactly once;
//! - **done record durable** → any replay of the key, live or after a
//!   restart, returns the recorded response and touches nothing.
//!
//! The journal is **bounded** on a long-lived server: it is compacted to
//! one record per key (the strongest fact wins) on load and on every
//! write, and only the newest [`MAX_DONE_BODIES`] done records keep their
//! full response body — each body is the entire grown table as CSV, so
//! retaining all of them would grow roughly quadratically with appends.
//! An evicted body never weakens the exactly-once guarantee: the done
//! record itself (key, body CRC, applied row count) is kept forever, so a
//! late replay is still recognized and refused re-application — it just
//! gets `410` with the row count instead of the recorded bytes.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use grimp::checkpoint::crc32;
use grimp_obs::fs::atomic_write;
use grimp_obs::GrimpFs;

/// Journal file name, a sibling of `grimp.wal` in the checkpoint dir.
pub const IDEM_FILE: &str = "grimp.idem";

/// Journal magic: 8 bytes, like the WAL's `GRIMPWAL`.
const MAGIC: &[u8; 8] = b"GRIMPIDM";

/// Format version.
const VERSION: u32 = 1;

const STATE_PENDING: u8 = 0;
const STATE_DONE: u8 = 1;
/// A done record whose response body has been compacted away.
const STATE_DONE_EVICTED: u8 = 2;

/// The longest `Idempotency-Key` accepted (journal records are bounded).
pub const MAX_KEY_BYTES: usize = 255;

/// How many done records keep their full response body. Beyond this the
/// oldest bodies are evicted (the done fact itself is kept), bounding the
/// journal's disk and memory footprint on a long-lived server.
pub const MAX_DONE_BODIES: usize = 64;

/// What the journal knows about one key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// CRC-32 of the request body the key was first seen with; a replay
    /// with different bytes is a client bug, answered `422`.
    pub rows_crc: u32,
    /// Present once the append completed and its response was recorded.
    pub done: Option<DoneRecord>,
}

/// The recorded outcome of a completed keyed append.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneRecord {
    /// Rows the append applied.
    pub appended_rows: u32,
    /// The exact response body (the imputed grown table as CSV), or
    /// `None` once compaction evicted it (older than the newest
    /// [`MAX_DONE_BODIES`] done records).
    pub body: Option<Vec<u8>>,
}

/// The journal: a key → latest-entry index plus the key order (oldest
/// first) that compaction evicts bodies in. The durable image is
/// re-encoded from the compacted index on every write, so the file holds
/// exactly one record per key.
pub struct Journal {
    path: PathBuf,
    entries: HashMap<String, Entry>,
    /// Keys oldest-first; a done record moves its key to the back, so
    /// body eviction is by recency of completion.
    order: Vec<String>,
}

impl Journal {
    /// Load the journal from `dir`, tolerating a missing file (empty
    /// journal) and a torn record tail (intact prefix kept). A journal
    /// whose header does not validate is treated as absent — serving
    /// must not wedge on a corrupted sidecar — and is rewritten whole on
    /// the next record.
    ///
    /// # Errors
    /// Propagates read errors other than "not found".
    pub fn load(dir: &Path) -> io::Result<Journal> {
        let path = dir.join(IDEM_FILE);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut journal = Journal {
            path,
            entries: HashMap::new(),
            order: Vec::new(),
        };
        let header = header_bytes();
        if raw.len() < header.len() || raw[..8] != MAGIC[..] || raw[..16] != header {
            // Missing, truncated-below-header, or foreign: start fresh.
            return Ok(journal);
        }
        let mut offset = header.len();
        while raw.len() - offset >= 8 {
            let len = read_u32(&raw, offset) as usize;
            let crc = read_u32(&raw, offset + 4);
            let Some(payload) = raw.get(offset + 8..offset + 8 + len) else {
                break; // torn tail: keep the intact prefix
            };
            if crc32(payload) != crc {
                break;
            }
            let Some((key, entry_delta)) = decode_payload(payload) else {
                break;
            };
            journal.apply(key, entry_delta);
            offset += 8 + len;
        }
        // Compact on load: duplicate records from an old-format journal
        // collapsed into `entries` above; bound the in-memory bodies too.
        journal.evict_bodies();
        Ok(journal)
    }

    /// What the journal knows about `key`.
    pub fn lookup(&self, key: &str) -> Option<&Entry> {
        self.entries.get(key)
    }

    /// Durably record that `key` (request-body CRC `rows_crc`) has been
    /// accepted and is about to run.
    ///
    /// # Errors
    /// Propagates the journal write failure; the caller must not ack.
    pub fn record_pending(
        &mut self,
        fs: &mut dyn GrimpFs,
        key: &str,
        rows_crc: u32,
    ) -> io::Result<()> {
        self.push_record(fs, key, STATE_PENDING, rows_crc, 0, &[])
    }

    /// Durably record that `key`'s append completed with `body` as its
    /// response, so any replay is answered without re-appending.
    ///
    /// # Errors
    /// Propagates the journal write failure.
    pub fn record_done(
        &mut self,
        fs: &mut dyn GrimpFs,
        key: &str,
        rows_crc: u32,
        appended_rows: u32,
        body: &[u8],
    ) -> io::Result<()> {
        self.push_record(fs, key, STATE_DONE, rows_crc, appended_rows, body)
    }

    fn push_record(
        &mut self,
        fs: &mut dyn GrimpFs,
        key: &str,
        state: u8,
        rows_crc: u32,
        appended_rows: u32,
        body: &[u8],
    ) -> io::Result<()> {
        let done = (state == STATE_DONE).then(|| DoneRecord {
            appended_rows,
            body: Some(body.to_vec()),
        });
        // Update the index first, then persist the compacted image; on a
        // write failure roll the index back so memory matches disk.
        let before = (self.entries.get(key).cloned(), self.order.clone());
        self.apply(key.to_string(), Entry { rows_crc, done });
        self.evict_bodies();
        if let Err(e) = atomic_write(fs, &self.path, &self.encode()) {
            let (entry, order) = before;
            match entry {
                Some(entry) => {
                    self.entries.insert(key.to_string(), entry);
                }
                None => {
                    self.entries.remove(key);
                }
            }
            self.order = order;
            return Err(e);
        }
        Ok(())
    }

    /// Merge a record into the index: a done record completes the entry
    /// and moves its key to the back (newest); a pending record never
    /// downgrades an existing done one (replay of an old journal must
    /// keep the strongest fact per key).
    fn apply(&mut self, key: String, entry: Entry) {
        match self.entries.get_mut(&key) {
            Some(existing) => {
                if entry.done.is_some() {
                    *existing = entry;
                    self.order.retain(|k| *k != key);
                    self.order.push(key);
                }
            }
            None => {
                self.order.push(key.clone());
                self.entries.insert(key, entry);
            }
        }
    }

    /// Drop response bodies beyond the newest [`MAX_DONE_BODIES`] done
    /// records. The done facts themselves are never evicted — that is
    /// what keeps a late replay from double-applying.
    fn evict_bodies(&mut self) {
        let with_body = self
            .order
            .iter()
            .filter(|k| {
                self.entries
                    .get(*k)
                    .is_some_and(|e| e.done.as_ref().is_some_and(|d| d.body.is_some()))
            })
            .count();
        let mut excess = with_body.saturating_sub(MAX_DONE_BODIES);
        for key in &self.order {
            if excess == 0 {
                break;
            }
            if let Some(done) = self.entries.get_mut(key).and_then(|e| e.done.as_mut()) {
                if done.body.take().is_some() {
                    excess -= 1;
                }
            }
        }
    }

    /// Encode the compacted journal: header + exactly one CRC-framed
    /// record per key, oldest first.
    fn encode(&self) -> Vec<u8> {
        let mut out = header_bytes();
        for key in &self.order {
            let Some(entry) = self.entries.get(key) else {
                continue;
            };
            let (state, appended_rows, body): (u8, u32, &[u8]) = match &entry.done {
                None => (STATE_PENDING, 0, &[]),
                Some(done) => match &done.body {
                    Some(body) => (STATE_DONE, done.appended_rows, body),
                    None => (STATE_DONE_EVICTED, done.appended_rows, &[]),
                },
            };
            let mut payload = Vec::with_capacity(17 + key.len() + body.len());
            payload.push(state);
            payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
            payload.extend_from_slice(key.as_bytes());
            payload.extend_from_slice(&entry.rows_crc.to_le_bytes());
            payload.extend_from_slice(&appended_rows.to_le_bytes());
            payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
            payload.extend_from_slice(body);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }
}

/// A valid `Idempotency-Key`: non-empty, bounded, visible ASCII (so it
/// survives HTTP framing and journal round-trips byte-identically).
pub fn valid_key(key: &str) -> bool {
    !key.is_empty() && key.len() <= MAX_KEY_BYTES && key.bytes().all(|b| (0x21..=0x7e).contains(&b))
}

fn header_bytes() -> Vec<u8> {
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

fn read_u32(raw: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&raw[offset..offset + 4]);
    u32::from_le_bytes(b)
}

fn take_u32(payload: &[u8], at: &mut usize) -> Option<u32> {
    let bytes = payload.get(*at..*at + 4)?;
    *at += 4;
    let mut b = [0u8; 4];
    b.copy_from_slice(bytes);
    Some(u32::from_le_bytes(b))
}

fn decode_payload(payload: &[u8]) -> Option<(String, Entry)> {
    let state = *payload.first()?;
    let mut at = 1;
    let key_len = take_u32(payload, &mut at)? as usize;
    let key = std::str::from_utf8(payload.get(at..at + key_len)?).ok()?;
    at += key_len;
    let rows_crc = take_u32(payload, &mut at)?;
    let appended_rows = take_u32(payload, &mut at)?;
    let body_len = take_u32(payload, &mut at)? as usize;
    let body = payload.get(at..at + body_len)?;
    let done = match state {
        STATE_DONE => Some(DoneRecord {
            appended_rows,
            body: Some(body.to_vec()),
        }),
        STATE_DONE_EVICTED => Some(DoneRecord {
            appended_rows,
            body: None,
        }),
        _ => None,
    };
    Some((key.to_string(), Entry { rows_crc, done }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grimp_obs::RealFs;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grimp-idem-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn pending_then_done_round_trips_through_disk() {
        let d = dir("roundtrip");
        let mut fs = RealFs;
        let mut j = Journal::load(&d).unwrap();
        assert!(j.lookup("k").is_none());
        j.record_pending(&mut fs, "k", 7).unwrap();

        let j2 = Journal::load(&d).unwrap();
        let e = j2.lookup("k").unwrap();
        assert_eq!((e.rows_crc, e.done.clone()), (7, None));

        j.record_done(&mut fs, "k", 7, 2, b"a,b\nx,y\n").unwrap();
        let j3 = Journal::load(&d).unwrap();
        let e = j3.lookup("k").unwrap();
        assert_eq!(e.rows_crc, 7);
        let done = e.done.as_ref().unwrap();
        assert_eq!(done.appended_rows, 2);
        assert_eq!(done.body.as_deref(), Some(b"a,b\nx,y\n".as_slice()));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn the_file_holds_one_record_per_key_after_compaction() {
        let d = dir("compact");
        let mut fs = RealFs;
        let mut j = Journal::load(&d).unwrap();
        j.record_pending(&mut fs, "k", 7).unwrap();
        let pending_len = std::fs::read(d.join(IDEM_FILE)).unwrap().len();
        j.record_done(&mut fs, "k", 7, 1, b"body").unwrap();
        let done_len = std::fs::read(d.join(IDEM_FILE)).unwrap().len();
        // The done record replaced the pending one instead of appending
        // after it: the file grew only by the body, not by a whole frame.
        assert!(done_len < pending_len + b"body".len() + 8 + 8);
        let j2 = Journal::load(&d).unwrap();
        assert!(j2.lookup("k").unwrap().done.is_some());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn old_bodies_are_evicted_but_done_facts_are_kept() {
        let d = dir("evict");
        let mut fs = RealFs;
        let mut j = Journal::load(&d).unwrap();
        let n = MAX_DONE_BODIES + 3;
        for i in 0..n {
            let key = format!("k{i}");
            j.record_pending(&mut fs, &key, i as u32).unwrap();
            j.record_done(&mut fs, &key, i as u32, 1, format!("body{i}").as_bytes())
                .unwrap();
        }
        // The oldest 3 bodies are gone; their done facts (and row counts)
        // survive, so a late replay is still refused re-application.
        for i in 0..3 {
            let e = j.lookup(&format!("k{i}")).unwrap();
            let done = e.done.as_ref().unwrap();
            assert_eq!((done.appended_rows, done.body.as_deref()), (1, None));
        }
        for i in 3..n {
            let e = j.lookup(&format!("k{i}")).unwrap();
            let body = format!("body{i}");
            assert_eq!(
                e.done.as_ref().unwrap().body.as_deref(),
                Some(body.as_bytes())
            );
        }
        // The bound holds through a reload, and the file stays bounded:
        // one frame per key, bodies only on the newest MAX_DONE_BODIES.
        let j2 = Journal::load(&d).unwrap();
        assert!(j2
            .lookup("k0")
            .unwrap()
            .done
            .as_ref()
            .unwrap()
            .body
            .is_none());
        assert!(j2
            .lookup(&format!("k{}", n - 1))
            .unwrap()
            .done
            .as_ref()
            .unwrap()
            .body
            .is_some());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn a_torn_tail_keeps_the_intact_prefix() {
        let d = dir("torn");
        let mut fs = RealFs;
        let mut j = Journal::load(&d).unwrap();
        j.record_pending(&mut fs, "first", 1).unwrap();
        j.record_done(&mut fs, "first", 1, 1, b"body").unwrap();
        let path = d.join(IDEM_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let intact = raw.len();
        raw.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3, 4, 0xff]); // torn frame
        std::fs::write(&path, &raw).unwrap();

        let j2 = Journal::load(&d).unwrap();
        assert!(j2.lookup("first").unwrap().done.is_some());
        // A new record rewrites the file without the torn bytes.
        let mut j2 = j2;
        j2.record_pending(&mut fs, "second", 2).unwrap();
        assert!(std::fs::read(&path).unwrap().len() > intact);
        let j3 = Journal::load(&d).unwrap();
        assert!(j3.lookup("first").unwrap().done.is_some());
        assert!(j3.lookup("second").is_some());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn a_corrupt_header_degrades_to_an_empty_journal() {
        let d = dir("corrupt");
        std::fs::write(d.join(IDEM_FILE), b"not a journal at all").unwrap();
        let j = Journal::load(&d).unwrap();
        assert!(j.lookup("k").is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn key_validation_bounds_length_and_charset() {
        assert!(valid_key("retry-2026-08-09_42"));
        assert!(!valid_key(""));
        assert!(!valid_key(&"k".repeat(MAX_KEY_BYTES + 1)));
        assert!(!valid_key("has space"));
        assert!(!valid_key("ctrl\u{7}"));
    }
}
